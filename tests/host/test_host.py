"""Host CPU, PCIe, storage stack, and P2P DMA tests."""

import pytest

from repro.energy import EnergyAccount
from repro.host import (
    HostCpu,
    HostCpuCosts,
    PcieLink,
    PeerToPeerDma,
    StorageSoftwareStack,
)
from repro.sim import Simulator
from repro.storage import EmulatedSsd, FlashCellType
from repro.storage.flash import PAGE_BYTES


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


class TestHostCpu:
    def test_syscall_cost_and_count(self):
        sim = Simulator()
        cpu = HostCpu(sim)

        def driver():
            yield from cpu.syscall()

        run(sim, driver())
        assert sim.now == pytest.approx(1_500.0)
        assert cpu.syscalls == 1

    def test_copy_time_scales_with_size(self):
        sim = Simulator()
        cpu = HostCpu(sim)

        def driver():
            yield from cpu.copy(10_000)

        run(sim, driver())
        assert sim.now == pytest.approx(1_000.0)
        assert cpu.bytes_copied == 10_000

    def test_core_serializes_work(self):
        sim = Simulator()
        cpu = HostCpu(sim)

        def worker():
            yield from cpu.run(100.0)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert sim.now == pytest.approx(200.0)

    def test_energy_charged_at_package_power(self):
        energy = EnergyAccount()
        sim = Simulator()
        cpu = HostCpu(sim, energy=energy)

        def driver():
            yield from cpu.run(1_000.0)

        run(sim, driver())
        assert energy.by_category()["host"] == pytest.approx(65_000.0)

    def test_copy_charges_host_dram(self):
        energy = EnergyAccount()
        sim = Simulator()
        cpu = HostCpu(sim, energy=energy)

        def driver():
            yield from cpu.copy(1_000)

        run(sim, driver())
        assert energy.by_category()["host_dram"] > 0

    def test_negative_inputs_rejected(self):
        sim = Simulator()
        cpu = HostCpu(sim)

        def driver():
            with pytest.raises(ValueError):
                yield from cpu.run(-1.0)
            with pytest.raises(ValueError):
                yield from cpu.copy(-1)

        run(sim, driver())

    def test_custom_costs(self):
        sim = Simulator()
        cpu = HostCpu(sim, costs=HostCpuCosts(syscall_ns=100.0))

        def driver():
            yield from cpu.syscall()

        run(sim, driver())
        assert sim.now == pytest.approx(100.0)


class TestPcieLink:
    def test_transfer_time(self):
        sim = Simulator()
        link = PcieLink(sim)

        def driver():
            yield from link.transfer(3_200)

        run(sim, driver())
        assert sim.now == pytest.approx(1_000.0 + 900.0)

    def test_energy_per_byte_and_request(self):
        energy = EnergyAccount()
        sim = Simulator()
        link = PcieLink(sim, energy=energy)

        def driver():
            yield from link.transfer(1_000)

        run(sim, driver())
        assert energy.by_category()["pcie"] == pytest.approx(18.0 + 500.0)

    def test_byte_accounting(self):
        sim = Simulator()
        link = PcieLink(sim)

        def driver():
            yield from link.transfer(128)

        run(sim, driver())
        assert link.bytes_transferred == 128
        assert link.transfers == 1


def make_stack():
    sim = Simulator()
    cpu = HostCpu(sim)
    ssd = EmulatedSsd(sim, cell_type=FlashCellType.SLC,
                      buffer_bytes=4 * PAGE_BYTES)
    ssd_link = PcieLink(sim, name="pcie.ssd")
    accel_link = PcieLink(sim, name="pcie.accel")
    stack = StorageSoftwareStack(sim, cpu, ssd, ssd_link, accel_link)
    return sim, cpu, ssd, stack


class TestStorageSoftwareStack:
    def test_load_returns_data_and_costs_software_time(self):
        sim, cpu, ssd, stack = make_stack()
        ssd.preload(0, b"\x42" * 4096)

        def driver():
            data = yield from stack.load_to_accelerator(0, 4096)
            return data

        data = run(sim, driver())
        assert data == b"\x42" * 4096
        assert cpu.syscalls == 2
        assert cpu.copies == 2
        assert cpu.context_switches == 1
        # Total far exceeds the raw flash read: software dominates.
        assert sim.now > FlashCellType.SLC.read_ns

    def test_store_reaches_the_ssd(self):
        sim, cpu, ssd, stack = make_stack()

        def driver():
            yield from stack.store_from_accelerator(0, b"\x24" * 512)
            yield from ssd.flush()

        run(sim, driver())
        assert ssd.inspect(0, 512) == b"\x24" * 512

    def test_request_counter(self):
        sim, _, ssd, stack = make_stack()
        ssd.preload(0, bytes(64))

        def driver():
            yield from stack.load_to_accelerator(0, 64)
            yield from stack.store_from_accelerator(0, bytes(64))

        run(sim, driver())
        assert stack.requests == 2


class TestPeerToPeerDma:
    def test_p2p_load_is_cheaper_than_stack_load(self):
        sim_a, _, ssd_a, stack = make_stack()
        ssd_a.preload(0, bytes(4096))

        def stack_driver():
            yield from stack.load_to_accelerator(0, 4096)

        run(sim_a, stack_driver())
        stack_time = sim_a.now

        sim_b = Simulator()
        cpu_b = HostCpu(sim_b)
        ssd_b = EmulatedSsd(sim_b, cell_type=FlashCellType.SLC,
                            buffer_bytes=4 * PAGE_BYTES)
        ssd_b.preload(0, bytes(4096))
        p2p = PeerToPeerDma(sim_b, cpu_b, ssd_b, PcieLink(sim_b))

        def p2p_driver():
            yield from p2p.load_to_accelerator(0, 4096)

        run(sim_b, p2p_driver())
        assert sim_b.now < stack_time

    def test_p2p_store_roundtrip(self):
        sim = Simulator()
        cpu = HostCpu(sim)
        ssd = EmulatedSsd(sim, cell_type=FlashCellType.SLC,
                          buffer_bytes=4 * PAGE_BYTES)
        p2p = PeerToPeerDma(sim, cpu, ssd, PcieLink(sim))

        def driver():
            yield from p2p.store_from_accelerator(0, b"\x11" * 256)
            data = yield from p2p.load_to_accelerator(0, 256)
            return data

        assert run(sim, driver()) == b"\x11" * 256
        assert p2p.transfers == 2

    def test_p2p_avoids_host_copies(self):
        sim = Simulator()
        cpu = HostCpu(sim)
        ssd = EmulatedSsd(sim, cell_type=FlashCellType.SLC,
                          buffer_bytes=4 * PAGE_BYTES)
        p2p = PeerToPeerDma(sim, cpu, ssd, PcieLink(sim))

        def driver():
            yield from p2p.load_to_accelerator(0, 1024)

        run(sim, driver())
        assert cpu.copies == 0
        assert cpu.bytes_copied == 0
