"""Detailed accounting tests for the host storage software stack."""

import pytest

from repro.energy import EnergyAccount
from repro.host import HostCpu, PcieLink, StorageSoftwareStack
from repro.host.software_stack import FILESYSTEM_REQUEST_NS
from repro.sim import Simulator
from repro.storage import EmulatedSsd, FlashCellType
from repro.storage.flash import PAGE_BYTES


def make_stack(energy=None):
    sim = Simulator()
    cpu = HostCpu(sim, energy=energy)
    ssd = EmulatedSsd(sim, cell_type=FlashCellType.SLC,
                      buffer_bytes=8 * PAGE_BYTES, energy=energy)
    ssd_link = PcieLink(sim, name="pcie.ssd", energy=energy)
    accel_link = PcieLink(sim, name="pcie.accel", energy=energy)
    return sim, cpu, ssd, StorageSoftwareStack(sim, cpu, ssd, ssd_link,
                                               accel_link)


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


class TestLoadAccounting:
    def test_cpu_time_includes_every_stage(self):
        sim, cpu, ssd, stack = make_stack()
        ssd.preload(0, bytes([1]) * 4096)

        def driver():
            yield from stack.load_to_accelerator(0, 4096)

        run(sim, driver())
        costs = cpu.costs
        expected_minimum = (
            2 * costs.syscall_ns
            + FILESYSTEM_REQUEST_NS
            + costs.context_switch_ns
            + costs.interrupt_ns
            + 2 * (4096 / costs.copy_bandwidth)
            + 4096 * costs.deserialize_per_byte_ns)
        assert cpu.busy_ns == pytest.approx(expected_minimum)

    def test_both_pcie_links_carry_the_payload(self):
        sim, _, ssd, stack = make_stack()
        ssd.preload(0, bytes(2048))

        def driver():
            yield from stack.load_to_accelerator(0, 2048)

        run(sim, driver())
        assert stack.ssd_link.bytes_transferred == 2048
        assert stack.accel_link.bytes_transferred == 2048

    def test_energy_split_across_components(self):
        energy = EnergyAccount()
        sim, _, ssd, stack = make_stack(energy=energy)
        ssd.preload(0, bytes(4096))

        def driver():
            yield from stack.load_to_accelerator(0, 4096)

        run(sim, driver())
        categories = energy.by_category()
        assert categories["host"] > 0
        assert categories["host_dram"] > 0
        assert categories["pcie"] > 0
        assert categories["storage"] > 0


class TestStoreAccounting:
    def test_store_runs_the_inverse_sequence(self):
        sim, cpu, ssd, stack = make_stack()

        def driver():
            yield from stack.store_from_accelerator(0, bytes([2]) * 1024)

        run(sim, driver())
        assert cpu.copies == 2
        assert cpu.syscalls == 1
        assert cpu.context_switches == 1
        assert stack.accel_link.bytes_transferred == 1024
        assert ssd.inspect(0, 1024) == bytes([2]) * 1024

    def test_host_core_serializes_concurrent_requests(self):
        def elapsed(request_count):
            sim, cpu, ssd, stack = make_stack()
            ssd.preload(0, bytes(8192))
            for index in range(request_count):
                sim.process(stack.load_to_accelerator(index * 4096, 4096))
            sim.run()
            return sim.now, cpu.busy_ns

        one_time, one_busy = elapsed(1)
        two_time, two_busy = elapsed(2)
        # The single host core serializes the software portions: CPU
        # busy time exactly doubles.  Wall time grows by less than a
        # full request (device/PCIe portions overlap) but by more than
        # half the serialized software share.
        assert two_busy == pytest.approx(2 * one_busy)
        assert one_time + one_busy * 0.5 < two_time < 2 * one_time
