"""Energy model and account tests."""

import pytest

from repro.energy import EnergyAccount, EnergyModel


class TestCharging:
    def test_charge_raw(self):
        account = EnergyAccount()
        account.charge("host", 100.0)
        account.charge("host", 50.0)
        assert account.by_category()["host"] == 150.0
        assert account.total_nj == 150.0

    def test_charge_power_uses_w_equals_nj_per_ns(self):
        account = EnergyAccount()
        account.charge_power("pe_compute", watts=2.0, duration_ns=1_000.0)
        assert account.total_nj == 2_000.0

    def test_charge_bytes_is_picojoules(self):
        account = EnergyAccount()
        account.charge_bytes("pcie", pj_per_byte=10.0, size=1_000)
        assert account.total_nj == pytest.approx(10.0)

    def test_negative_charges_rejected(self):
        account = EnergyAccount()
        with pytest.raises(ValueError):
            account.charge("x", -1.0)
        with pytest.raises(ValueError):
            account.charge_power("x", 1.0, -1.0)
        with pytest.raises(ValueError):
            account.charge_bytes("x", 1.0, -1)

    def test_total_mj_scale(self):
        account = EnergyAccount()
        account.charge("pram", 2e6)
        assert account.total_mj == pytest.approx(2.0)


class TestSeries:
    def test_power_series(self):
        account = EnergyAccount()
        account.sample_power(0.0, 5.0)
        account.sample_power(100.0, 8.0)
        assert account.power_series.value_at(50.0) == 5.0
        assert account.power_series.value_at(150.0) == 8.0

    def test_cumulative_series_tracks_total(self):
        account = EnergyAccount()
        account.charge("host", 10.0)
        account.sample_cumulative(5.0)
        account.charge("host", 10.0)
        account.sample_cumulative(10.0)
        assert account.cumulative_series.value_at(5.0) == 10.0
        assert account.cumulative_series.value_at(10.0) == 20.0


class TestModelDefaults:
    def test_pram_write_energy_exceeds_read(self):
        model = EnergyModel()
        assert model.pram_set_pj_per_byte > model.pram_read_pj_per_byte * 10

    def test_pram_standby_far_below_dram_background(self):
        # The headline DRAM-less energy story: PRAM needs no refresh.
        model = EnergyModel()
        assert model.pram_idle_w < model.accel_dram_background_w / 10

    def test_pe_power_states_ordered(self):
        model = EnergyModel()
        assert model.pe_sleep_w < model.pe_idle_w < model.pe_active_w

    def test_flash_program_exceeds_read(self):
        model = EnergyModel()
        assert model.flash_program_nj_per_page > model.flash_read_nj_per_page
