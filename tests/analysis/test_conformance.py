"""Three-phase addressing conformance: legal traces pass, illegal fail."""

import pytest

from repro.analysis import __main__ as analysis_main
from repro.analysis.conformance import (
    Command,
    CommandRecord,
    ProtocolChecker,
    ProtocolViolationError,
    check_trace,
    load_trace,
    save_trace,
)
from repro.controller import PramSubsystem
from repro.controller.scheduler import SchedulerPolicy
from repro.sim import Simulator


def run_workload(monitor, **subsystem_kwargs):
    """Drive a mixed read/write workload through a monitored subsystem."""
    sim = Simulator()
    subsystem = PramSubsystem(sim, monitor=monitor, **subsystem_kwargs)
    payload = bytes((i * 7) % 256 for i in range(16 * 1024))

    def driver():
        yield from subsystem.write(0, payload)
        first = yield from subsystem.read(0, len(payload))
        assert first == payload
        # Re-read to exercise RAB/RDB phase skipping on warm buffers.
        again = yield from subsystem.read(0, 4096)
        assert again == payload[:4096]

    sim.process(driver())
    sim.run()
    return subsystem


# ----------------------------------------------------------------------
# Legal traces
# ----------------------------------------------------------------------
def test_runtime_monitor_accepts_real_controller():
    monitor = ProtocolChecker(strict=True, record=True)
    run_workload(monitor)
    assert monitor.ok
    assert monitor.commands_checked > 0
    assert monitor.records


def test_recorded_trace_replays_clean_offline():
    monitor = ProtocolChecker(record=True)
    run_workload(monitor)
    assert check_trace(monitor.records) == []


def test_phase_skips_happen_and_are_legal():
    monitor = ProtocolChecker(strict=True, record=True)
    subsystem = run_workload(monitor)
    skips = sum(ch.phase_skips["pre_active"] for ch in subsystem.channels)
    assert skips > 0, "workload never exercised phase skipping"
    skip_records = [r for r in monitor.records
                    if r.skipped_pre_active or r.skipped_activate]
    assert skip_records, "no skip was recorded"
    assert monitor.ok


def test_monitored_run_with_pre_resets_and_wear_leveling():
    monitor = ProtocolChecker(strict=True)
    sim = Simulator()
    subsystem = PramSubsystem(
        sim, monitor=monitor, policy=SchedulerPolicy.FINAL,
        wear_leveling=True, gap_write_interval=4)
    payload = bytes(512) + bytes(range(256)) * 6

    def driver():
        subsystem.register_write_hint(0, len(payload))
        yield from subsystem.drain_hints()
        for _ in range(4):
            yield from subsystem.write(0, payload)
        data = yield from subsystem.read(0, len(payload))
        assert data == payload

    sim.process(driver())
    sim.run()
    assert monitor.ok


def test_trace_save_load_round_trip(tmp_path):
    monitor = ProtocolChecker(record=True)
    run_workload(monitor)
    path = tmp_path / "trace.jsonl"
    save_trace(monitor.records, path)
    loaded = load_trace(path)
    assert loaded == monitor.records
    assert analysis_main.main(["--trace", str(path)]) == 0


# ----------------------------------------------------------------------
# Illegal sequences
# ----------------------------------------------------------------------
def record(time, command, **fields):
    return CommandRecord(time=time, channel=0, module=0,
                         command=command, **fields)


def test_activate_before_pre_active_rejected():
    violations = check_trace([
        record(0.0, Command.ACTIVATE, buffer_id=0, partition=0, row=5,
               upper_row=0, lower_row=5),
    ])
    assert len(violations) == 1
    assert "before any pre-active" in violations[0].reason


def test_illegal_pre_active_skip_rejected():
    violations = check_trace([
        record(0.0, Command.PRE_ACTIVE, buffer_id=0, upper_row=1),
        record(10.0, Command.ACTIVATE, buffer_id=0, partition=0, row=70,
               upper_row=2, lower_row=6, skipped_pre_active=True),
    ])
    assert len(violations) == 1
    assert "illegal pre-active skip" in violations[0].reason


def test_illegal_activate_skip_rejected():
    violations = check_trace([
        record(0.0, Command.PRE_ACTIVE, buffer_id=1, upper_row=0),
        record(10.0, Command.READ_BURST, buffer_id=1, partition=0, row=3,
               skipped_activate=True),
    ])
    assert len(violations) == 1
    assert "illegal activate skip" in violations[0].reason


def test_rdb_row_mismatch_rejected():
    violations = check_trace([
        record(0.0, Command.PRE_ACTIVE, buffer_id=0, upper_row=0),
        record(5.0, Command.ACTIVATE, buffer_id=0, partition=0, row=4,
               upper_row=0, lower_row=4),
        record(9.0, Command.READ_BURST, buffer_id=0, partition=0, row=8),
    ])
    assert len(violations) == 1
    assert "burst targets partition 0 row 8" in violations[0].reason


def test_program_made_rdb_stale():
    violations = check_trace([
        record(0.0, Command.PRE_ACTIVE, buffer_id=0, upper_row=0),
        record(5.0, Command.ACTIVATE, buffer_id=0, partition=0, row=4,
               upper_row=0, lower_row=4),
        record(10.0, Command.STAGE_PROGRAM, partition=0, row=4),
        record(20.0, Command.EXECUTE_PROGRAM, partition=0, row=4),
        # The RDB copy of row 4 is now stale; bursting it is illegal.
        record(30.0, Command.READ_BURST, buffer_id=0, partition=0, row=4),
    ])
    assert len(violations) == 1
    assert "illegal activate skip" in violations[0].reason


def test_double_stage_and_orphan_execute_rejected():
    violations = check_trace([
        record(0.0, Command.STAGE_PROGRAM, partition=0, row=1),
        record(5.0, Command.STAGE_PROGRAM, partition=0, row=2),
        record(10.0, Command.EXECUTE_PROGRAM, partition=0, row=2),
        record(15.0, Command.EXECUTE_PROGRAM, partition=0, row=2),
    ])
    reasons = " | ".join(v.reason for v in violations)
    assert len(violations) == 2
    assert "already holds a staged program" in reasons
    assert "no staged program" in reasons


def test_time_going_backwards_rejected():
    violations = check_trace([
        record(10.0, Command.PRE_ACTIVE, buffer_id=0, upper_row=0),
        record(5.0, Command.PRE_ACTIVE, buffer_id=1, upper_row=0),
    ])
    assert len(violations) == 1
    assert "time went backwards" in violations[0].reason


def test_strict_checker_raises_immediately():
    checker = ProtocolChecker(strict=True)
    with pytest.raises(ProtocolViolationError) as excinfo:
        checker.observe(record(
            0.0, Command.READ_BURST, buffer_id=0, partition=0, row=0))
    assert "illegal activate skip" in str(excinfo.value)


def test_cli_rejects_illegal_trace(tmp_path):
    path = tmp_path / "bad.jsonl"
    save_trace([
        record(0.0, Command.ACTIVATE, buffer_id=0, partition=0, row=5,
               upper_row=0, lower_row=5),
    ], path)
    assert analysis_main.main(["--trace", str(path)]) == 1


# ----------------------------------------------------------------------
# Pytest fixture integration
# ----------------------------------------------------------------------
def test_protocol_monitor_fixture(protocol_monitor):
    run_workload(protocol_monitor)
    # teardown asserts conformance; nothing more to do here
