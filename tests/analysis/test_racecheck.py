"""Happens-before sanitizer and tie-break shuffle oracle."""

import pytest

from repro.analysis import racecheck
from repro.analysis.racecheck import (
    RaceSanitizer,
    canonical_fingerprint,
    certify_tiebreak_independence,
    format_races,
)
from repro.sim import Resource, Simulator, use_tiebreak
from repro.telemetry.bench import clear_attestations, collect_provenance


class UnguardedModel:
    """Two processes plainly assign ``count`` at the same instant."""

    def __init__(self, sim):
        self.sim = sim
        self.count = 0

    def writer(self, delay, value):
        yield self.sim.timeout(delay)
        self.count = value


class GuardedModel:
    """Same shape, but the read-modify-write holds a Resource."""

    def __init__(self, sim):
        self.sim = sim
        self.count = 0
        self.lock = Resource(sim, name="lock")

    def writer(self, delay, value):
        yield self.sim.timeout(delay)
        grant = self.lock.request()
        yield grant
        self.count = self.count + value
        self.lock.release(grant)


class AccumulatorModel:
    """Augmented adds: a sanitizer-visible conflict the shuffle refutes."""

    def __init__(self, sim):
        self.sim = sim
        self.count = 0

    def writer(self, delay, value):
        yield self.sim.timeout(delay)
        self.count += value


def run_unguarded():
    sim = Simulator()
    model = UnguardedModel(sim)
    sim.process(model.writer(10.0, 1), name="writer-a")
    sim.process(model.writer(10.0, 2), name="writer-b")
    sim.run()
    return {"count": model.count}


def run_accumulator():
    sim = Simulator()
    model = AccumulatorModel(sim)
    sim.process(model.writer(10.0, 1), name="writer-a")
    sim.process(model.writer(10.0, 2), name="writer-b")
    sim.run()
    return {"count": model.count}


# ----------------------------------------------------------------------
# Dynamic sanitizer
# ----------------------------------------------------------------------
def test_ww_race_detected_with_source_location():
    with racecheck.sanitize() as sanitizer:
        sim = Simulator()
        model = sanitizer.watch(UnguardedModel(sim), attrs=("count",))
        sim.process(model.writer(10.0, 1), name="writer-a")
        sim.process(model.writer(10.0, 2), name="writer-b")
        sim.run()
    races = sanitizer.races()
    assert len(races) == 1
    report = races[0]
    assert report.kinds == "W/W"
    assert report.attr == "count"
    assert report.time_ns == 10.0
    assert report.first.file.endswith("test_racecheck.py")
    assert report.first.line > 0
    assert {report.first.actor, report.second.actor} == {
        "writer-a", "writer-b"}
    assert "no happens-before path" in str(report)


def test_resource_guard_establishes_happens_before():
    with racecheck.sanitize() as sanitizer:
        sim = Simulator()
        model = sanitizer.watch(GuardedModel(sim), attrs=("count",))
        sim.process(model.writer(10.0, 1), name="writer-a")
        sim.process(model.writer(10.0, 2), name="writer-b")
        sim.run()
    assert sanitizer.races() == []
    assert model.count == 3
    # Uncontended claim and queue hand-off are distinct HB edge kinds.
    assert len(sanitizer.edges_of("acquire")) == 1
    assert len(sanitizer.edges_of("grant")) == 1


def test_event_trigger_edges_cover_succeed_causality():
    with racecheck.sanitize() as sanitizer:
        sim = Simulator()

        class Pair:
            def __init__(self):
                self.value = 0

        pair = sanitizer.watch(Pair(), attrs=("value",))
        gate = sim.event("gate")

        def signaller():
            yield sim.timeout(10.0)
            pair.value = 1
            gate.succeed()

        def waiter():
            yield gate
            pair.value = 2

        sim.process(signaller(), name="signaller")
        sim.process(waiter(), name="waiter")
        sim.run()
    # Both writes land at t=10.0, but succeed() -> resumption is a
    # trigger edge, so the waiter's write is ordered after.
    assert sanitizer.races() == []
    assert any(edge.kind == "trigger" for edge in sanitizer.hb_edges)


def test_reads_do_not_race_with_reads():
    with racecheck.sanitize() as sanitizer:
        sim = Simulator()

        class Shared:
            def __init__(self):
                self.value = 7

        shared = sanitizer.watch(Shared(), attrs=("value",))

        def reader(name):
            yield sim.timeout(5.0)
            assert shared.value == 7

        sim.process(reader("a"), name="a")
        sim.process(reader("b"), name="b")
        sim.run()
    assert sanitizer.races() == []


def test_read_write_conflict_reported():
    with racecheck.sanitize() as sanitizer:
        sim = Simulator()
        model = sanitizer.watch(UnguardedModel(sim), attrs=("count",))

        def reader():
            yield sim.timeout(10.0)
            _ = model.count

        sim.process(model.writer(10.0, 1), name="writer")
        sim.process(reader(), name="reader")
        sim.run()
    races = sanitizer.races()
    assert len(races) == 1
    assert races[0].kinds == "R/W"


def test_happens_before_is_ancestor_test():
    from repro.sim.sanitizer import use_sanitizer

    sanitizer = RaceSanitizer()
    with use_sanitizer(sanitizer):
        sim = Simulator()

        def parent():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(parent(), name="p")
        sim.run()
    # Root reaches everything; later tasks never reach earlier ones.
    last = len(sanitizer.hb_edges)
    assert sanitizer.happens_before(0, last)
    assert not sanitizer.happens_before(last, 0)
    for edge in sanitizer.hb_edges:
        assert sanitizer.happens_before(edge.src, edge.dst)


def test_init_writes_never_race_with_run_writes():
    with racecheck.sanitize() as sanitizer:
        sim = Simulator()
        model = sanitizer.watch(UnguardedModel(sim), attrs=("count",))
        model.count = 0  # root-task write at t=0
        sim.process(model.writer(0.0, 1), name="writer")
        sim.run()
    # The root task is an ancestor of every task, so the t=0 writes
    # are HB-ordered even though the timestamps are equal.
    assert sanitizer.races() == []


@pytest.mark.determinism
def test_sanitizer_report_is_byte_identical_across_runs():
    def observe():
        with racecheck.sanitize() as sanitizer:
            sim = Simulator()
            model = sanitizer.watch(UnguardedModel(sim), attrs=("count",))
            sim.process(model.writer(10.0, 1), name="writer-a")
            sim.process(model.writer(10.0, 2), name="writer-b")
            sim.run()
        return format_races(sanitizer.races())

    assert observe() == observe()


def test_race_sanitizer_fixture_fails_on_races():
    # The fixture itself is exercised positively by the guarded tests;
    # here we check the negative path manually (a fixture that fails in
    # teardown cannot be asserted on in-line).
    sanitizer = RaceSanitizer()
    from repro.sim.sanitizer import use_sanitizer

    with use_sanitizer(sanitizer):
        sim = Simulator()
        model = sanitizer.watch(UnguardedModel(sim), attrs=("count",))
        sim.process(model.writer(10.0, 1), name="writer-a")
        sim.process(model.writer(10.0, 2), name="writer-b")
        sim.run()
    sanitizer.stop()
    assert sanitizer.races(), "expected the unguarded model to race"


def test_watch_discovers_instance_attributes_by_default():
    with racecheck.sanitize() as sanitizer:
        sim = Simulator()
        model = sanitizer.watch(UnguardedModel(sim), name="device")
        sim.process(model.writer(10.0, 1), name="writer-a")
        sim.process(model.writer(10.0, 2), name="writer-b")
        sim.run()
    races = sanitizer.races()
    assert any(r.attr == "count" and r.obj == "device" for r in races)


# ----------------------------------------------------------------------
# Tie-break shuffle oracle
# ----------------------------------------------------------------------
def test_shuffle_oracle_refutes_order_dependent_workload():
    certificate = certify_tiebreak_independence(
        run_unguarded, subject="unguarded", runs=8, attest=False)
    assert not certificate.independent
    assert certificate.mismatches
    assert "divergence at byte" in certificate.mismatches[0].divergence
    assert "DEPENDENT" in certificate.summary()


def test_shuffle_oracle_certifies_commutative_workload():
    clear_attestations()
    try:
        certificate = certify_tiebreak_independence(
            run_accumulator, subject="accumulator", runs=5)
        assert certificate.independent
        assert certificate.mismatches == ()
        assert "tiebreak-independent" in certificate.summary()
        # The attestation flows into every later provenance block.
        provenance = collect_provenance()
        stamped = provenance["attestations"]["tiebreak_independent"]
        assert stamped["independent"] is True
        assert stamped["subject"] == "accumulator"
        assert stamped["runs"] == 5
    finally:
        clear_attestations()


def test_sanitizer_flags_what_the_shuffle_refutes():
    # The sanitizer reports the accumulator's same-instant W/W conflict
    # (it cannot know += commutes); the shuffle oracle then refutes any
    # observable effect.  Together they say: "racy access, benign
    # outcome" — exactly the two-sided report the issue asks for.
    with racecheck.sanitize() as sanitizer:
        sim = Simulator()
        model = sanitizer.watch(AccumulatorModel(sim), attrs=("count",))
        sim.process(model.writer(10.0, 1), name="writer-a")
        sim.process(model.writer(10.0, 2), name="writer-b")
        sim.run()
    assert sanitizer.races(), "sanitizer should flag the += conflict"
    certificate = certify_tiebreak_independence(
        run_accumulator, subject="accumulator", runs=5, attest=False)
    assert certificate.independent


def test_shuffled_runs_converge_to_same_end_state_when_commutative():
    baseline = run_accumulator()
    for seed in (1, 2, 3):
        with use_tiebreak(seed):
            assert run_accumulator() == baseline


def test_certify_validates_runs():
    with pytest.raises(ValueError):
        certify_tiebreak_independence(run_accumulator, runs=0,
                                      attest=False)


# ----------------------------------------------------------------------
# Canonical fingerprint
# ----------------------------------------------------------------------
def test_canonical_fingerprint_is_order_insensitive_for_dicts():
    assert canonical_fingerprint({"b": 2, "a": 1}) == \
        canonical_fingerprint({"a": 1, "b": 2})


def test_canonical_fingerprint_handles_rich_values():
    import dataclasses

    @dataclasses.dataclass
    class Stats:
        hits: int
        tags: tuple

    fingerprint = canonical_fingerprint(
        {"stats": Stats(3, ("a", "b")), "seen": {2, 1}})
    assert '"hits":3' in fingerprint
    assert '"seen":["1","2"]' in fingerprint


def test_canonical_fingerprint_scrubs_memory_addresses():
    class Opaque:
        pass

    first = canonical_fingerprint(Opaque())
    second = canonical_fingerprint(Opaque())
    assert first == second
    assert "0x-" in first
