"""Determinism harness: identical runs pass, divergent runs fail."""

import random

import pytest

from repro.analysis.determinism import (
    DeterminismError,
    assert_deterministic,
    capture_trace,
    diff_traces,
    trace_of,
)
from repro.controller import PramSubsystem
from repro.sim import Simulator
from repro.telemetry import NULL_TRACER, current_tracer


def subsystem_workload():
    sim = Simulator()
    subsystem = PramSubsystem(sim)
    payload = bytes((i * 37 + (i >> 8) * 11) % 256 for i in range(2048))

    def driver():
        yield from subsystem.write(0, payload)
        data = yield from subsystem.read(0, len(payload))
        assert data == payload

    sim.process(driver())
    sim.run()


def nondeterministic_workload():
    sim = Simulator()

    def jitter():
        # Unseeded module-level RNG: each run draws different delays.
        yield sim.timeout(random.random() * 100.0 + 1.0)  # noqa: SIM001

    sim.process(jitter(), name="jitter")
    sim.run()


def test_real_subsystem_workload_is_deterministic():
    trace = assert_deterministic(subsystem_workload)
    assert trace, "workload produced no events"


def test_unseeded_randomness_is_caught():
    with pytest.raises(DeterminismError, match="nondeterministic"):
        assert_deterministic(nondeterministic_workload, runs=5)


def test_assert_deterministic_needs_two_runs():
    with pytest.raises(ValueError):
        assert_deterministic(subsystem_workload, runs=1)


def test_capture_trace_is_scoped():
    with capture_trace() as sink:
        subsystem_workload()
    assert sink
    assert current_tracer() is NULL_TRACER
    before = len(sink)
    subsystem_workload()  # outside the context: not observed
    assert len(sink) == before


def test_nested_captures_do_not_clobber():
    # The seed's class-level sink made nested captures lose the outer
    # one; the ambient tracer restores it on exit and both observe.
    with capture_trace() as outer:
        with capture_trace() as inner:
            subsystem_workload()
        assert inner
        assert outer == inner  # outer tracer kept observing
        inner_len = len(inner)
        subsystem_workload()  # inner closed: only outer grows
        assert len(inner) == inner_len
        assert len(outer) == 2 * inner_len


def test_trace_entries_carry_time_and_label():
    trace = trace_of(subsystem_workload)
    times = [t for t, _ in trace]
    assert times == sorted(times)
    assert all(isinstance(label, str) and label for _, label in trace)


def test_diff_traces_reports_first_divergence():
    a = [(0.0, "alpha"), (1.0, "beta")]
    assert diff_traces(a, a) is None
    message = diff_traces(a, [(0.0, "alpha"), (2.0, "beta")])
    assert message is not None and "event 1" in message
    message = diff_traces(a, a + [(2.0, "gamma")])
    assert message is not None and "2 events" in message


@pytest.mark.determinism
def test_marker_reruns_and_compares():
    # The plugin runs this body twice and diffs the kernel traces.
    subsystem_workload()
