"""Every SIM rule fires on its fixture and stays quiet on clean code."""

import pathlib

import pytest

from repro.analysis import __main__ as analysis_main
from repro.analysis.lint import lint_file, lint_paths, lint_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def codes_in(path):
    return [v.code for v in lint_file(path)]


def test_sim001_wallclock_and_ambient_random():
    codes = codes_in(FIXTURES / "bad_sim001_wallclock.py")
    assert codes.count("SIM001") == 2
    assert set(codes) == {"SIM001"}


def test_sim001_messages_name_the_offender():
    violations = lint_file(FIXTURES / "bad_sim001_wallclock.py")
    messages = " ".join(v.message for v in violations)
    assert "time" in messages
    assert "random" in messages


def test_sim002_non_event_yields():
    violations = lint_file(FIXTURES / "bad_sim002_yield.py")
    assert [v.code for v in violations] == ["SIM002"] * 4
    # one violation per offending yield: int, str, tuple, bare
    assert len({v.line for v in violations}) == 4


def test_sim002_ignores_data_generators():
    source = (
        "def rows(n):\n"
        "    for i in range(n):\n"
        "        yield i, i * 2\n"
    )
    assert lint_source(source) == []


def test_sim003_negative_and_non_numeric_latencies():
    violations = lint_file(FIXTURES / "bad_sim003_latency.py")
    assert [v.code for v in violations] == ["SIM003"] * 3


def test_sim004_mutable_defaults():
    violations = lint_file(FIXTURES / "bad_sim004_defaults.py")
    assert [v.code for v in violations] == ["SIM004"] * 3


def test_sim005_stale_read_across_yield_and_global():
    violations = lint_file(FIXTURES / "bad_sim005_race.py")
    codes = [v.code for v in violations]
    assert codes == ["SIM005"] * 2


def test_sim005_quiet_when_resource_held():
    source = (
        "def body(self):\n"
        "    grant = self.lock.request()\n"
        "    yield grant\n"
        "    snapshot = self.count\n"
        "    yield self.sim.timeout(1.0)\n"
        "    self.count = snapshot + 1\n"
    )
    assert lint_source(source) == []


def test_sim005_interprocedural_snapshot_and_writeback():
    violations = lint_file(FIXTURES / "bad_sim005_interproc.py")
    assert [v.code for v in violations] == ["SIM005"]
    assert "self._store()" in violations[0].message


def test_sim005_quiet_when_helper_acquires():
    source = (
        "class Device:\n"
        "    def _claim(self):\n"
        "        return self.lock.request()\n"
        "    def body(self):\n"
        "        grant = self._claim()\n"
        "        yield grant\n"
        "        snapshot = self.count\n"
        "        yield self.sim.timeout(1.0)\n"
        "        self.count = snapshot + 1\n"
    )
    assert lint_source(source) == []


def test_sim006_unguarded_write_family():
    violations = lint_file(FIXTURES / "bad_sim006_unguarded.py")
    assert [v.code for v in violations] == ["SIM006"]
    message = violations[0].message
    assert "writer_a" in message and "writer_b" in message
    assert "self.state" in message
    # augmented assignments (self.ticks += 1) never form a family
    assert "ticks" not in message


def test_sim006_quiet_when_any_writer_acquires():
    source = (
        "class Device:\n"
        "    def writer_a(self):\n"
        "        req = self.lock.request()\n"
        "        yield req\n"
        "        self.state = 1\n"
        "    def writer_b(self):\n"
        "        yield self.sim.timeout(5.0)\n"
        "        self.state = 2\n"
    )
    assert lint_source(source) == []


def test_sim006_quiet_for_yield_from_subgenerators():
    # Sub-generators driven by one process body are not concurrent.
    source = (
        "class Device:\n"
        "    def run(self):\n"
        "        yield from self.phase_a()\n"
        "        yield from self.phase_b()\n"
        "    def phase_a(self):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        self.state = 1\n"
        "    def phase_b(self):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        self.state = 2\n"
    )
    assert lint_source(source) == []


def test_sim007_same_instant_fanout():
    violations = lint_file(FIXTURES / "bad_sim007_fanout.py")
    assert [v.code for v in violations] == ["SIM007", "SIM007"]
    assert "self.last_worker" in violations[0].message


def test_sim007_quiet_when_loop_yields_between_spawns():
    source = (
        "class Pool:\n"
        "    def worker(self, i):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        self.last = i\n"
        "    def boss(self):\n"
        "        for i in range(4):\n"
        "            self.sim.process(self.worker(i))\n"
        "            yield self.sim.timeout(1.0)\n"
    )
    assert lint_source(source) == []


def test_clean_fixture_is_clean():
    assert codes_in(FIXTURES / "clean_process.py") == []


def test_noqa_suppresses_a_single_rule():
    assert lint_source("import time  # noqa: SIM001\n") == []
    assert lint_source("import time  # noqa\n") == []
    # an unrelated code does not suppress
    assert [v.code for v in lint_source("import time  # noqa: SIM004\n")] == [
        "SIM001"]


def test_syntax_errors_reported_not_raised():
    violations = lint_source("def broken(:\n")
    assert [v.code for v in violations] == ["SIM000"]


def test_lint_paths_walks_directories():
    violations = lint_paths([FIXTURES])
    assert {v.code for v in violations} == {
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
        "SIM006", "SIM007"}


def test_repo_source_tree_is_self_clean():
    src = pathlib.Path(__file__).parents[2] / "src" / "repro"
    assert lint_paths([src]) == []


@pytest.mark.parametrize("target,expected", [
    ("fixtures", 1),
    ("src", 0),
])
def test_cli_exit_codes(target, expected, capsys):
    if target == "fixtures":
        path = str(FIXTURES)
    else:
        path = str(pathlib.Path(__file__).parents[2] / "src" / "repro")
    assert analysis_main.main([path]) == expected
    out = capsys.readouterr().out
    assert "violation(s)" in out


def test_cli_json_format(capsys):
    assert analysis_main.main([str(FIXTURES), "--format", "json"]) == 1
    out = capsys.readouterr().out
    assert '"SIM001"' in out


def test_cli_github_format_emits_workflow_annotations(capsys):
    path = str(FIXTURES / "bad_sim006_unguarded.py")
    assert analysis_main.main([path, "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert f"::error file={path},line=10,title=SIM006::" in out
    assert out.strip().endswith("1 violation(s)")


def test_cli_sarif_format_is_valid_sarif(capsys):
    import json as json_module

    path = str(FIXTURES / "bad_sim007_fanout.py")
    assert analysis_main.main([path, "--format", "sarif"]) == 1
    document = json_module.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.analysis"
    assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == {
        "SIM007"}
    result = run["results"][0]
    assert result["ruleId"] == "SIM007"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == path
    assert location["region"]["startLine"] == 16


def test_cli_sarif_format_clean_tree_has_no_results(capsys):
    src = pathlib.Path(__file__).parents[2] / "src" / "repro"
    import json as json_module

    assert analysis_main.main([str(src), "--format", "sarif"]) == 0
    document = json_module.loads(capsys.readouterr().out)
    assert document["runs"][0]["results"] == []


def test_cli_shuffle_rejects_unknown_experiment(capsys):
    assert analysis_main.main(["--shuffle", "not_a_figure"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment(s): not_a_figure" in err
