"""Every SIM rule fires on its fixture and stays quiet on clean code."""

import pathlib

import pytest

from repro.analysis import __main__ as analysis_main
from repro.analysis.lint import lint_file, lint_paths, lint_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def codes_in(path):
    return [v.code for v in lint_file(path)]


def test_sim001_wallclock_and_ambient_random():
    codes = codes_in(FIXTURES / "bad_sim001_wallclock.py")
    assert codes.count("SIM001") == 2
    assert set(codes) == {"SIM001"}


def test_sim001_messages_name_the_offender():
    violations = lint_file(FIXTURES / "bad_sim001_wallclock.py")
    messages = " ".join(v.message for v in violations)
    assert "time" in messages
    assert "random" in messages


def test_sim002_non_event_yields():
    violations = lint_file(FIXTURES / "bad_sim002_yield.py")
    assert [v.code for v in violations] == ["SIM002"] * 4
    # one violation per offending yield: int, str, tuple, bare
    assert len({v.line for v in violations}) == 4


def test_sim002_ignores_data_generators():
    source = (
        "def rows(n):\n"
        "    for i in range(n):\n"
        "        yield i, i * 2\n"
    )
    assert lint_source(source) == []


def test_sim003_negative_and_non_numeric_latencies():
    violations = lint_file(FIXTURES / "bad_sim003_latency.py")
    assert [v.code for v in violations] == ["SIM003"] * 3


def test_sim004_mutable_defaults():
    violations = lint_file(FIXTURES / "bad_sim004_defaults.py")
    assert [v.code for v in violations] == ["SIM004"] * 3


def test_sim005_stale_read_across_yield_and_global():
    violations = lint_file(FIXTURES / "bad_sim005_race.py")
    codes = [v.code for v in violations]
    assert codes == ["SIM005"] * 2


def test_sim005_quiet_when_resource_held():
    source = (
        "def body(self):\n"
        "    grant = self.lock.request()\n"
        "    yield grant\n"
        "    snapshot = self.count\n"
        "    yield self.sim.timeout(1.0)\n"
        "    self.count = snapshot + 1\n"
    )
    assert lint_source(source) == []


def test_clean_fixture_is_clean():
    assert codes_in(FIXTURES / "clean_process.py") == []


def test_noqa_suppresses_a_single_rule():
    assert lint_source("import time  # noqa: SIM001\n") == []
    assert lint_source("import time  # noqa\n") == []
    # an unrelated code does not suppress
    assert [v.code for v in lint_source("import time  # noqa: SIM004\n")] == [
        "SIM001"]


def test_syntax_errors_reported_not_raised():
    violations = lint_source("def broken(:\n")
    assert [v.code for v in violations] == ["SIM000"]


def test_lint_paths_walks_directories():
    violations = lint_paths([FIXTURES])
    assert {v.code for v in violations} == {
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005"}


def test_repo_source_tree_is_self_clean():
    src = pathlib.Path(__file__).parents[2] / "src" / "repro"
    assert lint_paths([src]) == []


@pytest.mark.parametrize("target,expected", [
    ("fixtures", 1),
    ("src", 0),
])
def test_cli_exit_codes(target, expected, capsys):
    if target == "fixtures":
        path = str(FIXTURES)
    else:
        path = str(pathlib.Path(__file__).parents[2] / "src" / "repro")
    assert analysis_main.main([path]) == expected
    out = capsys.readouterr().out
    assert "violation(s)" in out


def test_cli_json_format(capsys):
    assert analysis_main.main([str(FIXTURES), "--format", "json"]) == 1
    out = capsys.readouterr().out
    assert '"SIM001"' in out
