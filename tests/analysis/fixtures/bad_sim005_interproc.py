"""SIM005 (interprocedural): stale read-modify-write through helpers."""


class Tank:
    def __init__(self, sim):
        self.sim = sim
        self.level = 0

    def _load(self):
        return self.level

    def _store(self, value):
        self.level = value

    def refill(self, amount):
        snapshot = self._load()
        yield self.sim.timeout(3.0)
        self._store(snapshot + amount)
