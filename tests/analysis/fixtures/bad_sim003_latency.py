"""SIM003: negative / non-numeric latencies handed to the kernel."""


def body(sim, event):
    yield sim.timeout(-10.0)
    sim._schedule(-1, event)
    yield sim.timeout("10ns")
