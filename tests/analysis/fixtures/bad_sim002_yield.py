"""SIM002: process generator yielding things that are not Events."""


def body(sim):
    yield sim.timeout(5.0)
    yield 42
    yield "latency"
    yield (1, 2)
    yield
