"""A well-behaved module: none of the SIM rules should fire here."""

import random


class Device:
    def __init__(self, sim, seed=0):
        self.sim = sim
        self.rng = random.Random(seed)
        self.count = 0
        self.busy_ns = 0.0

    def body(self, bus, duration):
        grant = bus.request()
        yield grant
        try:
            yield self.sim.timeout(duration)
            self.busy_ns += duration
        finally:
            bus.release(grant)
        self.count += 1


def rows(geometry):
    for row in range(geometry):
        yield row, row * 2
