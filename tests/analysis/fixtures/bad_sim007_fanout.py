"""SIM007: same-instant fan-out onto process bodies with unguarded writes."""


class Pool:
    def __init__(self, sim):
        self.sim = sim
        self.last_worker = None

    def worker(self, index):
        yield self.sim.timeout(1.0)
        self.last_worker = index

    def boss(self):
        for index in range(4):
            # Every worker bootstraps at the same simulated instant.
            self.sim.process(self.worker(index))
        yield self.sim.timeout(10.0)

    def comprehension_boss(self):
        procs = [self.sim.process(self.worker(i)) for i in range(4)]
        yield self.sim.all_of(procs)
