"""SIM006: two process bodies plainly assign one attribute, unguarded."""


class Device:
    def __init__(self, sim):
        self.sim = sim
        self.state = 0
        self.ticks = 0

    def writer_a(self):
        yield self.sim.timeout(5.0)
        self.state = 1
        self.ticks += 1  # augmented: atomic + commutative, exempt

    def writer_b(self):
        yield self.sim.timeout(5.0)
        self._stamp(2)
        self.ticks += 1

    def _stamp(self, value):
        # Interprocedural: the write reaches self.state through a helper.
        self.state = value
