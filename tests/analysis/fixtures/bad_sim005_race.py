"""SIM005: shared-state read-modify-write spanning a yield, unlocked."""

TOTAL = 0


class Counter:
    def __init__(self, sim):
        self.sim = sim
        self.count = 0

    def bump(self):
        snapshot = self.count
        yield self.sim.timeout(10.0)
        self.count = snapshot + 1


def global_writer(sim):
    global TOTAL
    yield sim.timeout(1.0)
    TOTAL += 1
