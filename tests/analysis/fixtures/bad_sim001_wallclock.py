"""SIM001: wall-clock and ambient randomness inside a device model."""

import time

import random


def now_stamp():
    return time.time()


def jitter():
    return random.random()
