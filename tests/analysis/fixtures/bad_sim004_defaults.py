"""SIM004: mutable default arguments."""

import collections


def track(sample, history=[]):
    history.append(sample)
    return history


def index(key, table={}):
    return table.setdefault(key, len(table))


def backlog(item, queue=collections.deque()):
    queue.append(item)
    return queue
