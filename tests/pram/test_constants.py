"""Table II parameters and geometry invariants."""

import pytest

from repro.pram import (
    PRAM_ERASE_LATENCY_NS,
    PRAM_RESET_ONLY_LATENCY_NS,
    PRAM_WRITE_OVERWRITE_NS,
    PRAM_WRITE_PRISTINE_NS,
    PramGeometry,
    PramTimingParams,
)


class TestTimingParams:
    def test_table2_defaults(self):
        params = PramTimingParams()
        assert params.read_latency_cycles == 6
        assert params.write_latency_cycles == 3
        assert params.tck_ns == 2.5
        assert params.trp_cycles == 3
        assert params.trcd_ns == 80.0
        assert params.twr_ns == 15.0

    def test_cycle_to_ns_conversion(self):
        params = PramTimingParams()
        assert params.rl_ns == 15.0       # 6 * 2.5
        assert params.wl_ns == 7.5        # 3 * 2.5
        assert params.trp_ns == 7.5       # 3 * 2.5
        assert params.tburst_ns == 40.0   # BL16 * 2.5

    def test_write_asymmetry(self):
        # Section VI: write ~10us, overwrites need an extra 8us.
        assert PRAM_WRITE_PRISTINE_NS == 10_000.0
        assert PRAM_WRITE_OVERWRITE_NS == 18_000.0
        assert PRAM_RESET_ONLY_LATENCY_NS == 8_000.0

    def test_erase_is_about_3000x_an_overwrite(self):
        ratio = PRAM_ERASE_LATENCY_NS / PRAM_WRITE_OVERWRITE_NS
        assert 3_000 <= ratio <= 3_500

    def test_burst_length_validation(self):
        for valid in (4, 8, 16):
            PramTimingParams(burst_length=valid)
        with pytest.raises(ValueError):
            PramTimingParams(burst_length=5)

    def test_tck_must_be_positive(self):
        with pytest.raises(ValueError):
            PramTimingParams(tck_ns=0.0)


class TestGeometry:
    def test_section_2a_defaults(self):
        geo = PramGeometry()
        assert geo.channels == 2
        assert geo.modules_per_channel == 16
        assert geo.partitions_per_bank == 16
        assert geo.tiles_per_partition == 64
        assert geo.bitlines_per_tile == 2048
        assert geo.wordlines_per_tile == 4096
        assert geo.rab_count == 4
        assert geo.rdb_count == 4
        assert geo.row_bytes == 32

    def test_partition_capacity(self):
        geo = PramGeometry()
        # 64 tiles * 2048 BL * 4096 WL bits = 64 MiB
        assert geo.partition_bytes == 64 * 1024 * 1024

    def test_module_and_total_capacity(self):
        geo = PramGeometry()
        assert geo.module_bytes == 1024 * 1024 * 1024        # 1 GiB
        assert geo.total_bytes == 32 * 1024 * 1024 * 1024    # 32 GiB

    def test_rows_per_partition(self):
        geo = PramGeometry()
        assert geo.rows_per_partition == geo.partition_bytes // 32

    def test_row_address_split(self):
        geo = PramGeometry()
        assert geo.row_address_bits == 21  # 2M rows
        assert geo.upper_row_bits == geo.row_address_bits - geo.lower_row_bits

    def test_words_per_row(self):
        assert PramGeometry().words_per_row == 8

    def test_rejects_non_positive_fields(self):
        with pytest.raises(ValueError):
            PramGeometry(channels=0)

    def test_rejects_misaligned_word_size(self):
        with pytest.raises(ValueError):
            PramGeometry(row_bytes=32, word_bytes=5)
