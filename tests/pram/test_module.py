"""End-to-end PRAM module tests: three-phase addressing, writes, erase."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import (
    AddressError,
    BufferMissError,
    PramGeometry,
    PramModule,
    ProtocolError,
)
from repro.pram.overlay_window import CMD_ERASE, CMD_SELECTIVE_ERASE


@pytest.fixture
def module():
    return PramModule()


def full_read(module, partition, row, now=0.0, buffer_id=0):
    """Drive the whole three-phase read sequence, return (finish, data)."""
    from repro.pram import AddressMap

    upper, lower = AddressMap(module.geometry).split_row(row)
    t = module.pre_active(now, buffer_id, upper)
    t = module.activate(t, buffer_id, partition, lower)
    return module.read_burst(t, buffer_id, column=0,
                             size=module.geometry.row_bytes)


def full_write(module, partition, row, data, now=0.0):
    """Stage + execute a program, return the finish time."""
    t = module.stage_program(now, partition, row, 0, data)
    return module.execute_program(t)


class TestThreePhaseRead:
    def test_unwritten_rows_read_zero(self, module):
        _, data = full_read(module, partition=0, row=5)
        assert data == bytes(32)

    def test_read_latency_near_100ns(self, module):
        finish, _ = full_read(module, 0, 5)
        assert 100.0 <= finish <= 160.0

    def test_read_returns_written_data(self, module):
        payload = bytes(range(32))
        full_write(module, 2, 7, payload)
        _, data = full_read(module, 2, 7)
        assert data == payload

    def test_activate_requires_pre_active(self, module):
        with pytest.raises(ProtocolError):
            module.activate(0.0, buffer_id=0, partition=0, lower_row=0)

    def test_read_burst_requires_valid_rdb(self, module):
        with pytest.raises(BufferMissError):
            module.read_burst(0.0, buffer_id=0, column=0, size=32)

    def test_burst_bounds_checked(self, module):
        module.pre_active(0.0, 0, 0)
        module.activate(10.0, 0, 0, 0)
        with pytest.raises(AddressError):
            module.read_burst(100.0, 0, column=20, size=20)

    def test_partial_column_read(self, module):
        full_write(module, 0, 0, bytes(range(32)))
        module.pre_active(0.0, 0, 0)
        module.activate(10.0, 0, 0, 0)
        _, data = module.read_burst(100.0, 0, column=8, size=8)
        assert data == bytes(range(8, 16))

    def test_rdb_hit_allows_repeat_burst_without_activate(self, module):
        full_write(module, 0, 0, b"\xAA" * 32)
        finish, _ = full_read(module, 0, 0)
        # Buffer still valid: burst again directly.
        finish2, data = module.read_burst(finish, 0, 0, 32)
        assert data == b"\xAA" * 32
        assert finish2 - finish == pytest.approx(57.5)


class TestWritePath:
    def test_write_latency_is_program_dominated(self, module):
        finish = full_write(module, 0, 0, bytes(32))
        assert 10_000.0 <= finish <= 11_000.0

    def test_overwrite_pays_reset_pass(self, module):
        first = full_write(module, 0, 0, b"\x11" * 32)
        second = full_write(module, 0, 0, b"\x22" * 32, now=first)
        assert (second - first) - first == pytest.approx(8_000.0, abs=500.0)

    def test_write_invalidates_stale_rdb_copy(self, module):
        full_write(module, 0, 0, b"\x01" * 32)
        full_read(module, 0, 0)  # RDB now caches the row
        full_write(module, 0, 0, b"\x02" * 32)
        _, data = full_read(module, 0, 0)
        assert data == b"\x02" * 32

    def test_multi_row_program_spills_correctly(self, module):
        payload = bytes(range(64))
        full_write(module, 0, 10, payload)
        _, first = full_read(module, 0, 10)
        _, second = full_read(module, 0, 11)
        assert first + second == payload

    def test_partition_busy_serializes_programs(self, module):
        finish = full_write(module, 0, 0, bytes(32))
        # Stage the next program immediately; the array program must
        # queue behind the first partition occupancy.
        t = module.stage_program(0.0, 0, 1, 0, bytes(32))
        assert t < finish
        second_finish = module.execute_program(t)
        assert second_finish >= finish + 10_000.0

    def test_different_partitions_program_in_parallel_windows(self, module):
        finish_a = full_write(module, 0, 0, bytes(32))
        # Partition 1 is idle: its program does not queue behind 0's.
        t = module.stage_program(0.0, 1, 0, 0, bytes(32))
        finish_b = module.execute_program(t)
        assert finish_b < finish_a + 10_000.0

    def test_empty_payload_rejected(self, module):
        with pytest.raises(ProtocolError):
            module.stage_program(0.0, 0, 0, 0, b"")

    def test_oversized_payload_rejected(self, module):
        with pytest.raises(AddressError):
            module.stage_program(0.0, 0, 0, 0, bytes(1024))

    def test_bad_partition_rejected(self, module):
        with pytest.raises(AddressError):
            module.stage_program(0.0, 16, 0, 0, bytes(32))


class TestSelectiveErase:
    def test_pre_reset_makes_next_write_set_only(self, module):
        full_write(module, 0, 0, b"\x33" * 32)  # now programmed
        t = module.stage_program(0.0, 0, 0, 0, bytes(32),
                                 command=CMD_SELECTIVE_ERASE)
        reset_done = module.execute_program(t)
        start = reset_done
        finish = full_write(module, 0, 0, b"\x44" * 32, now=start)
        # SET-only: ~10us, not ~18us.
        assert finish - start < 11_000.0

    def test_reset_zeroes_the_data(self, module):
        full_write(module, 0, 0, b"\x55" * 32)
        t = module.stage_program(0.0, 0, 0, 0, bytes(32),
                                 command=CMD_SELECTIVE_ERASE)
        module.execute_program(t)
        _, data = full_read(module, 0, 0)
        assert data == bytes(32)

    def test_reset_cost_is_reset_only_latency(self, module):
        full_write(module, 0, 0, b"\x66" * 32)
        busy_from = module.partition_ready_at(0)
        t = module.stage_program(busy_from, 0, 0, 0, bytes(32),
                                 command=CMD_SELECTIVE_ERASE)
        finish = module.execute_program(t)
        assert finish - t == pytest.approx(8_000.0 + 15.0)


class TestErase:
    def test_erase_blocks_partition_for_60ms(self, module):
        full_write(module, 3, 0, b"\x77" * 32)
        t = module.stage_program(100_000.0, 3, 0, 0, b"\x00",
                                 command=CMD_ERASE)
        finish = module.execute_program(t)
        assert finish - t >= 60_000_000.0
        assert module.partition_ready_at(3) >= 60_000_000.0

    def test_erase_returns_partition_to_pristine(self, module):
        full_write(module, 3, 0, b"\x77" * 32)
        t = module.stage_program(0.0, 3, 0, 0, b"\x00", command=CMD_ERASE)
        module.execute_program(t)
        _, data = full_read(module, 3, 0)
        assert data == bytes(32)
        # Writes after an erase are SET-only again.
        start = module.partition_ready_at(3)
        finish = full_write(module, 3, 0, b"\x88" * 32, now=start)
        assert finish - start < 11_000.0


class TestPeekPoke:
    def test_poke_preloads_data(self, module):
        module.poke(0, 100, b"\x99" * 32)
        assert module.peek(0, 100) == b"\x99" * 32
        _, data = full_read(module, 0, 100)
        assert data == b"\x99" * 32

    def test_poked_rows_count_as_programmed(self, module):
        module.poke(0, 100, b"\x99" * 32)
        assert module.program_needs_reset(0, 100, 0, 32)

    def test_poke_requires_full_row(self, module):
        with pytest.raises(AddressError):
            module.poke(0, 0, b"short")


class TestCounters:
    def test_operation_counters(self, module):
        full_write(module, 0, 0, bytes(32))
        full_read(module, 0, 0)
        t = module.stage_program(0.0, 0, 1, 0, bytes(32),
                                 command=CMD_SELECTIVE_ERASE)
        module.execute_program(t)
        assert module.programs == 1
        assert module.reads == 1
        assert module.resets == 1


@given(st.binary(min_size=32, max_size=32),
       st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_write_read_roundtrip_property(payload, partition, row):
    """Whatever is programmed is what a later read returns."""
    module = PramModule()
    full_write(module, partition, row, payload)
    _, data = full_read(module, partition, row)
    assert data == payload


def test_small_geometry_supported():
    geo = PramGeometry(channels=1, modules_per_channel=1,
                       partitions_per_bank=2, tiles_per_partition=1,
                       bitlines_per_tile=64, wordlines_per_tile=64)
    module = PramModule(geometry=geo)
    full_write(module, 0, 0, bytes(geo.row_bytes))
    _, data = full_read(module, 0, 0)
    assert data == bytes(geo.row_bytes)
