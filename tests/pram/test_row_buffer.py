"""RAB/RDB row-buffer file tests."""

import pytest

from repro.pram import RowBufferSet


def make_buffers(count=4):
    return RowBufferSet(count=count, row_bytes=32)


ROW = bytes(range(32))


class TestBasics:
    def test_table2_shape(self):
        buffers = make_buffers()
        assert len(buffers) == 4

    def test_needs_at_least_one_pair(self):
        with pytest.raises(ValueError):
            RowBufferSet(count=0, row_bytes=32)

    def test_pair_id_bounds(self):
        buffers = make_buffers()
        with pytest.raises(ValueError):
            buffers.pair(4)

    def test_fresh_buffers_hold_nothing(self):
        buffers = make_buffers()
        assert buffers.find_rab(0) is None
        assert buffers.find_rdb(0, 0) is None


class TestRabLoading:
    def test_load_and_find(self):
        buffers = make_buffers()
        buffers.load_rab(1, upper_row=77)
        pair = buffers.find_rab(77)
        assert pair is not None
        assert pair.buffer_id == 1
        assert buffers.rab_hits == 1

    def test_load_rab_invalidates_paired_rdb(self):
        buffers = make_buffers()
        buffers.load_rab(0, 5)
        buffers.load_rdb(0, partition=2, row=640, data=ROW)
        buffers.load_rab(0, 6)
        assert buffers.find_rdb(2, 640) is None


class TestRdbLoading:
    def test_load_and_find(self):
        buffers = make_buffers()
        buffers.load_rab(2, 5)
        buffers.load_rdb(2, partition=3, row=645, data=ROW)
        pair = buffers.find_rdb(3, 645)
        assert pair is not None
        assert pair.data == ROW
        assert buffers.rdb_hits == 1

    def test_load_requires_full_row(self):
        buffers = make_buffers()
        with pytest.raises(ValueError):
            buffers.load_rdb(0, 0, 0, b"short")

    def test_find_mismatched_partition_misses(self):
        buffers = make_buffers()
        buffers.load_rdb(0, partition=1, row=10, data=ROW)
        assert buffers.find_rdb(2, 10) is None


class TestLru:
    def test_victim_is_least_recently_used(self):
        buffers = make_buffers(count=2)
        buffers.load_rab(0, 1)
        buffers.load_rab(1, 2)
        buffers.find_rab(1)  # touch pair 0
        victim = buffers.victim()
        assert victim.buffer_id == 1

    def test_victim_counts_misses(self):
        buffers = make_buffers()
        buffers.victim()
        buffers.victim()
        assert buffers.misses == 2

    def test_untouched_pairs_are_picked_first(self):
        buffers = make_buffers(count=3)
        buffers.load_rab(0, 1)
        victim = buffers.victim()
        assert victim.buffer_id in (1, 2)


class TestInvalidation:
    def test_invalidate_row_drops_matching_rdb(self):
        buffers = make_buffers()
        buffers.load_rdb(0, partition=1, row=9, data=ROW)
        buffers.invalidate_row(partition=1, row=9)
        assert buffers.find_rdb(1, 9) is None

    def test_invalidate_row_leaves_others(self):
        buffers = make_buffers()
        buffers.load_rdb(0, partition=1, row=9, data=ROW)
        buffers.load_rdb(1, partition=1, row=10, data=ROW)
        buffers.invalidate_row(partition=1, row=9)
        assert buffers.find_rdb(1, 10) is not None

    def test_invalidate_all(self):
        buffers = make_buffers()
        buffers.load_rab(0, 3)
        buffers.load_rdb(0, 0, 384, ROW)
        buffers.invalidate_all()
        assert buffers.find_rab(3) is None
        assert buffers.find_rdb(0, 384) is None
