"""Overlay-window register file and program-buffer handshake tests."""

import pytest

from repro.pram import OverlayWindow, ProtocolError
from repro.pram.overlay_window import (
    CMD_ERASE,
    CMD_PROGRAM,
    CMD_SELECTIVE_ERASE,
    PROGRAM_BUFFER_OFFSET,
    REG_ADDRESS,
    REG_COMMAND,
    REG_EXECUTE,
    REG_MULTIPURPOSE,
    REG_STATUS,
)


def staged_window(command=CMD_PROGRAM, address=0x1000, size=32):
    window = OverlayWindow()
    window.write_register(REG_COMMAND, command)
    window.write_register(REG_ADDRESS, address)
    window.write_register(REG_MULTIPURPOSE, size)
    window.write_buffer(0, bytes(range(size % 256)) or b"\x00")
    window.write_register(REG_EXECUTE, 1)
    return window


class TestRegisterMap:
    def test_section5b_offsets(self):
        assert REG_COMMAND == 0x80
        assert REG_ADDRESS == 0x8B
        assert REG_MULTIPURPOSE == 0x93
        assert REG_EXECUTE == 0xC0
        assert PROGRAM_BUFFER_OFFSET == 0x800

    def test_write_and_read_register(self):
        window = OverlayWindow()
        window.write_register(REG_ADDRESS, 0xBEEF)
        assert window.read_register(REG_ADDRESS) == 0xBEEF

    def test_unknown_register_rejected(self):
        window = OverlayWindow()
        with pytest.raises(ProtocolError):
            window.write_register(0x55, 1)
        with pytest.raises(ProtocolError):
            window.read_register(0x55)

    def test_status_register_is_read_only(self):
        window = OverlayWindow()
        with pytest.raises(ProtocolError):
            window.write_register(REG_STATUS, 1)


class TestWindowMapping:
    def test_default_window_at_zero(self):
        window = OverlayWindow()
        assert window.contains(0)
        assert window.contains(PROGRAM_BUFFER_OFFSET + 100)
        assert not window.contains(PROGRAM_BUFFER_OFFSET + 512)

    def test_relocation_via_owba(self):
        window = OverlayWindow()
        window.set_base(0x40000)
        assert not window.contains(0)
        assert window.contains(0x40000 + 0x80)

    def test_negative_owba_rejected(self):
        with pytest.raises(ValueError):
            OverlayWindow().set_base(-1)


class TestProgramBuffer:
    def test_write_and_read_back(self):
        window = OverlayWindow()
        window.write_buffer(4, b"abcd")
        assert window.read_buffer(4, 4) == b"abcd"

    def test_out_of_bounds_rejected(self):
        window = OverlayWindow()
        with pytest.raises(ProtocolError):
            window.write_buffer(510, b"abcd")
        with pytest.raises(ProtocolError):
            window.read_buffer(-1, 4)

    def test_buffer_size_must_be_positive(self):
        with pytest.raises(ValueError):
            OverlayWindow(program_buffer_bytes=0)


class TestLaunchHandshake:
    def test_launch_returns_staged_fields(self):
        window = staged_window(size=16)
        command, address, size, payload = window.launch()
        assert command == CMD_PROGRAM
        assert address == 0x1000
        assert size == 16
        assert len(payload) == 16
        assert window.busy

    def test_launch_without_execute_rejected(self):
        window = staged_window()
        window.write_register(REG_EXECUTE, 0)
        with pytest.raises(ProtocolError):
            window.launch()

    def test_launch_with_unknown_command_rejected(self):
        window = staged_window(command=0x99)
        with pytest.raises(ProtocolError):
            window.launch()

    def test_double_launch_rejected(self):
        window = staged_window()
        window.launch()
        window.write_register(REG_EXECUTE, 1)
        with pytest.raises(ProtocolError):
            window.launch()

    def test_launch_validates_burst_size(self):
        window = staged_window(size=0)
        with pytest.raises(ProtocolError):
            window.launch()
        window = staged_window(size=513)
        with pytest.raises(ProtocolError):
            window.launch()

    def test_erase_command_skips_size_check(self):
        window = staged_window(command=CMD_ERASE, size=0)
        command, _, _, payload = window.launch()
        assert command == CMD_ERASE
        assert payload == b""

    def test_selective_erase_launches_like_program(self):
        window = staged_window(command=CMD_SELECTIVE_ERASE, size=32)
        command, _, size, _ = window.launch()
        assert command == CMD_SELECTIVE_ERASE
        assert size == 32

    def test_complete_frees_the_window(self):
        window = staged_window()
        window.launch()
        window.complete()
        assert not window.busy
        window.write_register(REG_EXECUTE, 1)
        window.launch()  # can go again

    def test_complete_without_launch_rejected(self):
        with pytest.raises(ProtocolError):
            OverlayWindow().complete()
