"""Cell-state tracker tests: the SET/RESET asymmetry selective erasing uses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import CellState, WordStateTracker


def make_tracker():
    return WordStateTracker(words_per_row=8)


class TestStates:
    def test_factory_state_is_pristine(self):
        tracker = make_tracker()
        assert tracker.state(0, 0) is CellState.PRISTINE

    def test_program_marks_programmed(self):
        tracker = make_tracker()
        tracker.program(0, [0, 1])
        assert tracker.state(0, 0) is CellState.PROGRAMMED
        assert tracker.state(0, 1) is CellState.PROGRAMMED
        assert tracker.state(0, 2) is CellState.PRISTINE

    def test_reset_returns_to_pristine(self):
        tracker = make_tracker()
        tracker.program(5, [3])
        tracker.reset(5, [3])
        assert tracker.state(5, 3) is CellState.PRISTINE

    def test_word_bounds_enforced(self):
        tracker = make_tracker()
        with pytest.raises(ValueError):
            tracker.state(0, 8)
        with pytest.raises(ValueError):
            tracker.program(0, [8])
        with pytest.raises(ValueError):
            tracker.reset(0, [-1])

    def test_words_per_row_must_be_positive(self):
        with pytest.raises(ValueError):
            WordStateTracker(0)


class TestResetPassDecision:
    def test_first_program_needs_no_reset(self):
        tracker = make_tracker()
        assert tracker.program(0, [0]) is False

    def test_overwrite_needs_reset(self):
        tracker = make_tracker()
        tracker.program(0, [0])
        assert tracker.program(0, [0]) is True

    def test_one_programmed_word_forces_reset_for_whole_unit(self):
        tracker = make_tracker()
        tracker.program(0, [2])
        assert tracker.program(0, [0, 1, 2, 3]) is True

    def test_program_after_reset_is_set_only(self):
        # The selective-erasing payoff.
        tracker = make_tracker()
        tracker.program(0, [0, 1])
        tracker.reset(0, [0, 1])
        assert tracker.program(0, [0, 1]) is False

    def test_needs_reset_is_pure(self):
        tracker = make_tracker()
        tracker.program(0, [0])
        assert tracker.needs_reset(0, [0]) is True
        assert tracker.needs_reset(0, [1]) is False
        # No state change from asking.
        assert tracker.state(0, 1) is CellState.PRISTINE


class TestEnduranceAccounting:
    def test_write_counts_accumulate(self):
        tracker = make_tracker()
        tracker.program(0, [0])
        tracker.program(0, [0])
        tracker.reset(0, [0])
        assert tracker.writes_to(0, 0) == 3

    def test_max_writes(self):
        tracker = make_tracker()
        tracker.program(0, [0])
        tracker.program(0, [0])
        tracker.program(1, [1])
        assert tracker.max_writes() == 2

    def test_max_writes_of_fresh_tracker(self):
        assert make_tracker().max_writes() == 0

    def test_pass_counters(self):
        tracker = make_tracker()
        tracker.program(0, [0, 1])        # 2 SET
        tracker.program(0, [0])           # 1 SET + 1 RESET (overwrite)
        tracker.reset(0, [1])             # 1 RESET
        assert tracker.total_set_passes == 3
        assert tracker.total_reset_passes == 2


class TestErase:
    def test_erase_rows_clears_state(self):
        tracker = make_tracker()
        tracker.program(0, [0])
        tracker.program(1, [0])
        tracker.erase_rows([0])
        assert tracker.state(0, 0) is CellState.PRISTINE
        assert tracker.state(1, 0) is CellState.PROGRAMMED

    def test_programmed_words_count(self):
        tracker = make_tracker()
        tracker.program(0, [0, 1, 2])
        assert tracker.programmed_words == 3
        tracker.erase_rows([0])
        assert tracker.programmed_words == 0


@given(st.lists(
    st.tuples(st.sampled_from(["program", "reset"]),
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=7)),
    max_size=50))
@settings(max_examples=100)
def test_state_matches_last_operation_property(operations):
    """The word state always reflects the most recent op on that word."""
    tracker = make_tracker()
    last = {}
    for op, row, word in operations:
        if op == "program":
            tracker.program(row, [word])
        else:
            tracker.reset(row, [word])
        last[(row, word)] = op
    for (row, word), op in last.items():
        expected = (CellState.PROGRAMMED if op == "program"
                    else CellState.PRISTINE)
        assert tracker.state(row, word) is expected
