"""Timing-model tests, anchored to Section VI's quoted latencies."""

import pytest

from repro.pram import PramTimingParams, TimingModel


@pytest.fixture
def timing():
    return TimingModel()


class TestPhases:
    def test_pre_active_is_trp(self, timing):
        assert timing.pre_active() == 7.5

    def test_activate_is_trcd(self, timing):
        assert timing.activate() == 80.0

    def test_read_preamble(self, timing):
        assert timing.read_preamble() == 15.0 + 2.5

    def test_write_preamble(self, timing):
        assert timing.write_preamble() == 7.5 + 0.75


class TestBurst:
    def test_one_burst_moves_32_bytes(self, timing):
        # BL16 on a 16-bit DDR dq bus = 32 bytes per burst.
        assert timing.burst(32) == 40.0
        assert timing.burst(1) == 40.0

    def test_larger_transfers_chain_bursts(self, timing):
        assert timing.burst(64) == 80.0
        assert timing.burst(33) == 80.0

    def test_bl4_burst(self):
        timing = TimingModel(PramTimingParams(burst_length=4))
        # BL4 moves 8 bytes in 4 cycles.
        assert timing.burst(8) == 10.0
        assert timing.burst(32) == 40.0

    def test_non_positive_size_rejected(self, timing):
        with pytest.raises(ValueError):
            timing.burst(0)


class TestArrayOperations:
    def test_program_latency_asymmetry(self, timing):
        assert timing.array_program(needs_reset=False) == 10_000.0
        assert timing.array_program(needs_reset=True) == 18_000.0

    def test_reset_only_is_the_difference(self, timing):
        assert timing.array_reset_only() == 8_000.0

    def test_erase(self, timing):
        assert timing.array_erase() == 60_000_000.0


class TestCompositeLatencies:
    def test_read_row_is_about_100ns(self, timing):
        # Section VI: "the read latency is around 100 ns, including
        # three-phase addressing (RL, tRCD, tRP and tBURST)".
        total = timing.read_row(32)
        assert total == pytest.approx(7.5 + 80.0 + 17.5 + 40.0)
        assert 100.0 <= total <= 160.0

    def test_phase_skipping_reduces_read(self, timing):
        full = timing.read_row(32)
        no_preactive = timing.read_row(32, skip_pre_active=True)
        rdb_hit = timing.read_row(32, skip_pre_active=True,
                                  skip_activate=True)
        assert no_preactive == full - 7.5
        assert rdb_hit == no_preactive - 80.0
        # An RDB hit is a pure buffer read: preamble + burst only.
        assert rdb_hit == pytest.approx(57.5)

    def test_write_row_dominated_by_cell_program(self, timing):
        pristine = timing.write_row(32, needs_reset=False)
        overwrite = timing.write_row(32, needs_reset=True)
        assert overwrite - pristine == 8_000.0
        assert pristine > 10_000.0
        assert pristine < 10_500.0

    def test_write_pre_active_skip(self, timing):
        full = timing.write_row(32, needs_reset=False)
        skipped = timing.write_row(32, needs_reset=False,
                                   skip_pre_active=True)
        assert full - skipped == 7.5

    def test_selective_erase_shortens_critical_path_by_44_percent(
            self, timing):
        # Abstract: "the proposed selective erasing approach shortens
        # the overall PRAM write latency by 44%".
        overwrite = timing.write_row(32, needs_reset=True)
        after_pre_reset = timing.write_row(32, needs_reset=False)
        reduction = 1.0 - after_pre_reset / overwrite
        assert 0.40 <= reduction <= 0.48

    def test_transfer_only_window(self, timing):
        assert timing.transfer_only(32) == pytest.approx(57.5)
