"""PRAM device edge cases: window relocation, geometry extremes,
buffer-state interactions."""

import pytest

from repro.pram import (
    AddressError,
    AddressMap,
    PramGeometry,
    PramModule,
    ProtocolError,
)
from repro.pram.overlay_window import CMD_PROGRAM


class TestOverlayWindowRelocation:
    def test_relocated_window_still_programs(self):
        module = PramModule()
        module.window.set_base(0x100000)
        t = module.stage_program(0.0, 0, 0, 0, b"\x11" * 32)
        finish = module.execute_program(t)
        assert finish > t
        assert module.peek(0, 0) == b"\x11" * 32

    def test_contains_reflects_relocation(self):
        module = PramModule()
        module.window.set_base(0x100000)
        assert not module.window.contains(0x80)
        assert module.window.contains(0x100000 + 0x80)


class TestModuleProtocolEdges:
    def test_execute_without_stage_fails(self):
        module = PramModule()
        with pytest.raises(ProtocolError):
            module.execute_program(0.0)

    def test_stage_twice_then_single_execute(self):
        # Restaging before execute overwrites the pending program.
        module = PramModule()
        module.stage_program(0.0, 0, 0, 0, b"\x01" * 32)
        t = module.stage_program(10.0, 0, 1, 0, b"\x02" * 32)
        module.execute_program(t)
        assert module.peek(0, 1) == b"\x02" * 32
        assert module.peek(0, 0) == bytes(32)

    def test_program_spilling_past_partition_rejected(self):
        geo = PramGeometry(channels=1, modules_per_channel=1,
                           partitions_per_bank=2, tiles_per_partition=1,
                           bitlines_per_tile=64, wordlines_per_tile=64)
        module = PramModule(geometry=geo)
        last_row = geo.rows_per_partition - 1
        t = module.stage_program(0.0, 0, last_row, 16, bytes(64))
        with pytest.raises(AddressError):
            module.execute_program(t)

    def test_partition_ready_at_tracks_busy(self):
        module = PramModule()
        t = module.stage_program(0.0, 3, 0, 0, bytes(32))
        finish = module.execute_program(t)
        # Busy until just before tWR completes.
        assert module.partition_ready_at(3) == pytest.approx(
            finish - module.params.twr_ns)

    def test_last_program_time_updates(self):
        module = PramModule()
        assert module.last_program_time(0, 0) == float("-inf")
        t = module.stage_program(5.0, 0, 0, 0, bytes(32),
                                 command=CMD_PROGRAM)
        module.execute_program(t)
        assert module.last_program_time(0, 0) == t


class TestAddressMapEdges:
    def test_single_module_geometry(self):
        geo = PramGeometry(channels=1, modules_per_channel=1,
                           partitions_per_bank=1, tiles_per_partition=1,
                           bitlines_per_tile=64, wordlines_per_tile=64)
        address_map = AddressMap(geo)
        for flat in range(0, geo.total_bytes, geo.row_bytes):
            decomposed = address_map.decompose(flat)
            assert decomposed.channel == 0
            assert decomposed.module == 0
            assert decomposed.partition == 0
        assert address_map.compose(
            address_map.decompose(geo.total_bytes - 1)) == (
            geo.total_bytes - 1)

    def test_upper_row_bits_can_be_zero(self):
        geo = PramGeometry(channels=1, modules_per_channel=1,
                           partitions_per_bank=1, tiles_per_partition=1,
                           bitlines_per_tile=64, wordlines_per_tile=64,
                           lower_row_bits=7)
        # 16 rows fit entirely in the lower bits.
        assert geo.rows_per_partition == 16
        address_map = AddressMap(geo)
        upper, lower = address_map.split_row(15)
        assert upper == 0
        assert address_map.join_row(upper, lower) == 15
