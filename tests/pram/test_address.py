"""Address decomposition tests, including hypothesis round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import AddressError, AddressMap, PramAddress, PramGeometry

MAP = AddressMap()


class TestDecompose:
    def test_address_zero(self):
        assert MAP.decompose(0) == PramAddress(0, 0, 0, 0, 0)

    def test_column_is_lowest(self):
        assert MAP.decompose(31).column == 31
        assert MAP.decompose(32).column == 0
        assert MAP.decompose(32).module == 1

    def test_32_bytes_per_bank_striping(self):
        # Section III-B: a 512 B channel request = 32 B per bank.
        geo = MAP.geometry
        for i in range(geo.modules_per_channel):
            address = MAP.decompose(i * geo.row_bytes)
            assert address.module == i
            assert address.channel == 0

    def test_512_bytes_per_channel_striping(self):
        geo = MAP.geometry
        channel_stride = geo.row_bytes * geo.modules_per_channel
        assert channel_stride == 512
        assert MAP.decompose(channel_stride).channel == 1
        assert MAP.decompose(channel_stride).module == 0

    def test_partition_rotates_every_kilobyte(self):
        geo = MAP.geometry
        partition_stride = (geo.row_bytes * geo.modules_per_channel
                            * geo.channels)
        assert partition_stride == 1024
        address = MAP.decompose(partition_stride)
        assert address.partition == 1
        assert address.row == 0

    def test_row_advances_after_all_partitions(self):
        geo = MAP.geometry
        row_stride = (geo.row_bytes * geo.modules_per_channel
                      * geo.channels * geo.partitions_per_bank)
        assert row_stride == 16 * 1024
        address = MAP.decompose(row_stride)
        assert address.row == 1
        assert address.partition == 0

    def test_last_byte(self):
        geo = MAP.geometry
        address = MAP.decompose(geo.total_bytes - 1)
        assert address.channel == geo.channels - 1
        assert address.column == geo.row_bytes - 1

    def test_negative_rejected(self):
        with pytest.raises(AddressError):
            MAP.decompose(-1)

    def test_beyond_capacity_rejected(self):
        with pytest.raises(AddressError):
            MAP.decompose(MAP.geometry.total_bytes)


class TestCompose:
    def test_inverse_of_decompose_on_edges(self):
        geo = MAP.geometry
        for flat in (0, 31, 32, geo.partition_bytes, geo.module_bytes,
                     geo.channel_bytes, geo.total_bytes - 1):
            assert MAP.compose(MAP.decompose(flat)) == flat

    def test_validates_fields(self):
        with pytest.raises(AddressError):
            MAP.compose(PramAddress(0, 0, 99, 0, 0))
        with pytest.raises(AddressError):
            MAP.compose(PramAddress(0, 0, 0, 0, 32))

    @given(st.integers(min_value=0,
                       max_value=PramGeometry().total_bytes - 1))
    @settings(max_examples=200)
    def test_roundtrip_property(self, flat):
        assert MAP.compose(MAP.decompose(flat)) == flat


class TestRowSplit:
    def test_split_and_join(self):
        upper, lower = MAP.split_row(0b1010101_0110011)
        assert MAP.join_row(upper, lower) == 0b1010101_0110011

    def test_lower_bits_width(self):
        geo = MAP.geometry
        _, lower = MAP.split_row(geo.rows_per_partition - 1)
        assert lower < (1 << geo.lower_row_bits)

    def test_split_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            MAP.split_row(MAP.geometry.rows_per_partition)

    def test_join_rejects_bad_lower(self):
        with pytest.raises(AddressError):
            MAP.join_row(0, 1 << MAP.geometry.lower_row_bits)

    def test_join_rejects_overflow(self):
        geo = MAP.geometry
        with pytest.raises(AddressError):
            MAP.join_row(1 << geo.upper_row_bits, 0)

    @given(st.integers(min_value=0,
                       max_value=PramGeometry().rows_per_partition - 1))
    @settings(max_examples=200)
    def test_split_join_roundtrip_property(self, row):
        upper, lower = MAP.split_row(row)
        assert MAP.join_row(upper, lower) == row


class TestIterRows:
    def test_single_row_chunk(self):
        chunks = list(MAP.iter_rows(0, 16))
        assert len(chunks) == 1
        address, offset, size = chunks[0]
        assert (address.row, address.column, offset, size) == (0, 0, 0, 16)

    def test_unaligned_request_spans_modules(self):
        chunks = list(MAP.iter_rows(24, 16))
        assert [(a.module, a.column, o, s) for a, o, s in chunks] == [
            (0, 24, 0, 8),
            (1, 0, 8, 8),
        ]

    def test_512_byte_server_request(self):
        # The server issues 512 B per channel (Section III-B): the
        # request fans out as 32 B to each of the 16 modules.
        chunks = list(MAP.iter_rows(0, 512))
        assert len(chunks) == 512 // 32
        assert sum(size for _, _, size in chunks) == 512
        assert [a.module for a, _, _ in chunks] == list(range(16))
        assert all(a.channel == 0 for a, _, _ in chunks)

    def test_zero_size_yields_nothing(self):
        assert list(MAP.iter_rows(100, 0)) == []

    def test_negative_size_rejected(self):
        with pytest.raises(AddressError):
            list(MAP.iter_rows(0, -1))

    @given(st.integers(min_value=0, max_value=2 ** 20),
           st.integers(min_value=1, max_value=4096))
    @settings(max_examples=100)
    def test_chunks_tile_the_request_property(self, flat, size):
        chunks = list(MAP.iter_rows(flat, size))
        assert sum(s for _, _, s in chunks) == size
        offsets = [o for _, o, _ in chunks]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0
        for address, _, chunk_size in chunks:
            assert address.column + chunk_size <= MAP.geometry.row_bytes
