"""Functional correctness sweep: every system computes the same thing.

Regardless of the data path (host stack, P2P, flash pages, NOR words,
PRAM rows), a run must leave the workload's output region fully
written and its input region intact.
"""

import pytest

from repro.systems import SYSTEM_NAMES, build_system
from repro.systems.base import input_pattern

ALL_SYSTEMS = SYSTEM_NAMES + ("Ideal", "Ideal-resident")


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_outputs_written_and_inputs_intact(name, config, read_bundle):
    system = build_system(name, config)
    captured = {}
    original_build = system._build

    def build(sim, energy, bundle):
        backend = original_build(sim, energy, bundle)
        captured["backend"] = backend
        return backend

    system._build = build
    result = system.run(read_bundle)
    backend = captured["backend"]

    # Outputs: every block carries an agent's non-zero fill pattern.
    out_address, out_size = read_bundle.output_region
    output = backend.inspect(out_address, out_size)
    assert len(output) == out_size
    zero_bytes = sum(1 for byte in output if byte == 0)
    assert zero_bytes == 0, (
        f"{name}: {zero_bytes}/{out_size} output bytes unwritten")

    # Inputs: unchanged from the preloaded deterministic pattern.
    in_address, in_size = read_bundle.input_region
    probe = min(in_size, 2048)
    assert backend.inspect(in_address, probe) == input_pattern(
        in_address, probe), f"{name}: input corrupted"

    # And the run reported sane numbers.
    assert result.total_ns > 0
    assert result.bandwidth_mb_s > 0
    assert result.energy.total_nj > 0


@pytest.mark.parametrize("name", ("DRAM-less", "Integrated-SLC",
                                  "Hetero"))
def test_write_heavy_outputs_complete(name, config, write_bundle):
    system = build_system(name, config)
    captured = {}
    original_build = system._build

    def build(sim, energy, bundle):
        backend = original_build(sim, energy, bundle)
        captured["backend"] = backend
        return backend

    system._build = build
    system.run(write_bundle)
    out_address, out_size = write_bundle.output_region
    output = captured["backend"].inspect(out_address, out_size)
    assert all(byte != 0 for byte in output), name
