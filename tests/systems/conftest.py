"""Shared fixtures for system-level tests: small, fast bundles."""

import pytest

from repro.accel import AcceleratorConfig
from repro.systems import SystemConfig
from repro.workloads import generate_traces, workload

#: Small caches so even tiny test footprints exercise the memory path.
TEST_ACCEL = AcceleratorConfig(l1_bytes=1024, l2_bytes=4096)


@pytest.fixture(scope="session")
def config():
    return SystemConfig(accelerator=TEST_ACCEL)


@pytest.fixture(scope="session")
def read_bundle():
    """A small read-leaning bundle (gemver)."""
    return generate_traces(workload("gemver"), agents=3, scale=0.05,
                           seed=3, rounds=2)


@pytest.fixture(scope="session")
def write_bundle():
    """A small write-heavy bundle (doitg)."""
    return generate_traces(workload("doitg"), agents=3, scale=0.05,
                           seed=3, rounds=2)
