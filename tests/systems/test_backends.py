"""Unit tests for the MemoryBackend implementations."""

import pytest

from repro.controller import PramSubsystem, SchedulerPolicy
from repro.energy import EnergyAccount
from repro.host import HostCpu, PcieLink, PeerToPeerDma
from repro.sim import Simulator
from repro.storage import EmulatedSsd, FlashCellType
from repro.storage.flash import PAGE_BYTES
from repro.systems.backends import (
    BLOCK_BYTES,
    DramBackend,
    HostSsdBackend,
    NorBackend,
    PageBufferBackend,
    PramBackend,
    SsdAdapterBackend,
)


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def energy():
    return EnergyAccount()


class TestDramBackend:
    def test_roundtrip(self, sim, energy):
        backend = DramBackend(sim, energy)
        payload = bytes(range(64))

        def driver():
            yield from backend.write_block(100, payload)
            data = yield from backend.read_block(100, 64)
            return data

        assert run(sim, driver()) == payload
        assert energy.by_category()["dram"] > 0

    def test_preload_inspect(self, sim, energy):
        backend = DramBackend(sim, energy)
        backend.preload(0, b"abc")
        assert backend.inspect(0, 3) == b"abc"
        assert backend.inspect(3, 2) == bytes(2)


def make_host_backend(sim, energy, capacity_blocks=8):
    cpu = HostCpu(sim, energy=energy)
    ssd = EmulatedSsd(sim, cell_type=FlashCellType.SLC,
                      buffer_bytes=4 * PAGE_BYTES)
    link = PcieLink(sim)
    mover = PeerToPeerDma(sim, cpu, ssd, link)
    return HostSsdBackend(sim, energy, mover,
                          capacity_bytes=capacity_blocks * BLOCK_BYTES)


class TestHostSsdBackend:
    def test_miss_faults_with_readahead(self, sim, energy):
        backend = make_host_backend(sim, energy)
        backend.preload(0, bytes([7]) * 8 * BLOCK_BYTES)

        def driver():
            data = yield from backend.read_block(0, 64)
            return data

        assert run(sim, driver()) == bytes([7]) * 64
        # One fault pulled the whole readahead window.
        assert backend.ssd_reads == 1
        for block in range(HostSsdBackend.READAHEAD_BLOCKS):
            assert block in backend.dram

    def test_resident_read_skips_ssd(self, sim, energy):
        backend = make_host_backend(sim, energy)
        backend.preload(0, bytes([9]) * BLOCK_BYTES)

        def driver():
            yield from backend.read_block(0, 32)
            before = backend.ssd_reads
            yield from backend.read_block(32, 32)
            return before

        before = run(sim, driver())
        assert backend.ssd_reads == before  # second read was a hit

    def test_write_then_flush_persists(self, sim, energy):
        backend = make_host_backend(sim, energy)
        payload = bytes([3]) * BLOCK_BYTES

        def driver():
            yield from backend.write_block(0, payload)
            yield from backend.flush()
            yield from backend.mover.ssd.flush()

        run(sim, driver())
        assert backend.mover.ssd.inspect(0, BLOCK_BYTES) == payload

    def test_flush_coalesces_contiguous_blocks(self, sim, energy):
        backend = make_host_backend(sim, energy, capacity_blocks=16)

        def driver():
            for block in range(4):  # contiguous dirty run
                yield from backend.write_block(block * BLOCK_BYTES,
                                               bytes([1]) * BLOCK_BYTES)
            yield from backend.write_block(10 * BLOCK_BYTES,
                                           bytes([2]) * BLOCK_BYTES)
            yield from backend.flush()

        run(sim, driver())
        # 5 dirty blocks -> 2 extents (one run of 4, one singleton).
        assert backend.ssd_writes == 2

    def test_dirty_eviction_writes_back(self, sim, energy):
        backend = make_host_backend(sim, energy, capacity_blocks=1)

        def driver():
            yield from backend.write_block(0, bytes([1]) * BLOCK_BYTES)
            yield from backend.write_block(BLOCK_BYTES,
                                           bytes([2]) * BLOCK_BYTES)
            yield from backend.mover.ssd.flush()

        run(sim, driver())
        assert backend.mover.ssd.inspect(0, BLOCK_BYTES) == (
            bytes([1]) * BLOCK_BYTES)

    def test_stage_input_respects_capacity(self, sim, energy):
        backend = make_host_backend(sim, energy, capacity_blocks=4)
        backend.preload(0, bytes([5]) * 64 * BLOCK_BYTES)

        def driver():
            yield from backend.stage_input(0, 64 * BLOCK_BYTES)

        run(sim, driver())
        assert len(backend.dram) <= 4


class TestSsdAdapterBackend:
    def test_roundtrip_and_invalidate(self, sim, energy):
        ssd = EmulatedSsd(sim, cell_type=FlashCellType.SLC,
                          buffer_bytes=4 * PAGE_BYTES, energy=energy)
        backend = SsdAdapterBackend(sim, energy, ssd)
        payload = bytes([4]) * BLOCK_BYTES

        def driver():
            yield from backend.write_block(0, payload)
            yield from backend.flush()
            backend.invalidate_buffer()
            data = yield from backend.read_block(0, BLOCK_BYTES)
            return data

        assert run(sim, driver()) == payload
        # After invalidation the read re-touched flash.
        assert ssd.flash.pages_read >= 1


class TestPageBufferBackend:
    def test_roundtrip(self, sim, energy):
        backend = PageBufferBackend(sim, energy)
        payload = bytes(range(256)) * 2

        def driver():
            yield from backend.write_block(0, payload)
            data = yield from backend.read_block(0, len(payload))
            return data

        assert run(sim, driver()) == payload

    def test_read_moves_whole_pages(self, sim, energy):
        backend = PageBufferBackend(sim, energy)
        backend.preload(0, bytes([1]) * backend.PAGE_BYTES)

        def driver():
            yield from backend.read_block(0, 32)

        run(sim, driver())
        assert backend.pages_read == 1  # 32 B wanted, 16 KB moved

    def test_flush_then_invalidate_forces_refetch(self, sim, energy):
        backend = PageBufferBackend(sim, energy)

        def driver():
            yield from backend.write_block(0, bytes([2]) * BLOCK_BYTES)
            yield from backend.flush()
            backend.invalidate_buffer()
            yield from backend.read_block(0, 32)

        run(sim, driver())
        assert backend.pages_written == 1
        assert backend.pages_read >= 1

    def test_invalidate_with_dirty_pages_raises(self, sim, energy):
        backend = PageBufferBackend(sim, energy)

        def driver():
            yield from backend.write_block(0, bytes([2]) * BLOCK_BYTES)

        run(sim, driver())
        with pytest.raises(RuntimeError):
            backend.invalidate_buffer()


class TestNorBackend:
    def test_roundtrip(self, sim, energy):
        backend = NorBackend(sim, energy)
        payload = bytes(range(100))

        def driver():
            yield from backend.write_block(50, payload)
            data = yield from backend.read_block(50, len(payload))
            return data

        assert run(sim, driver()) == payload


class TestPramBackend:
    def test_roundtrip(self, sim, energy):
        backend = PramBackend(sim, energy,
                              PramSubsystem(sim,
                                            policy=SchedulerPolicy.FINAL))
        payload = bytes(range(BLOCK_BYTES % 256)) or b"\x01"
        payload = bytes([6]) * BLOCK_BYTES

        def driver():
            yield from backend.write_block(0, payload)
            data = yield from backend.read_block(0, BLOCK_BYTES)
            return data

        assert run(sim, driver()) == payload
        assert energy.by_category()["pram"] > 0

    def test_announce_writes_feeds_hint_store(self, sim, energy):
        subsystem = PramSubsystem(sim, policy=SchedulerPolicy.FINAL)
        backend = PramBackend(sim, energy, subsystem)
        backend.preload(0, bytes([1]) * BLOCK_BYTES)
        backend.announce_writes(0, BLOCK_BYTES)
        sim.run()  # lets the background drain complete
        counts = subsystem.operation_counts()
        assert counts["resets"] > 0
