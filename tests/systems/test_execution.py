"""End-to-end system runs: invariants and paper-shape orderings."""

import pytest

from repro.systems import SYSTEM_NAMES, build_system
from repro.workloads.trace import BLOCK_BYTES


@pytest.fixture(scope="module")
def results(config, read_bundle):
    """One run of every system on the read bundle (shared, expensive)."""
    return {name: build_system(name, config).run(read_bundle)
            for name in SYSTEM_NAMES + ("Ideal",)}


class TestResultInvariants:
    def test_positive_time_and_bandwidth(self, results):
        for name, result in results.items():
            assert result.total_ns > 0, name
            assert result.bandwidth_mb_s > 0, name

    def test_phases_sum_to_total(self, results):
        for name, result in results.items():
            assert sum(result.phase_ns.values()) == pytest.approx(
                result.total_ns, rel=1e-6), name

    def test_time_breakdown_sums_to_total(self, results):
        for name, result in results.items():
            assert result.time_breakdown.total == pytest.approx(
                result.total_ns, rel=1e-6), name

    def test_energy_positive_with_pe_charges(self, results):
        for name, result in results.items():
            categories = result.energy.by_category()
            assert result.energy.total_nj > 0, name
            assert categories.get("pe_compute", 0) > 0, name

    def test_bytes_processed_counts_rounds(self, results, read_bundle):
        per_round = read_bundle.input_bytes + read_bundle.output_bytes
        expected = per_round * read_bundle.round_count
        for result in results.values():
            assert result.bytes_processed == expected

    def test_instructions_executed(self, results):
        for name, result in results.items():
            assert result.accel_stats.instructions > 0, name

    def test_runs_are_deterministic(self, config, read_bundle):
        first = build_system("DRAM-less", config).run(read_bundle)
        second = build_system("DRAM-less", config).run(read_bundle)
        assert first.total_ns == second.total_ns
        assert first.energy.total_nj == second.energy.total_nj


class TestPaperShapeOrderings:
    """The qualitative claims of Figures 15-17 on a read workload."""

    def test_ideal_is_fastest(self, results):
        ideal = results["Ideal"].bandwidth_mb_s
        for name in SYSTEM_NAMES:
            assert ideal > results[name].bandwidth_mb_s, name

    def test_dramless_beats_every_evaluated_system(self, results):
        best = results["DRAM-less"].bandwidth_mb_s
        for name in SYSTEM_NAMES[:-1]:
            assert best > results[name].bandwidth_mb_s, name

    def test_heterodirect_beats_hetero(self, results):
        assert (results["Heterodirect"].bandwidth_mb_s
                > results["Hetero"].bandwidth_mb_s)

    def test_p2p_dma_saves_host_energy(self, results):
        hetero = results["Hetero"].energy.by_category()
        direct = results["Heterodirect"].energy.by_category()
        assert direct["host"] < hetero["host"]

    def test_hardware_automation_beats_firmware(self, results):
        assert (results["DRAM-less"].bandwidth_mb_s
                > results["DRAM-less (firmware)"].bandwidth_mb_s)

    def test_flash_grades_order_slc_mlc_tlc(self, results):
        assert (results["Integrated-SLC"].bandwidth_mb_s
                > results["Integrated-MLC"].bandwidth_mb_s
                > results["Integrated-TLC"].bandwidth_mb_s)

    def test_dramless_energy_well_below_heterogeneous(self, results):
        # Figure 17 / abstract: ~19% of the advanced accelerated
        # systems' energy; allow a generous band for the model.
        ratio = (results["DRAM-less"].energy_mj
                 / results["Heterodirect"].energy_mj)
        assert ratio < 0.6

    def test_hetero_spends_most_energy_on_host(self, results):
        categories = results["Hetero"].energy.by_category()
        assert categories["host"] == max(categories.values())

    def test_dramless_has_no_host_energy(self, results):
        categories = results["DRAM-less"].energy.by_category()
        assert categories.get("host", 0.0) == 0.0
        assert categories.get("pram", 0.0) > 0.0

    def test_hetero_time_dominated_by_data_movement(self, results):
        breakdown = results["Hetero"].time_breakdown
        movement = (breakdown.get("data_preparation")
                    + breakdown.get("output_writeback")
                    + breakdown.get("memory_stall")
                    + breakdown.get("store_stall"))
        assert movement > breakdown.get("computation")


class TestWriteHeavyShape:
    def test_selective_erasing_helps_write_heavy(self, config,
                                                 write_bundle):
        from repro.controller import SchedulerPolicy
        from repro.systems.pram_accel import DramlessSystem

        final = DramlessSystem(config).run(write_bundle)
        bare = DramlessSystem(
            config, policy=SchedulerPolicy.BARE_METAL).run(write_bundle)
        assert final.bandwidth_mb_s > bare.bandwidth_mb_s

    def test_pram_ssd_worse_than_flash_ssd_for_writes(self, config,
                                                      write_bundle):
        # Section VI-B: block-sized writes make the PRAM-SSD variants
        # slightly worse than the flash ones on write-heavy loads.
        flash = build_system("Hetero", config).run(write_bundle)
        pram = build_system("Hetero-PRAM", config).run(write_bundle)
        assert pram.bandwidth_mb_s < flash.bandwidth_mb_s * 1.1


class TestFunctionalOutput:
    def test_outputs_land_in_backend_memory(self, config, read_bundle):
        from repro.systems.pram_accel import DramlessSystem

        system = DramlessSystem(config)
        captured = {}
        original_build = system._build

        def build(sim, energy, bundle):
            backend = original_build(sim, energy, bundle)
            captured["backend"] = backend
            return backend

        system._build = build
        system.run(read_bundle)
        address, size = read_bundle.output_region
        data = captured["backend"].inspect(address, size)
        # Agents write a (pe_id + 1) fill pattern: the region must be
        # fully non-zero after the run.
        assert all(byte != 0 for byte in data)

    def test_inputs_preloaded_nonzero(self, config, read_bundle):
        from repro.systems.hetero import IdealSystem

        system = IdealSystem(config)
        captured = {}
        original_build = system._build

        def build(sim, energy, bundle):
            backend = original_build(sim, energy, bundle)
            captured["backend"] = backend
            return backend

        system._build = build
        system.run(read_bundle)
        address, size = read_bundle.input_region
        sample = captured["backend"].inspect(address, BLOCK_BYTES)
        assert any(byte != 0 for byte in sample)
