"""Registry and Table I attribute tests."""

import pytest

from repro.systems import SYSTEM_NAMES, SystemConfig, build_system


class TestRegistry:
    def test_ten_evaluated_systems_plus_firmware(self):
        assert len(SYSTEM_NAMES) == 11
        assert SYSTEM_NAMES[0] == "Hetero"
        assert SYSTEM_NAMES[-1] == "DRAM-less"

    def test_build_every_named_system(self):
        for name in SYSTEM_NAMES + ("Ideal",):
            system = build_system(name)
            assert system.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown system"):
            build_system("SRAM-less")

    def test_config_threads_through(self):
        config = SystemConfig(dram_fraction=0.5)
        system = build_system("Hetero", config)
        assert system.config.dram_fraction == 0.5


class TestTable1Attributes:
    """The Heterogeneous / Internal DRAM rows of Table I."""

    def test_heterogeneous_row(self):
        hetero = {"Hetero", "Heterodirect", "Hetero-PRAM",
                  "Heterodirect-PRAM"}
        for name in SYSTEM_NAMES:
            assert build_system(name).heterogeneous == (name in hetero)

    def test_internal_dram_row(self):
        # Table I: NOR-intf and DRAM-less have no internal DRAM.
        dramless = {"NOR-intf", "DRAM-less", "DRAM-less (firmware)"}
        for name in SYSTEM_NAMES:
            assert build_system(name).has_internal_dram == (
                name not in dramless)

    def test_host_coordination(self):
        # Only the DRAM-less family self-schedules kernel rounds.
        for name in SYSTEM_NAMES:
            expected = not name.startswith("DRAM-less")
            assert build_system(name).host_coordinated == expected

    def test_dram_fraction_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(dram_fraction=0.0)
        with pytest.raises(ValueError):
            SystemConfig(dram_fraction=1.5)
