"""Accelerator statistics helpers: series summation, residency."""

import pytest

from repro.accel import Accelerator, ComputeOp, LoadOp
from repro.accel.accelerator import _state_residency, _sum_series
from repro.accel.pe import STATE_ACTIVE, STATE_IDLE, STATE_SLEEP
from repro.energy import EnergyModel
from repro.sim import TimeSeries


class TestSumSeries:
    def test_pointwise_sum(self):
        a = TimeSeries("a")
        a.record(0.0, 1.0)
        a.record(10.0, 2.0)
        b = TimeSeries("b")
        b.record(5.0, 3.0)
        total = _sum_series([a, b], "total")
        assert total.value_at(0.0) == 1.0
        assert total.value_at(5.0) == 4.0
        assert total.value_at(10.0) == 5.0

    def test_empty_inputs(self):
        total = _sum_series([TimeSeries("a")], "total")
        assert len(total) == 0


class TestStateResidency:
    def test_partitions_the_window(self):
        activity = TimeSeries("pe")
        activity.record(0.0, STATE_SLEEP)
        activity.record(10.0, STATE_IDLE)
        activity.record(30.0, STATE_ACTIVE)
        residency = _state_residency(activity, 0.0, 50.0)
        assert residency[STATE_SLEEP] == pytest.approx(10.0)
        assert residency[STATE_IDLE] == pytest.approx(20.0)
        assert residency[STATE_ACTIVE] == pytest.approx(20.0)
        assert sum(residency.values()) == pytest.approx(50.0)

    def test_window_subset(self):
        activity = TimeSeries("pe")
        activity.record(0.0, STATE_ACTIVE)
        residency = _state_residency(activity, 20.0, 30.0)
        assert residency[STATE_ACTIVE] == pytest.approx(10.0)

    def test_empty_window(self):
        residency = _state_residency(TimeSeries("pe"), 5.0, 5.0)
        assert sum(residency.values()) == 0.0


class TestPowerSeries:
    def test_levels_match_energy_model(self, sim, backend):
        model = EnergyModel()
        accel = Accelerator(sim, backend)
        proc = sim.process(accel.execute(
            [[ComputeOp(5_000)]], flush_backend=False))
        sim.run()
        assert proc.ok
        power = accel.power_series(model)
        observed = set(round(v, 4) for v in power.values)
        floor = round(8 * model.pe_sleep_w, 4)
        assert floor in observed
        assert max(power.values) <= 8 * model.pe_active_w + 1e-9


class TestExecutionResultHelpers:
    def test_normalized_to_rejects_zero_baseline(self):
        from repro.systems.base import ExecutionResult
        from repro.sim import Breakdown
        from repro.energy import EnergyAccount

        def make(total):
            return ExecutionResult(
                system="x", workload="w", total_ns=total, phase_ns={},
                time_breakdown=Breakdown(), energy=EnergyAccount(),
                bytes_processed=0 if total == 0 else 100,
                accel_stats=None, aggregate_ipc=TimeSeries(),
                core_power=TimeSeries())

        good = make(100.0)
        zero = make(0.0)
        assert zero.bandwidth_mb_s == 0.0
        with pytest.raises(ValueError):
            good.normalized_to(zero)

    def test_ideal_resident_attributes(self):
        from repro.systems import build_system

        system = build_system("Ideal-resident")
        assert system.heterogeneous is True
        assert system.host_coordinated is False
        assert system.name == "Ideal-resident"
