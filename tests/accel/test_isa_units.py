"""ISA record and functional-unit tests."""

import pytest

from repro.accel import ComputeOp, FunctionalUnitSet, LoadOp, StoreOp


class TestIsaValidation:
    def test_load_fields(self):
        op = LoadOp(address=0x100, size=512)
        assert op.address == 0x100
        assert op.size == 512

    def test_load_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LoadOp(-1, 32)
        with pytest.raises(ValueError):
            LoadOp(0, 0)

    def test_store_rejects_bad_values(self):
        with pytest.raises(ValueError):
            StoreOp(-1, 32)
        with pytest.raises(ValueError):
            StoreOp(0, 0)

    def test_compute_rejects_zero_ops(self):
        with pytest.raises(ValueError):
            ComputeOp(0)

    def test_ops_are_immutable(self):
        op = ComputeOp(100)
        with pytest.raises(Exception):
            op.scalar_ops = 5


class TestFunctionalUnits:
    def test_plain_risc_issues_on_l_and_s(self):
        units = FunctionalUnitSet()
        assert units.ops_per_cycle(dsp_intrinsics=False) == 4

    def test_dsp_intrinsics_light_up_m_units(self):
        units = FunctionalUnitSet()
        # 2 .L + 2 .S + 2 .M * 4-way MAC
        assert units.ops_per_cycle(dsp_intrinsics=True) == 12

    def test_cycles_round_up(self):
        units = FunctionalUnitSet()
        assert units.cycles_for(5, dsp_intrinsics=False) == 2
        assert units.cycles_for(4, dsp_intrinsics=False) == 1

    def test_burst_time_at_1ghz(self):
        units = FunctionalUnitSet(clock_ghz=1.0)
        assert units.burst_time_ns(8, dsp_intrinsics=False) == 2.0

    def test_burst_time_scales_with_clock(self):
        fast = FunctionalUnitSet(clock_ghz=2.0)
        assert fast.burst_time_ns(8, dsp_intrinsics=False) == 1.0

    def test_ops_retired_counter(self):
        units = FunctionalUnitSet()
        units.burst_time_ns(100, dsp_intrinsics=True)
        assert units.ops_retired == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionalUnitSet(clock_ghz=0)
        with pytest.raises(ValueError):
            FunctionalUnitSet().cycles_for(0, False)
