"""Shared fixtures: a scriptable in-memory backend."""

import typing

import pytest

from repro.sim import Simulator


class FakeBackend:
    """In-memory MemoryBackend with configurable latencies."""

    def __init__(self, sim: Simulator, read_ns: float = 100.0,
                 write_ns: float = 100.0) -> None:
        self.sim = sim
        self.read_ns = read_ns
        self.write_ns = write_ns
        self.data: typing.Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0
        self.hints: typing.List[typing.Tuple[int, int]] = []
        self.flushes = 0

    def read_block(self, address: int, size: int):
        yield self.sim.timeout(self.read_ns)
        self.reads += 1
        return self.inspect(address, size)

    def write_block(self, address: int, data: bytes):
        yield self.sim.timeout(self.write_ns)
        self.writes += 1
        self.preload(address, data)

    def flush(self):
        self.flushes += 1
        return
        yield  # pragma: no cover

    def announce_writes(self, address: int, size: int) -> None:
        self.hints.append((address, size))

    def preload(self, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.data[address + i] = bytes([byte])

    def inspect(self, address: int, size: int) -> bytes:
        return b"".join(self.data.get(address + i, b"\x00")
                        for i in range(size))


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def backend(sim):
    return FakeBackend(sim)
