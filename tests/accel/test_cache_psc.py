"""BlockCache and PowerSleepController tests."""

import pytest

from repro.accel import BlockCache, PeState, PowerSleepController
from repro.sim import Simulator


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(2048, 512)
        assert not cache.lookup(0)
        cache.insert(0)
        assert cache.lookup(0)
        assert cache.hit_rate == 0.5

    def test_block_of(self):
        cache = BlockCache(2048, 512)
        assert cache.block_of(0) == 0
        assert cache.block_of(511) == 0
        assert cache.block_of(512) == 1
        with pytest.raises(ValueError):
            cache.block_of(-1)

    def test_lru_eviction(self):
        cache = BlockCache(1024, 512)  # 2 blocks
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)
        evicted = cache.insert(3)
        assert evicted == (2, False)

    def test_dirty_eviction_flag(self):
        cache = BlockCache(512, 512)  # 1 block
        cache.insert(1, dirty=True)
        assert cache.insert(2) == (1, True)

    def test_invalidate(self):
        cache = BlockCache(1024, 512)
        cache.insert(7)
        cache.invalidate(7)
        assert 7 not in cache

    def test_clear(self):
        cache = BlockCache(1024, 512)
        cache.insert(1)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BlockCache(100, 512)

    def test_hit_rate_empty(self):
        assert BlockCache(512, 512).hit_rate == 0.0


class TestPowerSleepController:
    def test_initial_state_is_sleep(self):
        psc = PowerSleepController(Simulator(), 4)
        assert psc.state(0) is PeState.SLEEP

    def test_wake_transitions_to_idle(self):
        sim = Simulator()
        psc = PowerSleepController(sim, 2)

        def driver():
            yield from psc.wake(0)

        sim.process(driver())
        sim.run()
        assert psc.state(0) is PeState.IDLE
        assert sim.now == 2_000.0

    def test_wake_requires_sleep(self):
        sim = Simulator()
        psc = PowerSleepController(sim, 2)
        psc.set_state(0, PeState.ACTIVE)

        def driver():
            with pytest.raises(ValueError):
                yield from psc.wake(0)

        sim.process(driver())
        sim.run()

    def test_sleep_then_wake_roundtrip(self):
        sim = Simulator()
        psc = PowerSleepController(sim, 2)

        def driver():
            yield from psc.wake(1)
            yield from psc.sleep(1)
            yield from psc.wake(1)

        sim.process(driver())
        sim.run()
        assert psc.state(1) is PeState.IDLE
        assert psc.transitions == 3

    def test_residency_accumulates(self):
        sim = Simulator()
        psc = PowerSleepController(sim, 1)

        def driver():
            yield from psc.wake(0)        # sleeps 0..2000
            psc.set_state(0, PeState.ACTIVE)
            yield sim.timeout(3_000.0)
            psc.set_state(0, PeState.IDLE)

        sim.process(driver())
        sim.run()
        residency = psc.residency(0)
        assert residency[PeState.SLEEP] == pytest.approx(2_000.0)
        assert residency[PeState.ACTIVE] == pytest.approx(3_000.0)

    def test_pe_bounds_checked(self):
        psc = PowerSleepController(Simulator(), 2)
        with pytest.raises(ValueError):
            psc.state(2)
        with pytest.raises(ValueError):
            PowerSleepController(Simulator(), 0)
