"""Processing-element execution tests."""

import pytest

from repro.accel import ComputeOp, LoadOp, MemoryControllerUnit, StoreOp
from repro.accel.pe import STATE_ACTIVE, STATE_IDLE, ProcessingElement


def make_pe(sim, backend, **kwargs):
    mcu = MemoryControllerUnit(sim, backend)
    return ProcessingElement(sim, 1, mcu, **kwargs), mcu


def run_trace(sim, pe, ops):
    proc = sim.process(pe.run_kernel(ops))
    sim.run()
    if not proc.ok:
        raise proc.value


class TestCompute:
    def test_compute_advances_time_and_counts_instructions(self, sim,
                                                           backend):
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [ComputeOp(400, dsp_intrinsics=False)])
        assert pe.stats.instructions == 400
        assert pe.stats.compute_ns == pytest.approx(100.0)  # 400/4 cycles

    def test_dsp_intrinsics_speed_up_compute(self, sim, backend):
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [ComputeOp(120, dsp_intrinsics=True)])
        assert pe.stats.compute_ns == pytest.approx(10.0)  # 120/12

    def test_ipc_series_records_burst(self, sim, backend):
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [ComputeOp(400)])
        assert pe.ipc_series.value_at(50.0) == pytest.approx(4.0)
        assert pe.ipc_series.value_at(150.0) == 0.0


class TestLoads:
    def test_cold_load_misses_to_backend(self, sim, backend):
        pe, mcu = make_pe(sim, backend)
        run_trace(sim, pe, [LoadOp(0, 32)])
        assert backend.reads == 1
        assert mcu.reads == 1
        assert pe.stats.l2_miss_ns > 0

    def test_warm_load_hits_l1(self, sim, backend):
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [LoadOp(0, 32), LoadOp(16, 32)])
        assert backend.reads == 1  # same 512 B block
        assert pe.l1.hits == 1

    def test_l2_hit_after_l1_eviction(self, sim, backend):
        pe, _ = make_pe(sim, backend, l1_bytes=512, l2_bytes=4096)
        # Touch block 0, evict it from the 1-block L1, touch it again.
        run_trace(sim, pe, [LoadOp(0, 32), LoadOp(512, 32), LoadOp(0, 32)])
        assert backend.reads == 2
        assert pe.l2.hits == 1

    def test_stall_time_accounted(self, sim, backend):
        backend.read_ns = 10_000.0
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [LoadOp(0, 32)])
        assert pe.stats.stall_ns >= 10_000.0

    def test_pe_goes_idle_during_miss(self, sim, backend):
        backend.read_ns = 10_000.0
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [LoadOp(0, 32), ComputeOp(4)])
        assert pe.activity.value_at(5_000.0) == STATE_IDLE


class TestStores:
    def test_store_reaches_backend_via_buffer(self, sim, backend):
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [StoreOp(0, 512)])
        assert backend.writes == 1
        assert backend.inspect(0, 4) == bytes([2]) * 4  # pe_id+1 pattern

    def test_store_buffer_hides_latency_until_full(self, sim, backend):
        backend.write_ns = 10_000.0
        pe, _ = make_pe(sim, backend, store_buffer_depth=8)
        # 4 stores fit in the buffer: the PE should not stall on them.
        ops = [StoreOp(i * 512, 512) for i in range(4)] + [ComputeOp(400)]
        run_trace(sim, pe, ops)
        assert pe.stats.store_stall_ns > 0  # only the final drain waits

    def test_full_buffer_stalls_the_pe(self, sim, backend):
        backend.write_ns = 50_000.0
        pe, _ = make_pe(sim, backend, store_buffer_depth=1)
        ops = [StoreOp(i * 512, 512) for i in range(4)]
        run_trace(sim, pe, ops)
        # With depth 1 and slow writes, queueing stalls accumulate well
        # beyond the final drain of a single store.
        assert pe.stats.store_stall_ns > 100_000.0

    def test_stored_block_loads_from_cache(self, sim, backend):
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [StoreOp(0, 512), LoadOp(0, 32)])
        assert backend.reads == 0  # load hit the cached block


class TestKernelRun:
    def test_mixed_trace_end_state(self, sim, backend):
        pe, _ = make_pe(sim, backend)
        ops = [LoadOp(0, 32), ComputeOp(100), StoreOp(512, 512),
               ComputeOp(100), LoadOp(1024, 32)]
        run_trace(sim, pe, ops)
        assert pe.stats.loads == 2
        assert pe.stats.stores == 1
        assert pe.activity.value_at(sim.now) == STATE_IDLE

    def test_unknown_op_rejected(self, sim, backend):
        pe, _ = make_pe(sim, backend)
        proc = sim.process(pe.run_kernel(["bogus"]))
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, TypeError)

    def test_mean_ipc_positive_after_work(self, sim, backend):
        pe, _ = make_pe(sim, backend)
        run_trace(sim, pe, [ComputeOp(1000), LoadOp(0, 32)])
        assert pe.mean_ipc > 0
