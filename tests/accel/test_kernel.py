"""Kernel image pack/unpack (programming model) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import pack_data, unpack_data
from repro.accel.kernel import KernelSegment


def make_segments():
    return [
        KernelSegment("app0", load_address=0x1000, entry_offset=0,
                      payload=b"\x01" * 256),
        KernelSegment("app1", load_address=0x2000, entry_offset=16,
                      payload=b"\x02" * 128),
        KernelSegment("shared", load_address=0x8000, entry_offset=0,
                      payload=b"\x03" * 64),
    ]


class TestSegment:
    def test_boot_address(self):
        segment = KernelSegment("k", 0x1000, 0x20, bytes(64))
        assert segment.boot_address == 0x1020

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelSegment("", 0, 0, b"")
        with pytest.raises(ValueError):
            KernelSegment("k", -1, 0, b"x")
        with pytest.raises(ValueError):
            KernelSegment("k", 0, 10, b"short")


class TestPackUnpack:
    def test_roundtrip(self):
        image = unpack_data(pack_data(make_segments()))
        assert image.names == ("app0", "app1", "shared")
        assert image.segment("app1").load_address == 0x2000
        assert image.segment("app1").entry_offset == 16
        assert image.segment("shared").payload == b"\x03" * 64

    def test_total_bytes(self):
        image = unpack_data(pack_data(make_segments()))
        assert image.total_bytes == 256 + 128 + 64

    def test_unknown_segment_lookup(self):
        image = unpack_data(pack_data(make_segments()))
        with pytest.raises(KeyError):
            image.segment("nope")

    def test_empty_image_rejected(self):
        with pytest.raises(ValueError):
            pack_data([])

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            unpack_data(b"XXXX" + bytes(16))

    def test_truncated_image_rejected(self):
        packed = pack_data(make_segments())
        with pytest.raises(ValueError):
            unpack_data(packed[:20])

    def test_trailing_garbage_rejected(self):
        packed = pack_data(make_segments())
        with pytest.raises(ValueError):
            unpack_data(packed + b"junk")

    @given(st.lists(
        st.tuples(st.text(min_size=1, max_size=16),
                  st.integers(min_value=0, max_value=2**40),
                  st.binary(min_size=1, max_size=128)),
        min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_roundtrip_property(self, raw):
        segments = [
            KernelSegment(f"{name}_{i}", address, 0, payload)
            for i, (name, address, payload) in enumerate(raw)
        ]
        image = unpack_data(pack_data(segments))
        assert len(image.segments) == len(segments)
        for original, parsed in zip(segments, image.segments):
            assert parsed == original
