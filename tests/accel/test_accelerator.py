"""Full-accelerator assembly and server-protocol tests."""

import pytest

from repro.accel import (
    Accelerator,
    AcceleratorConfig,
    ComputeOp,
    LoadOp,
    StoreOp,
    pack_data,
)
from repro.accel.kernel import KernelSegment
from repro.energy import EnergyModel
from repro.accel.pe import STATE_ACTIVE, STATE_IDLE, STATE_SLEEP


def run_execute(sim, accel, traces, **kwargs):
    proc = sim.process(accel.execute(traces, **kwargs))
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


def simple_trace(base=0, blocks=4):
    ops = []
    for i in range(blocks):
        ops.append(LoadOp(base + i * 512, 32))
        ops.append(ComputeOp(256, dsp_intrinsics=True))
        ops.append(StoreOp(base + 1_000_000 + i * 512, 512))
    return ops


class TestAssembly:
    def test_default_shape(self, sim, backend):
        accel = Accelerator(sim, backend)
        assert len(accel.pes) == 8
        assert accel.agent_count == 7

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(pe_count=1)
        with pytest.raises(ValueError):
            AcceleratorConfig(clock_ghz=0)


class TestExecution:
    def test_execute_returns_stats(self, sim, backend):
        accel = Accelerator(sim, backend)
        stats = run_execute(sim, accel, [simple_trace(i * 100_000)
                                         for i in range(3)])
        assert stats.elapsed_ns > 0
        assert stats.instructions > 0
        assert stats.l2_misses >= 3 * 4

    def test_traces_run_in_parallel_across_agents(self, sim, backend):
        accel = Accelerator(sim, backend)
        one = run_execute(sim, accel, [simple_trace()])
        from repro.sim import Simulator
        sim2 = Simulator()
        backend2 = type(backend)(sim2)
        accel2 = Accelerator(sim2, backend2)
        seven = run_execute(
            sim2, accel2,
            [simple_trace(i * 100_000) for i in range(7)])
        # 7x the work in well under 7x the time.
        assert seven.elapsed_ns < one.elapsed_ns * 3

    def test_too_many_traces_rejected(self, sim, backend):
        accel = Accelerator(sim, backend)
        proc = sim.process(accel.execute([[] for _ in range(8)]))
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, ValueError)

    def test_output_regions_become_backend_hints(self, sim, backend):
        accel = Accelerator(sim, backend)
        run_execute(sim, accel, [simple_trace()],
                    output_regions=[(1_000_000, 2048)])
        assert (1_000_000, 2048) in backend.hints

    def test_backend_flushed_at_end(self, sim, backend):
        accel = Accelerator(sim, backend)
        run_execute(sim, accel, [simple_trace()])
        assert backend.flushes == 1

    def test_kernel_image_written_to_memory(self, sim, backend):
        accel = Accelerator(sim, backend)
        run_execute(sim, accel, [simple_trace()])
        # The default image is 4096 zero bytes at address 0, written
        # through the MCU in 512-byte chunks.
        assert accel.server.images_loaded == 1
        assert backend.writes >= 8


class TestStatsSeries:
    def test_aggregate_ipc_sums_agents(self, sim, backend):
        accel = Accelerator(sim, backend)
        stats = run_execute(
            sim, accel,
            [[ComputeOp(12_000, dsp_intrinsics=True)] for _ in range(2)])
        # Two agents at 12 IPC each while both compute.
        peak = max(stats.aggregate_ipc.values)
        assert peak == pytest.approx(24.0)

    def test_mean_aggregate_ipc(self, sim, backend):
        accel = Accelerator(sim, backend)
        stats = run_execute(sim, accel, [simple_trace()])
        assert 0 < stats.mean_aggregate_ipc < 12 * 7

    def test_residency_sums_to_elapsed(self, sim, backend):
        accel = Accelerator(sim, backend)
        stats = run_execute(sim, accel, [simple_trace()])
        for residency in stats.pe_residency:
            assert sum(residency.values()) == pytest.approx(
                stats.elapsed_ns, rel=1e-6)

    def test_power_series_tracks_states(self, sim, backend):
        model = EnergyModel()
        accel = Accelerator(sim, backend)
        run_execute(sim, accel,
                    [[ComputeOp(10_000)] for _ in range(7)])
        power = accel.power_series(model)
        # All 8 PEs asleep is the floor; 7 active + server is the peak.
        floor = 8 * model.pe_sleep_w
        assert min(power.values) >= floor - 1e-9
        assert max(power.values) >= 7 * model.pe_active_w * 0.9


class TestServerProtocol:
    def test_launch_wakes_agent_through_psc(self, sim, backend):
        accel = Accelerator(sim, backend)
        image_bytes = pack_data([KernelSegment("k", 0, 0, bytes(512))])

        def driver():
            image = yield from accel.server.load_image(image_bytes)
            yield from accel.server.launch(0, image, "k",
                                           [ComputeOp(100)])

        proc = sim.process(driver())
        sim.run()
        assert proc.ok, proc.value
        assert accel.server.kernels_launched == 1
        # The agent saw sleep, then idle/active.
        agent = accel.agents[0]
        assert STATE_ACTIVE in agent.activity.values

    def test_launch_bad_agent_rejected(self, sim, backend):
        accel = Accelerator(sim, backend)
        image_bytes = pack_data([KernelSegment("k", 0, 0, bytes(512))])

        def driver():
            image = yield from accel.server.load_image(image_bytes)
            yield from accel.server.launch(99, image, "k", [])

        proc = sim.process(driver())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, ValueError)
