"""Server-PE protocol edge cases."""

import pytest

from repro.accel import Accelerator, ComputeOp, pack_data
from repro.accel.kernel import KernelSegment
from repro.accel.server import ServerPe


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


def make_image_bytes(name="k", payload_bytes=512):
    return pack_data([KernelSegment(name, 0x1000, 0,
                                    bytes(payload_bytes))])


class TestServerEdgeCases:
    def test_fewer_traces_than_agents_is_fine(self, sim, backend):
        accel = Accelerator(sim, backend)

        def driver():
            image = yield from accel.server.load_image(make_image_bytes())
            yield from accel.server.run_all(image, "k",
                                            [[ComputeOp(10)]])

        run(sim, driver())
        assert accel.server.kernels_launched == 1

    def test_server_needs_agents(self, sim, backend):
        from repro.accel.mcu import MemoryControllerUnit
        from repro.accel.psc import PowerSleepController

        mcu = MemoryControllerUnit(sim, backend)
        psc = PowerSleepController(sim, 1)
        with pytest.raises(ValueError):
            ServerPe(sim, mcu, psc, agents=[])

    def test_image_segments_land_in_backend(self, sim, backend):
        accel = Accelerator(sim, backend)
        image_bytes = pack_data([
            KernelSegment("a", 0x2000, 0, b"\xAB" * 700),
            KernelSegment("b", 0x4000, 0, b"\xCD" * 100),
        ])

        def driver():
            yield from accel.server.load_image(image_bytes)

        run(sim, driver())
        assert backend.inspect(0x2000, 700) == b"\xAB" * 700
        assert backend.inspect(0x4000, 100) == b"\xCD" * 100

    def test_bad_segment_name_raises(self, sim, backend):
        accel = Accelerator(sim, backend)

        def driver():
            image = yield from accel.server.load_image(make_image_bytes())
            yield from accel.server.launch(0, image, "missing", [])

        proc = sim.process(driver())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, KeyError)

    def test_hints_registered_before_kernel_runs(self, sim, backend):
        accel = Accelerator(sim, backend)
        order = []
        original = backend.announce_writes

        def announce(address, size):
            order.append("hint")
            original(address, size)

        backend.announce_writes = announce

        def driver():
            image = yield from accel.server.load_image(
                make_image_bytes(), output_regions=[(0x9000, 512)])
            order.append("loaded")
            yield from accel.server.run_all(image, "k", [[ComputeOp(1)]])

        run(sim, driver())
        assert order == ["hint", "loaded"]
