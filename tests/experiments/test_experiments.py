"""Experiment-module tests on the QUICK configuration."""

import pytest

from repro.experiments import fig01_motivation
from repro.experiments import fig07_firmware
from repro.experiments import fig12_interleaving_timing
from repro.experiments import fig13_schedulers
from repro.experiments import fig15_bandwidth
from repro.experiments import fig16_exec_time
from repro.experiments import fig17_energy
from repro.experiments import fig18_19_ipc
from repro.experiments import fig20_21_power
from repro.experiments import tables
from repro.experiments.runner import QUICK, format_table, geometric_mean


class TestRunnerHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_quick_config_bundle(self):
        bundle = QUICK.bundle("gemver")
        assert bundle.spec.name == "gemver"


class TestTables:
    def test_table1_rows(self):
        rows = tables.table1_configuration()
        assert len(rows) == 11
        by_name = {row["system"]: row for row in rows}
        assert by_name["DRAM-less"]["internal_dram"] is False
        assert by_name["Hetero"]["heterogeneous"] is True
        assert by_name["Integrated-TLC"]["nvm_write_us"] == 1250.0
        assert by_name["DRAM-less"]["nvm_read_us"] == 0.1

    def test_table2_parameters(self):
        t2 = tables.table2_pram_parameters()
        assert t2["RL_cycles"] == 6
        assert t2["tRCD_ns"] == 80.0
        assert t2["channels"] == 2
        assert t2["partitions"] == 16
        assert t2["write_us"] == (10.0, 18.0)

    def test_table3_rows(self):
        rows = tables.table3_workloads()
        assert len(rows) == 15
        doitg = next(r for r in rows if r["workload"] == "doitg")
        assert doitg["category"] == "write-intensive"

    def test_report_renders(self):
        text = tables.report()
        assert "Table I" in text and "Table III" in text


class TestFig01:
    def test_degradation_and_energy_shape(self):
        result = fig01_motivation.run(QUICK)
        assert 0.0 < result["max_degradation"] < 1.0
        # Conventional system must cost noticeably more energy.
        assert result["mean_energy_ratio"] > 1.2
        assert "Figure 1" in fig01_motivation.report(result)


class TestFig07:
    def test_firmware_degrades_performance(self):
        result = fig07_firmware.run(QUICK)
        for row in result["rows"]:
            assert row["normalized_performance"] < 1.0
        assert result["max_degradation"] > 0.2
        assert "Figure 7" in fig07_firmware.report(result)


class TestFig12:
    def test_interleaving_hides_latency(self):
        result = fig12_interleaving_timing.run()
        assert (result["interleaved_total_ns"]
                < result["bare_metal_total_ns"])
        # Abstract: hides access latency ~40%.
        assert 0.25 <= result["hidden_fraction"] <= 0.60
        assert "Figure 12" in fig12_interleaving_timing.report(result)

    def test_single_request_has_nothing_to_hide(self):
        result = fig12_interleaving_timing.run(request_count=1)
        assert result["hidden_fraction"] == pytest.approx(0.0, abs=0.05)


class TestFig13:
    def test_policies_ordered(self):
        result = fig13_schedulers.run(QUICK)
        for row in result["rows"]:
            assert row["bare-metal"] == 1.0
            assert row["interleaving"] >= 0.95
            assert row["selective-erasing"] >= 0.95
            # Final combines both optimizations.
            assert row["final"] >= max(row["interleaving"],
                                       row["selective-erasing"]) * 0.9
        assert "Figure 13" in fig13_schedulers.report(result)


class TestFig15:
    def test_dramless_wins(self):
        result = fig15_bandwidth.run(QUICK)
        means = result["means"]
        assert means["DRAM-less"] == max(means.values())
        assert result["dramless_vs_hetero"] > 0.3
        assert result["heterodirect_vs_hetero"] > 0.0
        assert "Figure 15" in fig15_bandwidth.report(result)


class TestFig16:
    def test_fractions_sum_to_one(self):
        result = fig16_exec_time.run(QUICK, systems=("Hetero",
                                                     "DRAM-less"))
        for name, shares in result["mean_fractions"].items():
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_hetero_prepares_dramless_does_not(self):
        result = fig16_exec_time.run(QUICK, systems=("Hetero",
                                                     "DRAM-less"))
        fractions = result["mean_fractions"]
        assert fractions["Hetero"]["data_preparation"] > 0.0
        assert fractions["DRAM-less"]["data_preparation"] == 0.0
        assert "Figure 16" in fig16_exec_time.report(result)


class TestFig17:
    def test_dramless_energy_lowest_band(self):
        result = fig17_energy.run(QUICK)
        assert result["dramless_fraction_of_heterodirect"] < 0.5
        assert "Figure 17" in fig17_energy.report(result)

    def test_host_energy_only_for_heterogeneous(self):
        result = fig17_energy.run(QUICK, systems=("Hetero", "DRAM-less"))
        categories = result["category_mj"]
        assert categories["Hetero"]["host"] > 0
        assert categories["DRAM-less"]["host"] == 0


class TestFig1819:
    def test_page_systems_idle_dramless_sustains(self):
        result = fig18_19_ipc.run("gemver", QUICK,
                                  systems=("Integrated-SLC", "DRAM-less"),
                                  buckets=20)
        # DRAM-less sustains a higher aggregate IPC and is not more
        # stalled than the page-granule system.
        assert (result["mean_ipc"]["DRAM-less"]
                > result["mean_ipc"]["Integrated-SLC"])
        assert (result["stall_fraction"]["DRAM-less"]
                <= result["stall_fraction"]["Integrated-SLC"] + 0.05)
        assert "IPC" in fig18_19_ipc.report(result)

    def test_series_have_requested_buckets(self):
        result = fig18_19_ipc.run("gemver", QUICK,
                                  systems=("DRAM-less",), buckets=10)
        assert len(result["series"]["DRAM-less"]) == 10


class TestFig2021:
    def test_capture_is_16kb_scale(self):
        result = fig20_21_power.run("gemver", QUICK,
                                    systems=("DRAM-less",), buckets=8)
        assert result["completion_ns"]["DRAM-less"] > 0
        assert result["energy_mj"]["DRAM-less"] > 0
        assert len(result["power_series"]["DRAM-less"]) == 8

    def test_dramless_finishes_faster_than_nor(self):
        result = fig20_21_power.run(
            "doitg", QUICK, systems=("NOR-intf", "DRAM-less"), buckets=8)
        assert (result["completion_ns"]["DRAM-less"]
                < result["completion_ns"]["NOR-intf"])
        assert "16KB" in fig20_21_power.report(result)
