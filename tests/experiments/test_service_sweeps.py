"""The overload / burst-absorption / tenant-isolation sweeps."""

import dataclasses

import pytest

from repro.experiments import service_sweeps
from repro.experiments.runner import ExperimentConfig
from repro.service import ServiceConfig

# A deliberately small plan so the full sweeps stay test-sized (the
# window is still long enough for the goodput plateau to be stable).
PLAN = ("seed=3,tenants=3,duration=60000,queue=4,workers=4,"
        "deadline=20000")

QUICK = ExperimentConfig(scale=0.05, agents=3, workloads=("doitg",),
                         service=PLAN)


def test_base_plan_prefers_the_cli_spec():
    plan = service_sweeps.base_plan(QUICK)
    assert plan == ServiceConfig.parse(PLAN)


def test_base_plan_default_scales_with_footprint():
    quick = service_sweeps.base_plan(ExperimentConfig(scale=0.05))
    full = service_sweeps.base_plan(ExperimentConfig(scale=0.25))
    assert quick.duration_ns < full.duration_ns
    assert quick.seed == ExperimentConfig().seed


def test_saturation_probe_is_positive_and_repeatable():
    plan = ServiceConfig.parse(PLAN)
    first = service_sweeps.sustainable_rate_rps(plan, None)
    assert first > 0.0
    assert service_sweeps.sustainable_rate_rps(plan, None) == first


class TestOverload:
    @pytest.fixture(scope="class")
    def result(self):
        return service_sweeps.run_overload(QUICK)

    def test_sweeps_every_multiplier(self, result):
        assert [row["multiplier"] for row in result["rows"]] == list(
            service_sweeps.OVERLOAD_MULTIPLIERS)
        assert result["rate_max_rps"] > 0.0

    def test_offered_load_grows_with_multiplier(self, result):
        offered = [row["result"].offered for row in result["rows"]]
        assert offered[-1] > offered[0]

    def test_overload_sheds_instead_of_queueing_unboundedly(self, result):
        worst = result["rows"][-1]["result"]
        totals = worst.totals()
        assert totals["shed"] + totals["timeout"] > 0
        assert sum(totals.values()) == worst.offered

    def test_report_includes_verdict_and_classes(self, result):
        text = service_sweeps.report_overload(result)
        assert "Service: overload sweep" in text
        assert ("graceful degradation" in text
                or "congestion collapse" in text)
        for name in ("premium", "standard", "batch"):
            assert name in text

    def test_graceful_degradation_at_ten_x(self, result):
        plateau = max(row["result"].goodput_rps
                      for row in result["rows"]
                      if row["multiplier"] >= 1.0)
        worst = result["rows"][-1]["result"].goodput_rps
        assert worst >= service_sweeps.COLLAPSE_THRESHOLD * plateau


class TestBurst:
    @pytest.fixture(scope="class")
    def result(self):
        return service_sweeps.run_burst(QUICK)

    def test_grid_covers_arrivals_and_depths(self, result):
        cells = {(row["arrival"], row["queue_depth"])
                 for row in result["rows"]}
        assert cells == {
            (arrival, depth)
            for arrival in ("poisson", "mmpp", "diurnal")
            for depth in service_sweeps.BURST_QUEUE_DEPTHS}

    def test_deeper_queue_never_sheds_more(self, result):
        by_arrival = {}
        for row in result["rows"]:
            by_arrival.setdefault(row["arrival"], {})[
                row["queue_depth"]] = row["result"].totals()["shed"]
        shallow, deep = service_sweeps.BURST_QUEUE_DEPTHS
        for arrival, sheds in by_arrival.items():
            assert sheds[deep] <= sheds[shallow]

    def test_report_renders(self, result):
        text = service_sweeps.report_burst(result)
        assert "Service: burst absorption" in text
        assert "mmpp" in text


class TestIsolation:
    @pytest.fixture(scope="class")
    def result(self):
        return service_sweeps.run_isolation(QUICK)

    def test_two_arms(self, result):
        assert [arm["arm"] for arm in result["arms"]] == [
            "isolated", "shared"]
        for arm in result["arms"]:
            assert arm["result"].config.rogue_tenants >= 1

    def test_rogue_offers_more_than_fair_share(self, result):
        isolated = result["arms"][0]["result"]
        rogue = isolated.tenants[0]
        victims = isolated.tenants[1:]
        assert victims
        mean = sum(s.offered for s in victims) / len(victims)
        assert rogue.offered > 2 * mean

    def test_compliant_stats_exclude_the_rogue(self, result):
        isolated = result["arms"][0]["result"]
        compliant = isolated.class_stats(compliant_only=True)
        everyone = isolated.class_stats()
        assert (sum(s.offered for s in compliant.values())
                == isolated.offered - isolated.tenants[0].offered)
        assert (sum(s.offered for s in everyone.values())
                == isolated.offered)

    def test_report_states_the_verdict(self, result):
        text = service_sweeps.report_isolation(result)
        assert "Service: tenant isolation" in text
        assert "isolated" in text and "shared" in text
        assert ("hold their SLOs" in text or "VIOLATED" in text)


def test_sweeps_are_deterministic():
    first = service_sweeps.run_overload(QUICK)
    second = service_sweeps.run_overload(QUICK)
    assert (service_sweeps.report_overload(first)
            == service_sweeps.report_overload(second))


def test_faulted_sweep_runs(capsys):
    config = dataclasses.replace(
        QUICK, faults="seed=3,read_flip=0.001,program_fail=0.01,retries=1")
    result = service_sweeps.run_overload(config)
    assert service_sweeps.report_overload(result)
