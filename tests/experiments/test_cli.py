"""CLI runner tests."""

import pytest

from repro.experiments import cli


class TestParser:
    def test_list_command(self):
        args = cli.build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = cli.build_parser().parse_args(["run", "fig12"])
        assert args.experiment == "fig12"
        assert args.scale == 0.25
        assert not args.quick

    def test_quick_config(self):
        args = cli.build_parser().parse_args(["run", "fig15", "--quick"])
        config = cli.config_from_args(args)
        assert config.agents == 3
        assert config.workloads == ("gemver", "doitg")

    def test_scale_config(self):
        args = cli.build_parser().parse_args(
            ["run", "fig15", "--scale", "0.1", "--seed", "9"])
        config = cli.config_from_args(args)
        assert config.scale == 0.1
        assert config.seed == 9


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in cli.EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert cli.main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_tables(self, capsys):
        assert cli.main(["run", "tables"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_run_fig12(self, capsys):
        assert cli.main(["run", "fig12"]) == 0
        assert "interleaving" in capsys.readouterr().out

    def test_run_fig07_quick(self, capsys):
        assert cli.main(["run", "fig07", "--quick"]) == 0
        assert "firmware" in capsys.readouterr().out

    def test_every_registered_experiment_has_description(self):
        for name, (description, run_fn) in cli.EXPERIMENTS.items():
            assert description
            assert callable(run_fn)
