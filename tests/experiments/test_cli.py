"""CLI runner tests."""

import pytest

from repro.experiments import cli


class TestParser:
    def test_list_command(self):
        args = cli.build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = cli.build_parser().parse_args(["run", "fig12"])
        assert args.experiment == "fig12"
        assert args.scale == 0.25
        assert not args.quick

    def test_quick_config(self):
        args = cli.build_parser().parse_args(["run", "fig15", "--quick"])
        config = cli.config_from_args(args)
        assert config.agents == 3
        assert config.workloads == ("gemver", "doitg")

    def test_scale_config(self):
        args = cli.build_parser().parse_args(
            ["run", "fig15", "--scale", "0.1", "--seed", "9"])
        config = cli.config_from_args(args)
        assert config.scale == 0.1
        assert config.seed == 9

    def test_backend_flag(self):
        args = cli.build_parser().parse_args(
            ["run", "fig12", "--backend", "compiled"])
        config = cli.config_from_args(args)
        assert config.backend == "compiled"
        # Quick configs carry the knob too.
        args = cli.build_parser().parse_args(
            ["run", "fig12", "--quick", "--backend", "compiled"])
        assert cli.config_from_args(args).backend == "compiled"

    def test_backend_defaults_to_interpreted(self):
        args = cli.build_parser().parse_args(["run", "fig12"])
        assert cli.config_from_args(args).backend == "interpreted"

    def test_backend_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(
                ["run", "fig12", "--backend", "jit"])

    def test_telemetry_flags(self):
        args = cli.build_parser().parse_args(
            ["run", "fig12", "--trace", "t.json", "--spans", "s.jsonl",
             "--metrics"])
        assert args.trace == "t.json"
        assert args.spans == "s.jsonl"
        assert args.metrics

    def test_telemetry_flags_default_off(self):
        args = cli.build_parser().parse_args(["run", "fig12"])
        assert args.trace is None
        assert args.spans is None
        assert not args.metrics


class TestNormalizeArgv:
    def test_bare_experiment_gets_implicit_run(self):
        assert cli.normalize_argv(["fig12"]) == ["run", "fig12"]
        assert cli.normalize_argv(["fig12", "--quick"]) == [
            "run", "fig12", "--quick"]

    def test_subcommands_pass_through(self):
        assert cli.normalize_argv(["list"]) == ["list"]
        assert cli.normalize_argv(["run", "fig12"]) == ["run", "fig12"]

    def test_flags_and_empty_pass_through(self):
        assert cli.normalize_argv([]) == []
        assert cli.normalize_argv(["--help"]) == ["--help"]


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in cli.EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert cli.main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_tables(self, capsys):
        assert cli.main(["run", "tables"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_run_fig12(self, capsys):
        assert cli.main(["run", "fig12"]) == 0
        assert "interleaving" in capsys.readouterr().out

    def test_run_fig07_quick(self, capsys):
        assert cli.main(["run", "fig07", "--quick"]) == 0
        assert "firmware" in capsys.readouterr().out

    def test_every_registered_experiment_has_description(self):
        for name, (description, run_fn) in cli.EXPERIMENTS.items():
            assert description
            assert callable(run_fn)

    def test_implicit_run_subcommand(self, capsys):
        assert cli.main(["fig12"]) == 0
        assert "interleaving" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_trace_and_spans_written_and_valid(self, tmp_path, capsys):
        from repro.telemetry import validate_perfetto
        from repro.telemetry.export import load_spanlog
        import json

        trace = tmp_path / "fig12.json"
        spans = tmp_path / "fig12.jsonl"
        assert cli.main(["fig12", "--trace", str(trace),
                         "--spans", str(spans)]) == 0
        out = capsys.readouterr().out
        assert str(trace) in out
        document = json.loads(trace.read_text())
        assert validate_perfetto(document) == []
        lines = load_spanlog(str(spans))
        assert any(line["type"] == "span" for line in lines)
        assert any(line["type"] == "command" for line in lines)

    def test_metrics_flag_prints_summary(self, capsys):
        assert cli.main(["run", "fig12", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics summary" in out
        assert "sched.interleave.overlap_ns" in out
        assert "phase_skip" in out

    def test_untraced_run_leaves_no_ambient_telemetry(self):
        from repro.telemetry import current_metrics, current_tracer
        cli.main(["run", "fig12"])
        assert not current_tracer().enabled
        assert not current_metrics().enabled


class TestTimeseriesFlags:
    def test_flags_parse_with_defaults(self):
        from repro.telemetry import DEFAULT_WINDOW_NS
        args = cli.build_parser().parse_args(
            ["run", "fig12", "--timeseries", "ts.json"])
        assert args.timeseries == "ts.json"
        assert args.window == DEFAULT_WINDOW_NS
        assert cli.build_parser().parse_args(
            ["run", "fig12"]).timeseries is None

    def test_bad_window_rejected(self, capsys):
        assert cli.main(["fig12", "--quick", "--timeseries", "x.json",
                         "--window", "0"]) == 2
        assert "--window" in capsys.readouterr().err

    def test_timeseries_written_and_valid(self, tmp_path, capsys):
        from repro.telemetry import load_timeseries, validate_timeseries

        out = tmp_path / "ts.json"
        assert cli.main(["fig12", "--quick", "--timeseries", str(out),
                         "--window", "500"]) == 0
        assert str(out) in capsys.readouterr().out
        document = load_timeseries(str(out))
        assert validate_timeseries(document) == []
        assert document["window_ns"] == 500.0
        assert any(".window." in name for name in document["series"])

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "ts.csv"
        assert cli.main(["fig12", "--quick", "--timeseries", str(out),
                         "--window", "500"]) == 0
        capsys.readouterr()
        assert out.read_text().startswith("series,t,v")

    def test_report_includes_timeseries_section(self, tmp_path, capsys):
        report = tmp_path / "report.html"
        ts = tmp_path / "ts.json"
        assert cli.main(["fig12", "--quick", "--timeseries", str(ts),
                         "--window", "500",
                         "--report", str(report)]) == 0
        capsys.readouterr()
        text = report.read_text()
        assert "<h2>timeseries</h2>" in text
        assert "latency sketches" in text
        assert "spark" in text

    def test_watch_renders_exported_document(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main as telemetry_main

        out = tmp_path / "ts.json"
        assert cli.main(["fig12", "--quick", "--timeseries", str(out),
                         "--window", "500"]) == 0
        capsys.readouterr()
        assert telemetry_main(["watch", str(out)]) == 0
        watched = capsys.readouterr().out
        assert "time series" in watched
        assert "p999" in watched

    def test_watch_rejects_invalid_document(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main as telemetry_main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}\n')
        assert telemetry_main(["watch", str(bad)]) == 1
        assert "schema" in capsys.readouterr().err
