"""Tests for the shared experiment runner."""

import pytest

from repro.experiments.runner import (
    EVAL_WORKLOADS,
    QUICK,
    ExperimentConfig,
    run_matrix,
)


class TestExperimentConfig:
    def test_eval_workloads_is_the_full_suite(self):
        assert len(EVAL_WORKLOADS) == 15
        assert "gemver" in EVAL_WORKLOADS

    def test_bundle_rounds_override(self):
        bundle = QUICK.bundle("gemver", rounds=1)
        assert bundle.round_count == 1
        default = QUICK.bundle("gemver")
        assert default.round_count == 2  # gemver's spec value

    def test_system_config_carries_cache_sizes(self):
        config = ExperimentConfig(l1_bytes=1024, l2_bytes=8192)
        system_config = config.system_config()
        assert system_config.accelerator.l1_bytes == 1024
        assert system_config.accelerator.l2_bytes == 8192

    def test_bundles_are_deterministic(self):
        assert QUICK.bundle("doitg").rounds == QUICK.bundle("doitg").rounds


class TestRunMatrix:
    def test_matrix_shape(self):
        matrix = run_matrix(QUICK, ["Ideal", "DRAM-less"])
        assert set(matrix) == set(QUICK.workloads)
        for results in matrix.values():
            assert set(results) == {"Ideal", "DRAM-less"}

    def test_workload_override(self):
        matrix = run_matrix(QUICK, ["Ideal"], workloads=["gemver"])
        assert set(matrix) == {"gemver"}

    def test_results_carry_workload_names(self):
        matrix = run_matrix(QUICK, ["Ideal"], workloads=["doitg"])
        assert matrix["doitg"]["Ideal"].workload == "doitg"
        assert matrix["doitg"]["Ideal"].system == "Ideal"
