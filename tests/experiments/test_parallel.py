"""Tests for the process-parallel experiment runner and result cache."""

import dataclasses
import json

import pytest

from repro.experiments import parallel, runner
from repro.experiments.cli import main
from repro.telemetry import SamplingConfig, Telemetry

#: Two workloads x two systems: enough cells for a jobs=4 sharding.
SYSTEMS = ("Hetero", "DRAM-less")


def _canon(obj):
    """Content view of an ExecutionResult tree (cross-process objects
    never compare equal by identity)."""
    if hasattr(obj, "as_dict"):
        return _canon(obj.as_dict())
    if hasattr(obj, "times") and hasattr(obj, "values"):
        return (list(obj.times), list(obj.values))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _canon(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {key: _canon(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canon(value) for value in obj]
    if hasattr(obj, "__dict__"):
        return {key: _canon(value) for key, value in vars(obj).items()}
    return obj


class TestParallelEquivalence:
    @pytest.mark.determinism
    def test_matrix_results_metrics_and_spans_match_serial(self):
        def snapshot(jobs):
            telemetry = Telemetry(record_spans=True)
            with telemetry.activate():
                matrix = runner.run_matrix(runner.QUICK, SYSTEMS, jobs=jobs)
            spans = [dataclasses.astuple(span)
                     for span in telemetry.tracer.spans]
            return matrix, telemetry.summary(), spans

        serial_matrix, serial_summary, serial_spans = snapshot(1)
        sharded_matrix, sharded_summary, sharded_spans = snapshot(4)
        assert sharded_summary == serial_summary
        assert sharded_spans == serial_spans
        for workload in serial_matrix:
            for system in serial_matrix[workload]:
                assert (_canon(sharded_matrix[workload][system])
                        == _canon(serial_matrix[workload][system]))

    @pytest.mark.determinism
    def test_sampled_timeseries_match_serial_byte_for_byte(self):
        # Windowed samples land in ordinary registry series, so the
        # fragments merge reassembles a sharded run's timeseries —
        # and its sketches — bit-for-bit.
        def document(jobs):
            telemetry = Telemetry(
                record_spans=False,
                timeseries=SamplingConfig(window_ns=500.0))
            with telemetry.activate():
                runner.run_matrix(runner.QUICK, SYSTEMS, jobs=jobs)
            return json.dumps(telemetry.timeseries_document(),
                              sort_keys=True)

        serial = document(1)
        assert document(2) == serial
        assert '"sketches"' in serial

    @pytest.mark.determinism
    def test_cli_results_are_byte_identical(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.setenv("REPRO_GIT_SHA", "0000test")
        monkeypatch.setenv("REPRO_TIMESTAMP", "2026-01-01T00:00:00")
        serial_dir = tmp_path / "serial"
        sharded_dir = tmp_path / "sharded"
        assert main(["tables,fig12", "--quick",
                     "--results", str(serial_dir)]) == 0
        assert main(["tables,fig12", "--quick", "--jobs", "4",
                     "--results", str(sharded_dir)]) == 0
        capsys.readouterr()
        serial_files = sorted(path.name
                              for path in serial_dir.iterdir())
        assert serial_files == ["fig12_interleaving.txt", "table1.txt"]
        for name in serial_files:
            assert ((sharded_dir / name).read_bytes()
                    == (serial_dir / name).read_bytes())


class TestResultCache:
    def test_second_run_performs_zero_simulations(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = parallel.run_matrix_parallel(
            runner.QUICK, SYSTEMS, jobs=1, cache_dir=cache_dir)
        assert first.stats.simulated == len(runner.QUICK.workloads) * len(
            SYSTEMS)
        assert first.stats.cached == 0
        second = parallel.run_matrix_parallel(
            runner.QUICK, SYSTEMS, jobs=1, cache_dir=cache_dir)
        assert second.stats.simulated == 0
        assert second.stats.cached == first.stats.simulated
        for workload in first.matrix:
            for system in first.matrix[workload]:
                assert (_canon(second.matrix[workload][system])
                        == _canon(first.matrix[workload][system]))

    def test_key_depends_on_config(self):
        tree = "t" * 64
        quick = parallel.cell_key("matrix/gemver/Hetero", runner.QUICK,
                                  (False, False, None), tree)
        other = dataclasses.replace(runner.QUICK, seed=2)
        assert parallel.cell_key("matrix/gemver/Hetero", other,
                                 (False, False, None), tree) != quick
        assert parallel.cell_key("matrix/gemver/DRAM-less", runner.QUICK,
                                 (False, False, None), tree) != quick

    def test_key_depends_on_backend(self):
        # Compiled and interpreted results are byte-identical by
        # contract, but a cache hit across backends would silently
        # stop exercising the compiled path — keep the keys distinct.
        tree = "t" * 64
        interpreted = parallel.cell_key(
            "matrix/gemver/Hetero", runner.QUICK,
            (False, False, None), tree)
        compiled = parallel.cell_key(
            "matrix/gemver/Hetero",
            dataclasses.replace(runner.QUICK, backend="compiled"),
            (False, False, None), tree)
        assert interpreted != compiled

    def test_key_depends_on_sampling_spec(self):
        # A sampled rerun must never replay a cell cached without
        # sampling (its fragments would carry no windowed series).
        tree = "t" * 64
        plain = parallel.cell_key("matrix/gemver/Hetero", runner.QUICK,
                                  (True, False, None), tree)
        sampled = parallel.cell_key("matrix/gemver/Hetero", runner.QUICK,
                                    (True, False, (500.0, None)), tree)
        rewindowed = parallel.cell_key(
            "matrix/gemver/Hetero", runner.QUICK,
            (True, False, (250.0, None)), tree)
        assert len({plain, sampled, rewindowed}) == 3

    def test_key_depends_on_source_tree(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = parallel.source_tree_digest(tmp_path)
        assert parallel.source_tree_digest(tmp_path) == before  # memoized
        parallel._TREE_DIGESTS.clear()
        (tmp_path / "a.py").write_text("x = 2\n")
        after = parallel.source_tree_digest(tmp_path)
        parallel._TREE_DIGESTS.clear()
        assert after != before

    def test_unreadable_entry_is_a_miss(self, tmp_path):
        cache = parallel.ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_cached_telemetry_replays(self, tmp_path):
        def summary(cache_dir):
            telemetry = Telemetry()
            with telemetry.activate():
                run = parallel.run_matrix_parallel(
                    runner.QUICK, SYSTEMS[:1], workloads=("gemver",),
                    jobs=1, cache_dir=cache_dir)
            return telemetry.summary(), run.stats
        first_summary, first_stats = summary(tmp_path / "cache")
        second_summary, second_stats = summary(tmp_path / "cache")
        assert first_stats.simulated == 1
        assert second_stats.cached == 1
        assert second_summary == first_summary


class TestValidation:
    def test_empty_workloads_names_matrix_key(self):
        with pytest.raises(ValueError, match="matrix key 'workloads'"):
            runner.run_matrix(runner.QUICK, SYSTEMS, workloads=())

    def test_empty_systems_names_matrix_key(self):
        with pytest.raises(ValueError, match="matrix key 'systems'"):
            runner.run_matrix(runner.QUICK, ())

    def test_geometric_mean_empty_names_key(self):
        with pytest.raises(ValueError, match="'speedup.gemver'"):
            runner.geometric_mean([], key="speedup.gemver")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            runner.run_matrix(runner.QUICK, SYSTEMS, jobs=0)

    def test_cli_rejects_bad_jobs(self, capsys):
        assert main(["fig12", "--quick", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err
