"""Tests for the terminal time-series renderer."""

from repro.experiments.plot import series_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero(self):
        assert sparkline([0.0, 0.0, 0.0]) == "   "

    def test_max_maps_to_full_block(self):
        line = sparkline([0.0, 1.0])
        assert line[-1] == "█"
        assert line[0] == " "

    def test_shared_scale(self):
        half = sparkline([0.5], maximum=1.0)
        own = sparkline([0.5])
        assert own == "█"
        assert half not in ("█", " ")

    def test_length_matches_input(self):
        assert len(sparkline([1.0] * 17)) == 17

    def test_values_above_scale_clamp(self):
        assert sparkline([2.0], maximum=1.0) == "█"


class TestSeriesChart:
    def test_renders_labels_and_scale(self):
        chart = series_chart({
            "DRAM-less": [(0.0, 2.0), (1.0, 2.0)],
            "PAGE-buffer": [(0.0, 0.0), (1.0, 1.0)],
        })
        assert "DRAM-less" in chart
        assert "PAGE-buffer" in chart
        assert "scale: 0 .. 2" in chart

    def test_empty_mapping(self):
        assert series_chart({}) == "(no series)"

    def test_rows_share_the_peak(self):
        chart = series_chart({
            "a": [(0.0, 1.0)],
            "b": [(0.0, 2.0)],
        })
        lines = chart.splitlines()
        assert lines[1].rstrip().endswith("█")   # b at peak
        assert not lines[0].rstrip().endswith("█")  # a at half
