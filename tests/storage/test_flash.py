"""NAND flash die tests."""

import pytest

from repro.sim import Simulator
from repro.storage import FlashCellType, NandFlash
from repro.storage.flash import PAGE_BYTES, PAGES_PER_BLOCK


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


class TestLatencies:
    def test_table1_read_latencies(self):
        assert FlashCellType.SLC.read_ns == 25_000.0
        assert FlashCellType.MLC.read_ns == 50_000.0
        assert FlashCellType.TLC.read_ns == 80_000.0

    def test_table1_program_latencies(self):
        assert FlashCellType.SLC.program_ns == 300_000.0
        assert FlashCellType.MLC.program_ns == 800_000.0
        assert FlashCellType.TLC.program_ns == 1_250_000.0

    def test_table1_erase_latencies(self):
        assert FlashCellType.SLC.erase_ns == 2_000_000.0
        assert FlashCellType.MLC.erase_ns == 3_500_000.0
        assert FlashCellType.TLC.erase_ns == 2_274_000.0

    def test_page_read_takes_cell_read_time(self):
        sim = Simulator()
        flash = NandFlash(sim, FlashCellType.SLC)
        run(sim, flash.read_page(0))
        assert sim.now == 25_000.0


class TestProgramErase:
    def test_program_then_read_roundtrip(self):
        sim = Simulator()
        flash = NandFlash(sim, FlashCellType.SLC)
        payload = bytes([7]) * PAGE_BYTES

        def driver():
            yield from flash.program_page(3, payload)
            data = yield from flash.read_page(3)
            return data

        assert run(sim, driver()) == payload

    def test_no_overwrite_without_erase(self):
        sim = Simulator()
        flash = NandFlash(sim, FlashCellType.SLC)

        def driver():
            yield from flash.program_page(0, bytes(PAGE_BYTES))
            with pytest.raises(ValueError):
                yield from flash.program_page(0, bytes(PAGE_BYTES))

        run(sim, driver())

    def test_partial_page_program_rejected(self):
        sim = Simulator()
        flash = NandFlash(sim, FlashCellType.SLC)

        def driver():
            with pytest.raises(ValueError):
                yield from flash.program_page(0, b"partial")

        run(sim, driver())

    def test_erase_clears_the_block(self):
        sim = Simulator()
        flash = NandFlash(sim, FlashCellType.SLC)

        def driver():
            yield from flash.program_page(1, bytes([9]) * PAGE_BYTES)
            yield from flash.erase_block(0)
            data = yield from flash.read_page(1)
            return data

        assert run(sim, driver()) == bytes(PAGE_BYTES)
        assert flash.blocks_erased == 1

    def test_erase_only_touches_its_block(self):
        sim = Simulator()
        flash = NandFlash(sim, FlashCellType.SLC)
        other = PAGES_PER_BLOCK  # first page of block 1

        def driver():
            yield from flash.program_page(other, bytes([9]) * PAGE_BYTES)
            yield from flash.erase_block(0)
            data = yield from flash.read_page(other)
            return data

        assert run(sim, driver()) == bytes([9]) * PAGE_BYTES


class TestParallelism:
    def test_reads_beyond_parallelism_queue(self):
        sim = Simulator()
        flash = NandFlash(sim, FlashCellType.SLC, parallelism=2)

        def reader(page):
            yield from flash.read_page(page)

        for page in range(4):
            sim.process(reader(page))
        sim.run()
        # 4 reads, 2 planes -> two waves of 25 us.
        assert sim.now == 50_000.0

    def test_parallelism_must_be_positive(self):
        with pytest.raises(ValueError):
            NandFlash(Simulator(), FlashCellType.SLC, parallelism=0)

    def test_counters(self):
        sim = Simulator()
        flash = NandFlash(sim, FlashCellType.SLC)

        def driver():
            yield from flash.program_page(0, bytes(PAGE_BYTES))
            yield from flash.read_page(0)

        run(sim, driver())
        assert flash.pages_programmed == 1
        assert flash.pages_read == 1


class TestPeekPoke:
    def test_poke_then_peek(self):
        flash = NandFlash(Simulator(), FlashCellType.TLC)
        flash.poke(5, bytes([1]) * PAGE_BYTES)
        assert flash.peek(5) == bytes([1]) * PAGE_BYTES
        assert flash.is_programmed(5)

    def test_poke_validates_size(self):
        flash = NandFlash(Simulator(), FlashCellType.TLC)
        with pytest.raises(ValueError):
            flash.poke(0, b"small")

    def test_negative_page_rejected(self):
        flash = NandFlash(Simulator(), FlashCellType.SLC)
        with pytest.raises(ValueError):
            flash.peek(-1)
