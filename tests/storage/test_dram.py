"""DRAM buffer tests: LRU residency, dirty tracking, port timing."""

import pytest

from repro.sim import Simulator
from repro.storage import DramBuffer


def make_buffer(capacity_blocks=4, block=512):
    sim = Simulator()
    return sim, DramBuffer(sim, capacity_blocks * block, block, name="test")


class TestResidency:
    def test_lookup_miss_then_hit(self):
        _, dram = make_buffer()
        assert not dram.lookup(1)
        dram.insert(1)
        assert dram.lookup(1)
        assert dram.hits == 1
        assert dram.misses == 1

    def test_lru_eviction_order(self):
        _, dram = make_buffer(capacity_blocks=2)
        dram.insert(1)
        dram.insert(2)
        dram.lookup(1)          # refresh block 1
        evicted = dram.insert(3)
        assert evicted == (2, False)

    def test_insert_existing_block_does_not_evict(self):
        _, dram = make_buffer(capacity_blocks=2)
        dram.insert(1)
        dram.insert(2)
        assert dram.insert(1) is None
        assert len(dram) == 2

    def test_dirty_state_sticky_across_reinsert(self):
        _, dram = make_buffer()
        dram.insert(1, dirty=True)
        dram.insert(1, dirty=False)
        assert dram.dirty_blocks() == [1]

    def test_mark_dirty(self):
        _, dram = make_buffer()
        dram.insert(5)
        dram.mark_dirty(5)
        assert dram.dirty_blocks() == [5]

    def test_mark_dirty_requires_residency(self):
        _, dram = make_buffer()
        with pytest.raises(KeyError):
            dram.mark_dirty(9)

    def test_evicted_dirty_flag_reported(self):
        _, dram = make_buffer(capacity_blocks=1)
        dram.insert(1, dirty=True)
        evicted = dram.insert(2)
        assert evicted == (1, True)

    def test_drop(self):
        _, dram = make_buffer()
        dram.insert(1, dirty=True)
        dram.drop(1)
        assert 1 not in dram
        assert dram.dirty_blocks() == []


class TestTiming:
    def test_access_latency_plus_bandwidth(self):
        sim, dram = make_buffer()

        def driver():
            yield from dram.access(512)

        sim.process(driver())
        sim.run()
        assert sim.now == pytest.approx(50.0 + 512 / 12.8)

    def test_port_serializes_accesses(self):
        sim, dram = make_buffer()

        def driver():
            yield from dram.access(512)

        sim.process(driver())
        sim.process(driver())
        sim.run()
        assert sim.now == pytest.approx(2 * (50.0 + 512 / 12.8))

    def test_access_size_validated(self):
        sim, dram = make_buffer()

        def driver():
            with pytest.raises(ValueError):
                yield from dram.access(0)

        sim.process(driver())
        sim.run()


class TestValidation:
    def test_capacity_must_hold_a_block(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DramBuffer(sim, 100, 512)

    def test_block_size_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DramBuffer(sim, 1024, 0)
