"""Emulated SSD tests: FTL, buffer behaviour, read-modify-write."""

import pytest

from repro.energy import EnergyAccount
from repro.sim import Simulator
from repro.storage import EmulatedSsd, FlashCellType
from repro.storage.flash import PAGE_BYTES
from repro.storage.ssd import SSD_COMMAND_NS


def make_ssd(buffer_pages=4, cell=FlashCellType.SLC, energy=None):
    sim = Simulator()
    ssd = EmulatedSsd(sim, cell_type=cell,
                      buffer_bytes=buffer_pages * PAGE_BYTES,
                      energy=energy)
    return sim, ssd


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


class TestFunctional:
    def test_write_read_roundtrip(self):
        sim, ssd = make_ssd()
        payload = bytes(range(256)) * 2

        def driver():
            yield from ssd.write(1000, payload)
            data = yield from ssd.read(1000, len(payload))
            return data

        assert run(sim, driver()) == payload

    def test_preload_then_read(self):
        sim, ssd = make_ssd()
        ssd.preload(0, b"\xAA" * 100)

        def driver():
            data = yield from ssd.read(0, 100)
            return data

        assert run(sim, driver()) == b"\xAA" * 100

    def test_unwritten_reads_zero(self):
        sim, ssd = make_ssd()

        def driver():
            data = yield from ssd.read(0, 64)
            return data

        assert run(sim, driver()) == bytes(64)

    def test_cross_page_write(self):
        sim, ssd = make_ssd()
        payload = bytes([3]) * (PAGE_BYTES + 100)

        def driver():
            yield from ssd.write(PAGE_BYTES - 50, payload)
            data = yield from ssd.read(PAGE_BYTES - 50, len(payload))
            return data

        assert run(sim, driver()) == payload

    def test_overwrite_remaps_not_erases_inline(self):
        sim, ssd = make_ssd(buffer_pages=1)
        full = bytes([1]) * PAGE_BYTES

        def driver():
            yield from ssd.write(0, full)
            yield from ssd.flush()
            yield from ssd.write(0, bytes([2]) * PAGE_BYTES)
            yield from ssd.flush()
            data = yield from ssd.read(0, PAGE_BYTES)
            return data

        assert run(sim, driver()) == bytes([2]) * PAGE_BYTES
        assert ssd.flash.pages_programmed == 2
        assert ssd.flash.blocks_erased == 0  # amortized, not inline

    def test_flush_persists_dirty_pages(self):
        sim, ssd = make_ssd()
        payload = bytes([5]) * PAGE_BYTES

        def driver():
            yield from ssd.write(0, payload)
            yield from ssd.flush()

        run(sim, driver())
        assert ssd.inspect(0, PAGE_BYTES) == payload


class TestTimingBehaviour:
    def test_buffer_hit_avoids_flash(self):
        sim, ssd = make_ssd()
        ssd.preload(0, bytes([1]) * 64)  # map the page so flash is hit

        def driver():
            yield from ssd.read(0, 64)      # miss: flash read
            t_after_miss = sim.now
            yield from ssd.read(0, 64)      # hit: buffer only
            return t_after_miss, sim.now

        t_miss, t_total = run(sim, driver())
        assert t_miss >= FlashCellType.SLC.read_ns
        assert (t_total - t_miss) < FlashCellType.SLC.read_ns
        assert ssd.flash.pages_read == 1

    def test_sub_page_write_pays_read_modify_write(self):
        sim, ssd = make_ssd()
        ssd.preload(0, bytes([1]) * 64)  # page exists on flash

        def driver():
            yield from ssd.write(0, b"tiny")

        run(sim, driver())
        # The RMW pulled the page from flash first.
        assert ssd.flash.pages_read == 1

    def test_full_page_write_skips_rmw(self):
        sim, ssd = make_ssd()

        def driver():
            yield from ssd.write(0, bytes(PAGE_BYTES))

        run(sim, driver())
        assert ssd.flash.pages_read == 0

    def test_command_overhead_charged(self):
        sim, ssd = make_ssd()
        ssd.preload(0, bytes([1]) * 32)

        def driver():
            yield from ssd.read(0, 32)

        run(sim, driver())
        assert ssd.commands == 1
        assert sim.now >= SSD_COMMAND_NS + FlashCellType.SLC.read_ns

    def test_dirty_eviction_programs_flash(self):
        sim, ssd = make_ssd(buffer_pages=1)

        def driver():
            yield from ssd.write(0, bytes([1]) * PAGE_BYTES)
            yield from ssd.write(PAGE_BYTES, bytes([2]) * PAGE_BYTES)

        run(sim, driver())
        assert ssd.flash.pages_programmed == 1  # page 0 evicted dirty


class TestEnergy:
    def test_flash_and_controller_energy_charged(self):
        energy = EnergyAccount()
        sim, ssd = make_ssd(energy=energy)

        def driver():
            yield from ssd.write(0, bytes(PAGE_BYTES))
            yield from ssd.flush()
            yield from ssd.read(PAGE_BYTES, 32)

        run(sim, driver())
        categories = energy.by_category()
        assert categories["storage"] > 0
        assert categories["dram"] > 0

    def test_bad_range_rejected(self):
        sim, ssd = make_ssd()

        def driver():
            with pytest.raises(ValueError):
                yield from ssd.read(-1, 10)

        run(sim, driver())
