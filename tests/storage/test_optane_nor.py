"""PRAM SSD and NOR-interface PRAM tests."""

import pytest

from repro.energy import EnergyAccount
from repro.sim import Simulator
from repro.storage import NorPram, PramSsd
from repro.storage.nor_pram import NOR_READ_32B_NS, NOR_WRITE_32B_NS
from repro.storage.optane import PRAM_SSD_READ_NS


def run(sim, generator):
    proc = sim.process(generator)
    sim.run()
    if not proc.ok:
        raise proc.value
    return proc.value


class TestPramSsd:
    def test_roundtrip(self):
        sim = Simulator()
        ssd = PramSsd(sim)
        payload = bytes(range(100))

        def driver():
            yield from ssd.write(64, payload)
            data = yield from ssd.read(64, len(payload))
            return data

        assert run(sim, driver()) == payload

    def test_reads_fan_out_over_units(self):
        from repro.storage.ssd import SSD_COMMAND_NS

        sim = Simulator()
        ssd = PramSsd(sim, parallelism=8)

        def driver():
            yield from ssd.read(0, 8 * 32)

        run(sim, driver())
        # 8 chunks on 8 units: one wave of 100 ns + command overhead.
        assert sim.now == pytest.approx(SSD_COMMAND_NS + PRAM_SSD_READ_NS)

    def test_bulk_write_serializes_into_chunk_programs(self):
        sim = Simulator()
        ssd = PramSsd(sim, parallelism=8)

        def driver():
            yield from ssd.write(0, bytes(64 * 32))  # 64 chunks

        run(sim, driver())
        # 64 pristine programs over 8 units = 8 waves of 10 us.
        assert sim.now >= 8 * 10_000.0
        assert ssd.chunks_written == 64

    def test_log_structured_overwrites_stay_set_only(self):
        # The SSD's translation layer remaps writes to pre-RESET
        # locations, so overwrites do not pay the RESET pass inline.
        sim = Simulator()
        ssd = PramSsd(sim)
        ssd.preload(0, bytes(32))

        def driver():
            start = sim.now
            yield from ssd.write(0, b"\x01" * 32)
            return sim.now - start

        elapsed = run(sim, driver())
        assert 10_000.0 <= elapsed < 20_000.0
        # Data still correct after the remap.
        assert ssd.inspect(0, 32) == b"\x01" * 32

    def test_preload_inspect(self):
        ssd = PramSsd(Simulator())
        ssd.preload(10, b"hello")
        assert ssd.inspect(10, 5) == b"hello"

    def test_parallelism_validated(self):
        with pytest.raises(ValueError):
            PramSsd(Simulator(), parallelism=0)

    def test_energy_charged(self):
        energy = EnergyAccount()
        sim = Simulator()
        ssd = PramSsd(sim, energy=energy)

        def driver():
            yield from ssd.write(0, bytes(32))
            yield from ssd.read(0, 32)

        run(sim, driver())
        assert energy.by_category()["storage"] > 0


class TestNorPram:
    def test_roundtrip(self):
        sim = Simulator()
        nor = NorPram(sim)
        payload = bytes(range(50))

        def driver():
            yield from nor.write(7, payload)
            data = yield from nor.read(7, len(payload))
            return data

        assert run(sim, driver()) == payload

    def test_read_bandwidth_is_half_of_flash_page_bandwidth(self):
        sim = Simulator()
        nor = NorPram(sim)

        def driver():
            yield from nor.read(0, 32)

        run(sim, driver())
        assert sim.now == pytest.approx(NOR_READ_32B_NS)
        # Section VI-A: NOR read bandwidth ~2x worse than flash's
        # 16KB/25us page bandwidth.
        nor_bw = 32 / NOR_READ_32B_NS          # bytes per ns
        flash_bw = 16 * 1024 / 25_000.0
        assert 1.5 <= flash_bw / nor_bw <= 2.5

    def test_write_is_an_order_slower_than_new_pram(self):
        sim = Simulator()
        nor = NorPram(sim)

        def driver():
            yield from nor.write(0, bytes(32))

        run(sim, driver())
        assert sim.now == pytest.approx(NOR_WRITE_32B_NS)
        # Block-level calibration: a serialized 512 B write is ~3-6x a
        # DRAM-less block program (10-18 us striped over 16 banks).
        block_write_ns = 16 * NOR_WRITE_32B_NS
        assert 3.0 <= block_write_ns / 18_000.0 <= 6.5
        assert block_write_ns / 10_000.0 >= 5.0

    def test_accesses_serialize_on_the_single_port(self):
        sim = Simulator()
        nor = NorPram(sim)

        def reader():
            yield from nor.read(0, 32)

        sim.process(reader())
        sim.process(reader())
        sim.run()
        assert sim.now == pytest.approx(2 * NOR_READ_32B_NS)

    def test_word_serialization_scales_with_size(self):
        sim = Simulator()
        nor = NorPram(sim)

        def driver():
            yield from nor.read(0, 64)

        run(sim, driver())
        assert sim.now == pytest.approx(2 * NOR_READ_32B_NS)

    def test_unaligned_access(self):
        sim = Simulator()
        nor = NorPram(sim)
        nor.preload(0, bytes(range(16)))

        def driver():
            data = yield from nor.read(3, 5)
            return data

        assert run(sim, driver()) == bytes(range(3, 8))

    def test_preload_inspect(self):
        nor = NorPram(Simulator())
        nor.preload(100, b"abc")
        assert nor.inspect(100, 3) == b"abc"

    def test_bad_range_rejected(self):
        sim = Simulator()
        nor = NorPram(sim)

        def driver():
            with pytest.raises(ValueError):
                yield from nor.read(0, 0)

        run(sim, driver())
