"""FaultConfig validation/parsing and FaultState draw determinism."""

import math

import pytest

from repro.faults.plan import FaultConfig, FaultState


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("read_flip_probability", -0.1),
        ("read_flip_probability", 1.5),
        ("read_flip_probability", float("nan")),
        ("read_double_flip_probability", 2.0),
        ("program_fail_probability", -1e-9),
        ("partition_stall_probability", float("nan")),
        ("wear_fail_factor", -0.5),
        ("wear_fail_factor", float("nan")),
        ("partition_stall_ns", -1.0),
        ("retry_backoff_ns", float("nan")),
    ])
    def test_bad_value_names_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: value})

    def test_endurance_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="endurance_budget"):
            FaultConfig(endurance_budget=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_program_retries"):
            FaultConfig(max_program_retries=-1)

    def test_negative_spares_rejected(self):
        with pytest.raises(ValueError, match="spare_rows_per_partition"):
            FaultConfig(spare_rows_per_partition=-1)

    def test_defaults_are_null(self):
        config = FaultConfig()
        assert config.is_null
        assert not config.can_fail_programs

    def test_endurance_budget_alone_can_fail_programs(self):
        assert FaultConfig(endurance_budget=8).can_fail_programs
        assert not FaultConfig(endurance_budget=8).is_null


class TestParse:
    def test_aliases_round_trip(self):
        config = FaultConfig.parse(
            "seed=7,read_flip=0.25,program_fail=0.01,endurance=64,"
            "wear_factor=0.5,retries=2,spares=3")
        assert config.seed == 7
        assert config.read_flip_probability == 0.25
        assert config.program_fail_probability == 0.01
        assert config.endurance_budget == 64
        assert config.wear_fail_factor == 0.5
        assert config.max_program_retries == 2
        assert config.spare_rows_per_partition == 3

    def test_full_field_names_accepted(self):
        config = FaultConfig.parse("read_flip_probability=0.5")
        assert config.read_flip_probability == 0.5

    def test_unknown_key_is_named(self):
        with pytest.raises(ValueError, match="bogus"):
            FaultConfig.parse("bogus=1")

    def test_non_numeric_value_names_field(self):
        with pytest.raises(ValueError, match="read_flip_probability"):
            FaultConfig.parse("read_flip=lots")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultConfig.parse("seed")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            FaultConfig.parse("   ")

    def test_parsed_values_validate(self):
        with pytest.raises(ValueError, match="read_flip_probability"):
            FaultConfig.parse("read_flip=7")


class TestDraws:
    CONFIG = FaultConfig(seed=3, read_flip_probability=0.5,
                         read_double_flip_probability=0.5)

    def test_same_site_same_sequence_across_instances(self):
        one = FaultState(self.CONFIG)
        two = FaultState(self.CONFIG)
        sites = [(0, 1, 2, 3), (1, 0, 5, 9), (0, 15, 0, 42)]
        first = [one.read_flip_bits(*site, 32) for site in sites]
        second = [two.read_flip_bits(*site, 32) for site in sites]
        assert first == second

    def test_site_sequence_independent_of_interleaving(self):
        ordered = FaultState(self.CONFIG)
        shuffled = FaultState(self.CONFIG)
        site_a = (0, 0, 0, 7)
        site_b = (1, 3, 2, 11)
        a_then_b = [ordered.read_flip_bits(*site_a, 32),
                    ordered.read_flip_bits(*site_b, 32),
                    ordered.read_flip_bits(*site_a, 32)]
        b_then_a_second = shuffled.read_flip_bits(*site_b, 32)
        b_then_a_first = shuffled.read_flip_bits(*site_a, 32)
        b_then_a_third = shuffled.read_flip_bits(*site_a, 32)
        assert a_then_b == [b_then_a_first, b_then_a_second,
                            b_then_a_third]

    def test_seed_changes_decisions(self):
        base = FaultState(self.CONFIG)
        other = FaultState(FaultConfig(seed=4, read_flip_probability=0.5,
                                       read_double_flip_probability=0.5))
        site = (0, 0, 0, 7)
        draws_base = [base.read_flip_bits(*site, 32) for _ in range(32)]
        draws_other = [other.read_flip_bits(*site, 32) for _ in range(32)]
        assert draws_base != draws_other

    def test_flip_bits_within_burst(self):
        state = FaultState(FaultConfig(read_flip_probability=1.0,
                                       read_double_flip_probability=1.0))
        for row in range(64):
            bits = state.read_flip_bits(0, 0, 0, row, 32)
            assert bits
            assert all(0 <= bit < 32 * 8 for bit in bits)
            if len(bits) == 2:
                # The double flip shares the first flip's codeword.
                assert bits[0] // 64 == bits[1] // 64
                assert bits[0] != bits[1]


class TestProgramFailures:
    def test_endurance_budget_makes_words_stick(self):
        state = FaultState(FaultConfig(endurance_budget=2))
        wear = {0: 2, 1: 1, 2: 5}
        failed = state.program_word_failures_for(
            0, 0, 0, 9, [0, 1, 2], wear.__getitem__)
        assert failed == [0, 2]
        assert (0, 0, 0, 9, 0) in state.stuck_words
        # Stuck words keep failing even at zero wear.
        again = state.program_word_failures_for(
            0, 0, 0, 9, [0, 1, 2], lambda word: 0)
        assert again == [0, 2]

    def test_null_probability_never_fails(self):
        state = FaultState(FaultConfig(endurance_budget=1000))
        failed = state.program_word_failures_for(
            0, 0, 0, 9, list(range(8)), lambda word: 1)
        assert failed == []

    def test_certain_probability_always_fails(self):
        state = FaultState(FaultConfig(program_fail_probability=1.0))
        failed = state.program_word_failures_for(
            0, 0, 0, 9, list(range(8)), lambda word: 0)
        assert failed == list(range(8))

    def test_wear_scales_failure_probability(self):
        config = FaultConfig(program_fail_probability=0.0,
                             wear_fail_factor=1.0, endurance_budget=100)
        fresh_failures = 0
        worn_failures = 0
        for row in range(200):
            fresh = FaultState(config).program_word_failures_for(
                0, 0, 0, row, [0], lambda word: 5)
            worn = FaultState(config).program_word_failures_for(
                0, 0, 0, row, [0], lambda word: 95)
            fresh_failures += len(fresh)
            worn_failures += len(worn)
        assert worn_failures > fresh_failures

    def test_counts_aggregate(self):
        state = FaultState(FaultConfig(program_fail_probability=1.0))
        state.program_word_failures_for(0, 0, 0, 1, [0, 1], lambda w: 0)
        state.note_retry()
        state.note_retries_exhausted()
        state.note_row_retired()
        state.note_retire_failed()
        state.note_ecc(3, 1)
        counts = state.counts()
        assert counts["program_word_failures"] == 2.0
        assert counts["retry_attempts"] == 1.0
        assert counts["retries_exhausted"] == 1.0
        assert counts["rows_retired"] == 1.0
        assert counts["retire_failures"] == 1.0
        assert counts["ecc_corrected_bits"] == 3.0
        assert counts["ecc_uncorrectable"] == 1.0
        assert all(not math.isnan(value) for value in counts.values())
