"""Behavioural SEC-DED model: correct singles, detect doubles."""

from repro.faults.ecc import apply_bit_flips, secded_decode


def pattern(size: int = 32) -> bytes:
    return bytes((i * 37 + 5) % 256 for i in range(size))


class TestApplyBitFlips:
    def test_flips_named_bits(self):
        data = bytes(4)
        corrupted = apply_bit_flips(data, [0, 9])
        assert corrupted == bytes([0x01, 0x02, 0x00, 0x00])

    def test_double_flip_restores(self):
        data = pattern()
        assert apply_bit_flips(apply_bit_flips(data, [77]), [77]) == data


class TestSecdedDecode:
    def test_no_flips_is_identity(self):
        data = pattern()
        result = secded_decode(data, [])
        assert result.data == data
        assert result.corrected_bits == 0
        assert result.uncorrectable_codewords == 0

    def test_single_flip_corrected(self):
        data = pattern()
        corrupted = apply_bit_flips(data, [42])
        result = secded_decode(corrupted, [42])
        assert result.data == data
        assert result.corrected_bits == 1
        assert result.uncorrectable_codewords == 0

    def test_double_flip_same_codeword_detected_not_corrected(self):
        data = pattern()
        bits = [70, 100]  # both inside codeword 1 (bits 64..127)
        corrupted = apply_bit_flips(data, bits)
        result = secded_decode(corrupted, bits)
        assert result.data == corrupted  # left corrupted
        assert result.corrected_bits == 0
        assert result.uncorrectable_codewords == 1

    def test_single_flips_in_two_codewords_both_corrected(self):
        data = pattern()
        bits = [3, 200]  # codewords 0 and 3
        corrupted = apply_bit_flips(data, bits)
        result = secded_decode(corrupted, bits)
        assert result.data == data
        assert result.corrected_bits == 2
        assert result.uncorrectable_codewords == 0

    def test_mixed_codewords(self):
        data = pattern()
        bits = [1, 2, 130]  # double in codeword 0, single in codeword 2
        corrupted = apply_bit_flips(data, bits)
        result = secded_decode(corrupted, bits)
        assert result.corrected_bits == 1
        assert result.uncorrectable_codewords == 1
        # Codeword 2's flip is undone; codeword 0 stays corrupted.
        assert result.data[16:] == data[16:]
        assert result.data[:8] == corrupted[:8]
