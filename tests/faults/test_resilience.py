"""Controller resilience: ECC on reads, retry/retirement on writes,
and graceful containment of device-model errors."""

import typing

import pytest

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.controller.request import RequestStatus
from repro.faults.plan import FaultConfig
from repro.pram.errors import ProtocolError
from repro.sim import Simulator

ROW_BYTES = 32


def run_requests(subsystem: PramSubsystem,
                 requests: typing.Sequence[MemoryRequest],
                 concurrent: bool = False) -> None:
    """Drive ``requests`` to completion (serially unless asked)."""
    sim = subsystem.sim

    def driver() -> typing.Generator:
        if concurrent:
            yield sim.all_of([sim.process(subsystem.submit(request))
                              for request in requests])
        else:
            for request in requests:
                yield sim.process(subsystem.submit(request))

    process = sim.process(driver())
    sim.run()
    assert process.ok, process.value


def payload(tag: int) -> bytes:
    return bytes((tag * 13 + i) % 256 for i in range(ROW_BYTES))


class TestEccOnReads:
    def test_single_flip_corrected_and_reported(self):
        subsystem = PramSubsystem(
            Simulator(), faults=FaultConfig(read_flip_probability=1.0))
        write = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(1))
        read = MemoryRequest(Op.READ, 0, ROW_BYTES)
        run_requests(subsystem, [write, read])
        assert write.status is RequestStatus.OK
        assert read.status is RequestStatus.CORRECTED
        assert read.result == payload(1)  # corrected, not corrupted
        assert subsystem.faults is not None
        assert subsystem.faults.ecc_corrected_bits >= 1
        assert subsystem.faults.ecc_uncorrectable == 0
        assert subsystem.faults.requests_corrected == 1

    def test_double_flip_detected_and_degraded(self):
        subsystem = PramSubsystem(
            Simulator(),
            faults=FaultConfig(read_flip_probability=1.0,
                               read_double_flip_probability=1.0))
        write = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(2))
        read = MemoryRequest(Op.READ, 0, ROW_BYTES)
        run_requests(subsystem, [write, read])
        assert read.status is RequestStatus.DEGRADED
        assert read.error is not None and "uncorrectable" in read.error
        assert read.result is not None and read.result != payload(2)
        # Exactly one codeword (two bits) is corrupted.
        diff = [i for i in range(ROW_BYTES)
                if read.result[i] != payload(2)[i]]
        assert diff and all(index // 8 == diff[0] // 8 for index in diff)
        assert subsystem.faults is not None
        assert subsystem.faults.ecc_uncorrectable == 1
        assert subsystem.requests_degraded == 1

    def test_datapath_accounts_ecc(self):
        subsystem = PramSubsystem(
            Simulator(), faults=FaultConfig(read_flip_probability=1.0))
        write = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(3))
        read = MemoryRequest(Op.READ, 0, ROW_BYTES)
        run_requests(subsystem, [write, read])
        corrected = sum(channel.datapath.ecc_corrected_bits
                        for channel in subsystem.channels)
        assert corrected >= 1


class TestRetryAndRetirement:
    def test_wear_exhaustion_retires_row_and_preserves_data(self):
        subsystem = PramSubsystem(
            Simulator(),
            faults=FaultConfig(endurance_budget=2, max_program_retries=2,
                               spare_rows_per_partition=2))
        first = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(4))
        second = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(5))
        read = MemoryRequest(Op.READ, 0, ROW_BYTES)
        run_requests(subsystem, [first, second, read])
        faults = subsystem.faults
        assert faults is not None
        # The second write hits the endurance budget, burns its
        # retries, and lands on a spare row.
        assert first.status is RequestStatus.OK
        assert second.status is RequestStatus.OK
        assert faults.retry_attempts >= 1
        assert faults.retries_exhausted >= 1
        assert faults.rows_retired >= 1
        # Reads now follow the remap and see the new data.
        assert read.result == payload(5)
        assert subsystem.inspect(0, ROW_BYTES) == payload(5)

    def test_retry_uses_set_only_programs(self):
        subsystem = PramSubsystem(
            Simulator(),
            faults=FaultConfig(endurance_budget=2, max_program_retries=2,
                               spare_rows_per_partition=2))
        first = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(6))
        second = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(7))
        run_requests(subsystem, [first, second])
        retry_programs = sum(module.retry_programs
                             for channel in subsystem.modules
                             for module in channel)
        assert retry_programs >= 1

    def test_spare_exhaustion_fails_request_without_raising(self):
        subsystem = PramSubsystem(
            Simulator(),
            faults=FaultConfig(endurance_budget=1, max_program_retries=1,
                               spare_rows_per_partition=0))
        doomed = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(8))
        read = MemoryRequest(Op.READ, ROW_BYTES * 64, ROW_BYTES)
        run_requests(subsystem, [doomed, read])
        faults = subsystem.faults
        assert faults is not None
        assert doomed.status is RequestStatus.FAILED
        assert doomed.error is not None and "no spare" in doomed.error
        assert faults.retire_failures >= 1
        assert subsystem.requests_failed == 1
        # The subsystem keeps serving other requests.
        assert read.status is RequestStatus.OK
        assert read.result == bytes(ROW_BYTES)

    def test_zero_plan_reserves_no_spares(self):
        subsystem = PramSubsystem(
            Simulator(), faults=FaultConfig(read_flip_probability=0.5))
        for channel in subsystem.channels:
            assert channel._retirement is None


class TestSubmitContainment:
    """Device-model errors complete the request FAILED, not crash."""

    def test_protocol_error_contained_and_concurrent_request_ok(self):
        subsystem = PramSubsystem(Simulator())
        victim_module = subsystem.modules[0][0]

        def boom(*args: typing.Any, **kwargs: typing.Any) -> float:
            raise ProtocolError("injected device fault")

        victim_module.stage_program = boom  # type: ignore[method-assign]
        doomed = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(9))
        healthy = MemoryRequest(Op.READ, ROW_BYTES * 1024, ROW_BYTES)
        run_requests(subsystem, [doomed, healthy], concurrent=True)
        assert doomed.status is RequestStatus.FAILED
        assert doomed.error is not None
        assert "ProtocolError" in doomed.error
        assert doomed.result == b""
        assert healthy.status is RequestStatus.OK
        assert healthy.result == bytes(ROW_BYTES)
        assert subsystem.requests_failed == 1

    def test_failed_read_returns_zero_fill(self):
        subsystem = PramSubsystem(Simulator())
        victim_module = subsystem.modules[0][0]

        def boom(*args: typing.Any,
                 **kwargs: typing.Any) -> typing.Tuple[float, bytes]:
            raise ProtocolError("injected read fault")

        victim_module.read_burst = boom  # type: ignore[method-assign]
        doomed = MemoryRequest(Op.READ, 0, ROW_BYTES)
        run_requests(subsystem, [doomed])
        assert doomed.status is RequestStatus.FAILED
        assert doomed.result == bytes(ROW_BYTES)

    def test_done_event_still_fires_on_failure(self):
        sim = Simulator()
        subsystem = PramSubsystem(sim)
        victim_module = subsystem.modules[0][0]

        def boom(*args: typing.Any, **kwargs: typing.Any) -> float:
            raise ProtocolError("injected")

        victim_module.stage_program = boom  # type: ignore[method-assign]
        doomed = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(10),
                               done=sim.event())
        seen = {}

        def waiter() -> typing.Generator:
            seen["result"] = yield doomed.done

        sim.process(subsystem.submit(doomed))
        process = sim.process(waiter())
        sim.run()
        assert process.ok
        assert seen["result"] == b""


class TestStallInjection:
    def test_stalls_slow_the_run_deterministically(self):
        def total_ns(faults: typing.Optional[FaultConfig]) -> float:
            sim = Simulator()
            subsystem = PramSubsystem(sim, faults=faults)
            requests = [
                MemoryRequest(Op.WRITE, i * ROW_BYTES, ROW_BYTES,
                              data=payload(i))
                for i in range(8)
            ]
            run_requests(subsystem, requests)
            return sim.now

        stall_plan = FaultConfig(partition_stall_probability=1.0,
                                 partition_stall_ns=500.0)
        baseline = total_ns(None)
        stalled = total_ns(stall_plan)
        assert stalled > baseline
        assert total_ns(stall_plan) == stalled

    def test_requests_complete_despite_stalls(self):
        subsystem = PramSubsystem(
            Simulator(),
            faults=FaultConfig(partition_stall_probability=0.5,
                               partition_stall_ns=250.0, seed=11))
        write = MemoryRequest(Op.WRITE, 0, ROW_BYTES, data=payload(12))
        read = MemoryRequest(Op.READ, 0, ROW_BYTES)
        run_requests(subsystem, [write, read])
        assert read.result == payload(12)
        assert write.status is RequestStatus.OK


class TestValidationAtConstruction:
    def test_bad_plan_fails_before_any_simulation(self):
        with pytest.raises(ValueError, match="read_flip_probability"):
            PramSubsystem(Simulator(),
                          faults=FaultConfig(read_flip_probability=2.0))
