"""Reproducibility of faulted runs and null-plan byte-identity."""

import dataclasses

import pytest

from repro.experiments import fig13_schedulers, reliability, runner
from repro.experiments.cli import main
from repro.faults.plan import FaultConfig

QUICK = runner.ExperimentConfig(scale=0.05, agents=3,
                                workloads=("gemver", "doitg"))

PLAN = ("seed=7,program_fail=0.05,endurance=24,wear_factor=0.5,"
        "read_flip=0.002,spares=4")


@pytest.mark.determinism
def test_faulted_replay_is_deterministic():
    # The plugin runs this twice and diffs the kernel event traces.
    bundle = QUICK.bundle("doitg")
    reliability.replay(bundle, FaultConfig.parse(PLAN))


def test_repeated_replays_are_identical():
    bundle = QUICK.bundle("doitg")
    plan = FaultConfig.parse(PLAN)
    assert reliability.replay(bundle, plan) == reliability.replay(
        bundle, plan)


def test_endurance_experiment_repeats_identically():
    config = dataclasses.replace(QUICK, workloads=("doitg",), faults=PLAN)
    first = reliability.run(config)
    second = reliability.run(config)
    assert first == second
    assert reliability.report(first) == reliability.report(second)


@pytest.mark.determinism
def test_cli_faulted_results_serial_vs_sharded(tmp_path, monkeypatch,
                                              capsys):
    monkeypatch.setenv("REPRO_GIT_SHA", "0000test")
    monkeypatch.setenv("REPRO_TIMESTAMP", "2026-01-01T00:00:00")
    serial_dir = tmp_path / "serial"
    sharded_dir = tmp_path / "sharded"
    assert main(["endurance", "--quick", "--faults", PLAN,
                 "--results", str(serial_dir)]) == 0
    assert main(["endurance", "--quick", "--faults", PLAN, "--jobs", "2",
                 "--results", str(sharded_dir)]) == 0
    capsys.readouterr()
    name = "endurance_reliability.txt"
    serial = (serial_dir / name).read_bytes()
    assert serial
    assert (sharded_dir / name).read_bytes() == serial


def test_cli_rejects_bad_fault_plan(capsys):
    assert main(["endurance", "--quick", "--faults", "read_flip=lots"]) == 2
    err = capsys.readouterr().err
    assert "invalid --faults plan" in err
    assert "read_flip_probability" in err


class TestNullPlanIdentity:
    """A plan that cannot fire leaves everything byte-identical."""

    def test_zero_plan_matches_no_plan_results(self):
        config = dataclasses.replace(QUICK, workloads=("doitg",))
        zero = dataclasses.replace(config, faults="seed=9")
        plain = fig13_schedulers.run(config)
        zeroed = fig13_schedulers.run(zero)
        assert zeroed == plain
        assert (fig13_schedulers.report(zeroed)
                == fig13_schedulers.report(plain))

    def test_zero_plan_matches_no_plan_replay(self):
        bundle = QUICK.bundle("doitg")
        assert (reliability.replay(bundle, FaultConfig(seed=9))
                == reliability.replay(bundle, None))

    def test_null_plan_flags(self):
        zero = FaultConfig(seed=9)
        assert zero.is_null
        assert not zero.can_fail_programs
