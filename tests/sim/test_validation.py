"""Input validation on the kernel's scheduling entry points."""

import pytest

from repro.sim import Event, Simulator


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="negative"):
        sim.timeout(-1.0)


def test_nan_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="NaN"):
        sim.timeout(float("nan"))


def test_zero_timeout_is_fine():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(0.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [0.0]


def test_schedule_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError, match="negative"):
        sim._schedule(-5.0, Event(sim))


def test_schedule_rejects_nan_delay():
    sim = Simulator()
    with pytest.raises(ValueError, match="NaN"):
        sim._schedule(float("nan"), Event(sim))


def test_run_rejects_nan_until():
    sim = Simulator()
    with pytest.raises(ValueError, match="NaN"):
        sim.run(until=float("nan"))


def test_validation_leaves_clock_untouched():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)
    assert sim.now == 0.0

    def proc():
        yield sim.timeout(3.0)

    sim.process(proc())
    sim.run()
    assert sim.now == 3.0
