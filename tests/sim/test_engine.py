"""Tests for the discrete-event kernel: clock, ordering, run bounds."""

import pytest

from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(10.0)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [10.0]
    assert sim.now == 10.0


def test_events_fire_in_time_order():
    sim = Simulator()
    log = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        log.append(tag)

    sim.process(proc(30.0, "c"))
    sim.process(proc(10.0, "a"))
    sim.process(proc(20.0, "b"))
    sim.run()
    assert log == ["a", "b", "c"]


def test_ties_break_in_fifo_schedule_order():
    sim = Simulator()
    log = []

    def proc(tag):
        yield sim.timeout(5.0)
        log.append(tag)

    for tag in ("first", "second", "third"):
        sim.process(proc(tag))
    sim.run()
    assert log == ["first", "second", "third"]


def test_run_until_stops_the_clock_exactly():
    sim = Simulator()

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run(until=40.0)
    assert sim.now == 40.0
    sim.run()
    assert sim.now == 100.0


def test_run_until_in_the_past_is_an_error():
    sim = Simulator()

    def proc():
        yield sim.timeout(50.0)

    sim.process(proc())
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=10.0)


def test_step_on_empty_heap_raises():
    with pytest.raises(RuntimeError):
        Simulator().step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(25.0)
    assert sim.peek() == 25.0


def test_peek_on_empty_heap_is_infinite():
    assert Simulator().peek() == float("inf")


def test_nested_processes_join():
    sim = Simulator()

    def child():
        yield sim.timeout(7.0)
        return 42

    def parent():
        result = yield sim.process(child())
        assert result == 42
        return sim.now

    proc = sim.process(parent())
    sim.run()
    assert proc.value == 7.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_zero_timeout_runs_same_instant():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(0.0)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [0.0]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    finished = []

    def proc():
        timeouts = [sim.timeout(t) for t in (5.0, 15.0, 10.0)]
        yield sim.all_of(timeouts)
        finished.append(sim.now)

    sim.process(proc())
    sim.run()
    assert finished == [15.0]


def test_any_of_waits_for_first_event():
    sim = Simulator()
    finished = []

    def proc():
        timeouts = [sim.timeout(t) for t in (5.0, 15.0, 10.0)]
        yield sim.any_of(timeouts)
        finished.append(sim.now)

    sim.process(proc())
    sim.run()
    assert finished == [5.0]


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    def parent():
        with pytest.raises(RuntimeError, match="boom"):
            yield sim.process(child())
        return "handled"

    proc = sim.process(parent())
    sim.run()
    assert proc.value == "handled"


def test_yielding_non_event_raises_inside_process():
    sim = Simulator()

    def proc():
        with pytest.raises(TypeError):
            yield "not an event"
        return "ok"

    result = sim.process(proc())
    sim.run()
    assert result.value == "ok"


def test_event_succeed_delivers_value():
    sim = Simulator()
    gate = sim.event("gate")
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open sesame")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert seen == ["open sesame"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    gate = sim.event()
    gate.succeed()
    with pytest.raises(RuntimeError):
        gate.succeed()


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_yield_already_processed_event_resumes():
    sim = Simulator()
    log = []

    def proc():
        t = sim.timeout(1.0, value="past")
        yield sim.timeout(5.0)
        value = yield t  # t fired at t=1, long processed
        log.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert log == [(5.0, "past")]


def test_interrupt_wakes_a_sleeping_process():
    from repro.sim import Interrupt

    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(target):
        yield sim.timeout(10.0)
        target.interrupt("wake up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(10.0, "wake up")]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_process_requires_generator():
    from repro.sim import Process

    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, "not a generator")
