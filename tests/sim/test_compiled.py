"""Compiled-backend identity and fallback coverage.

Two obligations gate the second execution backend:

* **Byte identity** — for any homogeneous stream inside the certified
  envelope, the compiled kernel must leave every observable (request
  statuses and times, channel counters, latency-sketch payloads, module
  state, ``sim.now``) exactly as the interpreted engine would — on the
  numpy tier *and* the pure-stdlib tier.  Property-tested over random
  streams.
* **Honest fallbacks** — every unsupported configuration or stream
  shape must fall back to the interpreted engine with a recorded
  reason, never silently produce compiled results outside the envelope.
  Covered per reason, subsystem-level and stream-level.
"""

import os

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.analysis.conformance import ProtocolChecker
from repro.controller import (
    FirmwareModel,
    MemoryRequest,
    Op,
    PramSubsystem,
    SchedulerPolicy,
)
from repro.controller.request import reset_request_ids
from repro.faults.plan import FaultConfig
from repro.sim import (
    KernelSanitizer,
    Simulator,
    backend_decisions,
    clear_backend_decisions,
    use_backend,
    use_sampling,
)
from repro.sim.compiled import (
    stream_fallback_reasons,
    subsystem_fallback_reasons,
)
from repro.sim.hostprof import use_hostprof
from repro.telemetry.hostprof import HostProfiler
from repro.telemetry.metrics import MetricsRegistry, use_metrics
from repro.telemetry.timeseries import SamplingConfig
from repro.telemetry.tracer import RecordingTracer


# ----------------------------------------------------------------------
# Byte identity
# ----------------------------------------------------------------------
def _sketch(sketch):
    # The full serialized form, not just the buckets: the BENCH
    # percentiles read every one of these fields.
    return repr(sketch.to_payload())


def _snapshot(sim, subsystem, requests):
    """Every observable a run can touch, as comparable plain data."""
    state = {
        "now": sim.now,
        "completed": subsystem.requests_completed,
        "requests": [(r.submit_time, r.complete_time, r.status.value,
                      r.result) for r in requests],
        "sketches": {op: _sketch(s)
                     for op, s in subsystem.latency_sketches.items()},
    }
    for ci, channel in enumerate(subsystem.channels):
        state[f"ch{ci}"] = (
            tuple(channel.read_latency.samples),
            tuple(channel.write_latency.samples),
            _sketch(channel.read_sketch),
            _sketch(channel.write_sketch),
            channel.bus_busy_ns,
            channel.chunks_read,
            channel.chunks_written,
            dict(channel.phase_skips),
            channel.rab_hits,
            channel.rdb_hits,
            channel.overlap_ns,
            channel.phy.packets_sent,
        )
        for mi, module in enumerate(channel.modules):
            state[f"ch{ci}.m{mi}"] = (
                module.reads,
                module.programs,
                list(module._partition_busy_until),
                [(pair.upper_row, pair.rab_valid, pair.partition,
                  pair.row, pair.rdb_valid, pair.last_use, pair.data)
                 for pair in module.buffers._pairs],
                sorted(module._storage),
            )
    return state


def _run_stream(op, size, addresses, mode, backend):
    reset_request_ids()
    sim = Simulator()
    subsystem = PramSubsystem(sim)
    requests = [
        MemoryRequest(op, address, size,
                      data=(bytes((index + offset) % 251
                                  for offset in range(size))
                            if op is Op.WRITE else None))
        for index, address in enumerate(addresses)
    ]
    decision = subsystem.run_stream(requests, mode=mode, backend=backend)
    return _snapshot(sim, subsystem, requests), decision


@st.composite
def homogeneous_streams(draw):
    op = draw(st.sampled_from([Op.READ, Op.WRITE]))
    size = draw(st.sampled_from([32, 64, 96, 128, 512]))
    count = draw(st.integers(min_value=1, max_value=6))
    addresses = draw(st.lists(st.integers(0, 1 << 16),
                              min_size=count, max_size=count))
    mode = draw(st.sampled_from(["open", "closed"]))
    return op, size, addresses, mode


@given(homogeneous_streams())
# Regression: unaligned closed writes straddle a row boundary, and the
# straddling chunk lands on the module still programming the previous
# request — its latency sample must land in completion order, not
# chunk order, or the order-sensitive accumulators diverge.
@example((Op.WRITE, 32, [0, 1], "closed"))
@settings(max_examples=30, deadline=None)
def test_compiled_matches_interpreted(stream):
    """Three-way identity: interpreted == compiled-numpy == compiled-stdlib.

    The fallback path keeps the property trivially true for ineligible
    draws (same engine runs), so eligible shapes — closed uniform reads
    under the default config are always inside the envelope — also
    assert the kernel actually engaged, pinning real coverage.
    """
    op, size, addresses, mode = stream
    interpreted, _ = _run_stream(op, size, addresses, mode, "interpreted")
    saved = os.environ.pop("REPRO_NO_NUMPY", None)
    try:
        numpy_state, decision = _run_stream(op, size, addresses, mode,
                                            "compiled")
        os.environ["REPRO_NO_NUMPY"] = "1"
        stdlib_state, stdlib_decision = _run_stream(
            op, size, addresses, mode, "compiled")
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_NUMPY", None)
        else:
            os.environ["REPRO_NO_NUMPY"] = saved
    assert numpy_state == interpreted
    assert stdlib_state == interpreted
    assert stdlib_decision.used == decision.used
    if op is Op.READ and mode == "closed":
        assert decision.compiled, decision.reasons


# ----------------------------------------------------------------------
# Subsystem-level fallback reasons
# ----------------------------------------------------------------------
def _expect_subsystem_reason(subsystem, fragment):
    reasons = subsystem_fallback_reasons(subsystem)
    assert any(fragment in reason for reason in reasons), reasons


def test_fallback_uncertified_scheduler():
    subsystem = PramSubsystem(Simulator(),
                              policy=SchedulerPolicy.SELECTIVE_ERASE)
    _expect_subsystem_reason(subsystem, "not certified")


def test_fallback_firmware():
    sim = Simulator()
    subsystem = PramSubsystem(sim, firmware=FirmwareModel(sim))
    _expect_subsystem_reason(subsystem, "firmware model attached")


def test_fallback_fault_plan():
    subsystem = PramSubsystem(
        Simulator(), faults=FaultConfig.parse("seed=7,read_flip=0.001"))
    _expect_subsystem_reason(subsystem, "fault plan attached")


def test_fallback_protocol_monitor():
    subsystem = PramSubsystem(Simulator(),
                              monitor=ProtocolChecker(record=True))
    _expect_subsystem_reason(subsystem, "protocol monitor attached")


def test_fallback_wear_leveling():
    subsystem = PramSubsystem(Simulator(), wear_leveling=True)
    _expect_subsystem_reason(subsystem, "wear leveling enabled")


def test_fallback_write_pausing():
    subsystem = PramSubsystem(Simulator(), write_pausing=True)
    _expect_subsystem_reason(subsystem, "write pausing enabled")


def test_fallback_tracer():
    subsystem = PramSubsystem(Simulator(tracer=RecordingTracer()))
    _expect_subsystem_reason(subsystem, "tracer attached")


def test_fallback_sanitizer():
    subsystem = PramSubsystem(Simulator(sanitizer=KernelSanitizer()))
    _expect_subsystem_reason(subsystem, "sanitizer attached")


def test_fallback_tiebreak_seed():
    subsystem = PramSubsystem(Simulator(tiebreak_seed=7))
    _expect_subsystem_reason(subsystem, "tie-break shuffle seed set")


def test_fallback_sampler():
    with use_metrics(MetricsRegistry()), use_sampling(SamplingConfig()):
        subsystem = PramSubsystem(Simulator())
    _expect_subsystem_reason(subsystem, "sampler attached")


def test_fallback_host_profiler():
    with use_hostprof(HostProfiler()):
        subsystem = PramSubsystem(Simulator())
    _expect_subsystem_reason(subsystem, "host profiler attached")


def test_frozen_default_config_has_no_subsystem_reasons():
    assert subsystem_fallback_reasons(PramSubsystem(Simulator())) == []


# ----------------------------------------------------------------------
# Stream-level fallback reasons
# ----------------------------------------------------------------------
def _expect_stream_reason(requests, mode, fragment, subsystem=None):
    subsystem = subsystem or PramSubsystem(Simulator())
    reasons = stream_fallback_reasons(subsystem, requests, mode)
    assert any(fragment in reason for reason in reasons), reasons


def test_fallback_mixed_operations():
    _expect_stream_reason(
        [MemoryRequest(Op.READ, 0, 32),
         MemoryRequest(Op.WRITE, 512, 32, data=bytes(32))],
        "closed", "mixed-operation stream")


def test_fallback_mixed_sizes():
    _expect_stream_reason(
        [MemoryRequest(Op.READ, 0, 32), MemoryRequest(Op.READ, 512, 64)],
        "closed", "mixed request sizes")


def test_fallback_completion_event():
    sim = Simulator()
    subsystem = PramSubsystem(sim)
    _expect_stream_reason(
        [MemoryRequest(Op.READ, 0, 32, done=sim.event())],
        "closed", "completion event", subsystem=subsystem)


def test_fallback_open_write_stream():
    _expect_stream_reason(
        [MemoryRequest(Op.WRITE, 0, 32, data=bytes(32))],
        "open", "open-loop write stream")


def test_fallback_write_module_reuse():
    # 2048 B = 64 chunks > the 32-position (module, channel) rotation:
    # some module sees this write twice, which serializes on the RAB.
    _expect_stream_reason(
        [MemoryRequest(Op.WRITE, 0, 2048, data=bytes(2048))],
        "closed", "re-uses a module")


def test_fallback_read_concurrency_excess():
    # 8192 B = 256 chunks > 4 buffer pairs x 32 rotation positions.
    _expect_stream_reason([MemoryRequest(Op.READ, 0, 8192)],
                          "closed", "buffer pairs")


def test_fallback_pooled_open_wave_excess():
    # Open interleaved reads pool into one wave: 8 requests x 16 chunks
    # on the same positions exceed the 4 pairs even though each request
    # alone is fine.
    requests = [MemoryRequest(Op.READ, index * (1 << 14), 512)
                for index in range(8)]
    _expect_stream_reason(requests, "open", "buffer pairs")


def test_fallback_multi_channel_under_metrics():
    with use_metrics(MetricsRegistry()):
        subsystem = PramSubsystem(Simulator())
    # 1024 B spans both channels' module blocks; the shared overlap
    # counter would accumulate in a different float order.
    _expect_stream_reason([MemoryRequest(Op.READ, 0, 1024)],
                          "closed", "metrics registry",
                          subsystem=subsystem)


def test_eligible_stream_has_no_reasons():
    subsystem = PramSubsystem(Simulator())
    requests = [MemoryRequest(Op.READ, index * 512, 512)
                for index in range(4)]
    assert stream_fallback_reasons(subsystem, requests, "closed") == []


# ----------------------------------------------------------------------
# Decision recording
# ----------------------------------------------------------------------
def test_fallback_decision_recorded_end_to_end():
    clear_backend_decisions()
    sim = Simulator()
    subsystem = PramSubsystem(sim,
                              policy=SchedulerPolicy.SELECTIVE_ERASE)
    with use_backend("compiled"):
        decision = subsystem.run_stream([MemoryRequest(Op.READ, 0, 32)],
                                        mode="closed")
    assert decision.requested == "compiled"
    assert decision.used == "interpreted"
    assert decision.reasons
    assert backend_decisions()[-1] == decision
    clear_backend_decisions()
