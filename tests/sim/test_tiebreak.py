"""FIFO tie-break invariant and the seeded same-timestamp shuffle."""

import pytest

from repro.sim import KernelSanitizer, Simulator, use_tiebreak


def _record_order(sim, order, count, delay=10.0):
    """Spawn ``count`` processes that all wake at ``delay``."""
    def body(index):
        yield sim.timeout(delay)
        order.append(index)

    for index in range(count):
        sim.process(body(index), name=f"p{index}")


def test_fast_drain_preserves_fifo_schedule_order():
    sim = Simulator()
    order = []
    _record_order(sim, order, 8)
    sim.run()
    assert order == list(range(8))


def test_step_loop_matches_fast_drain_order():
    # The instrumented (sanitized) path uses step(); same-timestamp
    # ordering must be identical to the batched fast drain.
    sim = Simulator(sanitizer=KernelSanitizer())
    order = []
    _record_order(sim, order, 8)
    sim.run()
    assert order == list(range(8))


def test_events_scheduled_mid_batch_stay_fifo():
    sim = Simulator()
    order = []

    def parent(index):
        yield sim.timeout(10.0)
        order.append(("parent", index))
        sim.process(child(index))

    def child(index):
        order.append(("child-start", index))
        yield sim.timeout(0.0)
        order.append(("child", index))

    sim.process(parent(0))
    sim.process(parent(1))
    sim.run()
    # Children bootstrap at the same instant but after both parents,
    # in the order the parents spawned them.
    assert order == [
        ("parent", 0), ("parent", 1),
        ("child-start", 0), ("child-start", 1),
        ("child", 0), ("child", 1),
    ]


def test_shuffled_drain_is_deterministic_per_seed():
    def run(seed):
        sim = Simulator(tiebreak_seed=seed)
        order = []
        _record_order(sim, order, 8)
        sim.run()
        return order

    assert run(3) == run(3)
    assert sorted(run(3)) == list(range(8))


def test_some_seed_permutes_the_batch():
    def run(seed):
        sim = Simulator(tiebreak_seed=seed)
        order = []
        _record_order(sim, order, 8)
        sim.run()
        return order

    fifo = list(range(8))
    assert any(run(seed) != fifo for seed in range(1, 6)), (
        "five seeded shuffles of an 8-event batch never permuted it")


def test_shuffle_respects_timestamp_ordering():
    sim = Simulator(tiebreak_seed=1)
    order = []

    def body(index, delay):
        yield sim.timeout(delay)
        order.append((delay, index))

    for index in range(4):
        sim.process(body(index, 10.0))
    for index in range(4):
        sim.process(body(index, 20.0))
    sim.run()
    delays = [delay for delay, _ in order]
    assert delays == sorted(delays)
    assert sim.now == 20.0


def test_shuffled_run_honours_until():
    sim = Simulator(tiebreak_seed=2)
    order = []

    def body(index, delay):
        yield sim.timeout(delay)
        order.append(index)

    sim.process(body(0, 10.0))
    sim.process(body(1, 30.0))
    sim.run(until=20.0)
    assert order == [0]
    assert sim.now == 20.0


def test_ambient_tiebreak_seed_binds_new_simulators():
    def run():
        sim = Simulator()
        order = []
        _record_order(sim, order, 8)
        sim.run()
        return order

    with use_tiebreak(4):
        shuffled = run()
    assert sorted(shuffled) == list(range(8))
    assert run() == list(range(8))  # seed does not leak past the context


def test_explicit_seed_wins_over_ambient():
    def run(**kwargs):
        sim = Simulator(**kwargs)
        order = []
        _record_order(sim, order, 8)
        sim.run()
        return order

    with use_tiebreak(4):
        explicit = run(tiebreak_seed=9)
    assert explicit == run(tiebreak_seed=9)


@pytest.mark.tiebreak_shuffle(runs=3)
def test_commutative_model_survives_shuffle_marker():
    # The marker re-runs this body under three seeded shuffles; an
    # order-dependent model would fail one of them.
    sim = Simulator()
    total = {"value": 0}

    def adder(amount):
        yield sim.timeout(5.0)
        total["value"] += amount

    for amount in (1, 2, 4, 8):
        sim.process(adder(amount))
    sim.run()
    assert total["value"] == 15
    assert sim.now == 5.0
