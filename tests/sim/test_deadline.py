"""Absolute-time deadline timers on the simulator."""

import pytest

from repro.sim import Simulator


def test_deadline_fires_at_the_absolute_instant():
    sim = Simulator()
    seen = []

    def process():
        yield sim.timeout(10.0)
        yield sim.deadline(25.0)
        seen.append(sim.now)

    sim.process(process())
    sim.run()
    assert seen == [25.0]


def test_deadline_at_current_instant_fires_immediately():
    sim = Simulator()
    seen = []

    def process():
        yield sim.timeout(5.0)
        yield sim.deadline(5.0)
        seen.append(sim.now)

    sim.process(process())
    sim.run()
    assert seen == [5.0]


def test_deadline_carries_a_value():
    sim = Simulator()
    seen = []

    def process():
        seen.append((yield sim.deadline(3.0, "payload")))

    sim.process(process())
    sim.run()
    assert seen == ["payload"]


def test_deadline_in_the_past_is_rejected():
    sim = Simulator()

    def process():
        yield sim.timeout(10.0)
        sim.deadline(9.0)

    done = sim.process(process())
    sim.run()
    assert not done.ok
    with pytest.raises(ValueError, match="already"):
        raise done.value


def test_deadline_at_nan_is_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="NaN"):
        sim.deadline(float("nan"))
