"""Engine-driven window sampling: hook wiring and window semantics."""

import pytest

from repro.sim import Simulator, use_sampling
from repro.sim.sampling import SamplerHook, current_sampling
from repro.telemetry.metrics import MetricsRegistry, use_metrics
from repro.telemetry.timeseries import Sampler, SamplingConfig


def _sampler(window_ns=10.0, retention=None):
    registry = MetricsRegistry()
    return Sampler(registry, window_ns, retention), registry


class TestAmbientProvider:
    def test_default_is_none(self):
        assert current_sampling() is None
        assert Simulator().sampler is None

    def test_scope_installs_and_restores(self):
        config = SamplingConfig(window_ns=50.0)
        with use_sampling(config):
            assert current_sampling() is config
        assert current_sampling() is None

    def test_no_registry_means_no_sampler(self):
        # Sampling without metrics costs nothing: the provider declines.
        with use_sampling(SamplingConfig()):
            assert Simulator().sampler is None

    def test_registry_plus_scope_mints_one_sampler_per_simulator(self):
        registry = MetricsRegistry()
        with use_metrics(registry), use_sampling(SamplingConfig()):
            first, second = Simulator(), Simulator()
        assert isinstance(first.sampler, Sampler)
        assert isinstance(second.sampler, Sampler)
        assert first.sampler is not second.sampler

    def test_explicit_sampler_wins_over_ambient(self):
        sampler, _ = _sampler()
        with use_metrics(MetricsRegistry()), use_sampling(SamplingConfig()):
            assert Simulator(sampler=sampler).sampler is sampler

    def test_base_hook_advance_is_a_no_op(self):
        SamplerHook().advance(123.0)  # must not raise

    def test_config_validates_window(self):
        with pytest.raises(ValueError):
            SamplingConfig(window_ns=0.0)
        with pytest.raises(ValueError):
            Sampler(MetricsRegistry(), window_ns=float("inf"))
        with pytest.raises(ValueError):
            Sampler(MetricsRegistry(), window_ns=10.0, retention=0)

    def test_config_spec_is_hashable_identity(self):
        assert SamplingConfig(250.0, 8).spec() == (250.0, 8)
        assert hash(SamplingConfig(250.0).spec())


class TestWindowSemantics:
    def test_duty_cycle_means(self):
        # Level 1 for 7 ns then 0 for 3 ns, each 10 ns window -> 0.7.
        sampler, registry = _sampler(window_ns=10.0)
        sim = Simulator(sampler=sampler)
        tracker = sampler.track("q.depth")

        def duty():
            for _ in range(3):
                tracker.adjust(sim.now, 1.0)
                yield sim.timeout(7.0)
                tracker.adjust(sim.now, -1.0)
                yield sim.timeout(3.0)

        sim.process(duty())
        sim.run()
        # The run ends exactly on the t=30 boundary, closing all three.
        series = registry.series("q.depth")
        assert series.times == [0.0, 10.0, 20.0]
        assert series.values == pytest.approx([0.7, 0.7, 0.7])

    def test_boundary_instant_update_belongs_to_next_window(self):
        # The engine advances the sampler *before* events at an instant
        # run, so a level change at exactly t=10 cannot leak into the
        # [0, 10) window.
        sampler, registry = _sampler(window_ns=10.0)
        sim = Simulator(sampler=sampler)
        tracker = sampler.track("q.depth")

        def jump():
            yield sim.timeout(10.0)
            tracker.set_level(sim.now, 5.0)
            yield sim.timeout(10.0)

        sim.process(jump())
        sim.run()
        series = registry.series("q.depth")
        assert series.times == [0.0, 10.0]
        assert series.values == pytest.approx([0.0, 5.0])

    def test_partial_final_window_is_dropped(self):
        sampler, registry = _sampler(window_ns=10.0)
        sim = Simulator(sampler=sampler)
        tracker = sampler.track("q.depth")

        def run():
            tracker.set_level(sim.now, 1.0)
            yield sim.timeout(25.0)  # ends mid-window

        sim.process(run())
        sim.run()
        # [0,10) and [10,20) close; [20,25) would skew the plot.
        assert registry.series("q.depth").times == [0.0, 10.0]

    def test_run_until_flushes_trailing_windows(self):
        sampler, registry = _sampler(window_ns=10.0)
        sim = Simulator(sampler=sampler)
        tracker = sampler.track("q.depth")

        def run():
            tracker.set_level(sim.now, 2.0)
            yield sim.timeout(5.0)  # last event at t=5

        sim.process(run())
        sim.run(until=30.0)
        series = registry.series("q.depth")
        assert series.times == [0.0, 10.0, 20.0]
        assert series.values == pytest.approx([2.0, 2.0, 2.0])

    def test_watch_gauge_samples_at_boundaries(self):
        sampler, registry = _sampler(window_ns=10.0)
        sim = Simulator(sampler=sampler)
        depth = {"value": 0.0}
        sampler.watch_gauge("hints", lambda: depth["value"])

        def run():
            yield sim.timeout(15.0)
            depth["value"] = 4.0
            yield sim.timeout(15.0)

        sim.process(run())
        sim.run()
        series = registry.series("hints")
        # Boundary at 10 reads 0.0 (set happens at 15); 20 and 30, 4.0.
        assert series.times == [0.0, 10.0, 20.0]
        assert series.values == [0.0, 4.0, 4.0]

    def test_retention_keeps_only_the_most_recent_windows(self):
        sampler, registry = _sampler(window_ns=10.0, retention=3)
        sim = Simulator(sampler=sampler)
        tracker = sampler.track("q.depth")

        def run():
            for level in range(10):
                tracker.set_level(sim.now, float(level))
                yield sim.timeout(10.0)

        sim.process(run())
        sim.run()
        series = registry.series("q.depth")
        assert len(series.times) == 3
        assert series.times == [70.0, 80.0, 90.0]
        assert series.values == pytest.approx([7.0, 8.0, 9.0])

    def test_no_drift_over_many_windows(self):
        # Boundaries come from an integer index, not repeated addition:
        # after 10k windows of 0.1 ns the boundary is still exact.
        sampler, registry = _sampler(window_ns=0.1)
        sim = Simulator(sampler=sampler)
        sampler.track("q.depth")

        def run():
            yield sim.timeout(1000.0)

        sim.process(run())
        sim.run()
        series = registry.series("q.depth")
        assert series.times[-1] == pytest.approx(9999 * 0.1)

    def test_shuffled_drain_samples_identically(self):
        def trace(tiebreak_seed):
            sampler, registry = _sampler(window_ns=10.0)
            sim = Simulator(sampler=sampler,
                            tiebreak_seed=tiebreak_seed)
            tracker = sampler.track("q.depth")

            def agent(delay):
                yield sim.timeout(delay)
                tracker.adjust(sim.now, 1.0)
                yield sim.timeout(12.0)
                tracker.adjust(sim.now, -1.0)

            for _ in range(4):  # four agents, same timestamps
                sim.process(agent(4.0))
            sim.run()
            series = registry.series("q.depth")
            return (list(series.times), list(series.values))

        fifo = trace(None)
        assert trace(7) == fifo
        assert trace(1234) == fifo
