"""Tests for the statistics containers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Breakdown, Counter, Histogram, LatencySketch, TimeSeries
from repro.sim.stats import DEFAULT_SKETCH_LAYOUT, SketchLayout


class TestCounter:
    def test_add_accumulates(self):
        counter = Counter("bytes")
        counter.add(10)
        counter.add(5)
        assert counter.value == 15
        assert counter.events == 2

    def test_mean(self):
        counter = Counter()
        counter.add(4)
        counter.add(8)
        assert counter.mean == 6

    def test_mean_of_empty_is_zero(self):
        assert Counter().mean == 0.0


class TestBreakdown:
    def test_add_and_total(self):
        bd = Breakdown("time")
        bd.add("compute", 30.0)
        bd.add("storage", 70.0)
        bd.add("compute", 10.0)
        assert bd.get("compute") == 40.0
        assert bd.total == 110.0

    def test_missing_category_reads_zero(self):
        assert Breakdown().get("nope") == 0.0

    def test_fractions_normalize(self):
        bd = Breakdown()
        bd.add("a", 1.0)
        bd.add("b", 3.0)
        fractions = bd.fractions()
        assert fractions["a"] == pytest.approx(0.25)
        assert fractions["b"] == pytest.approx(0.75)

    def test_fractions_of_empty_breakdown(self):
        assert Breakdown().fractions() == {}

    def test_merge(self):
        left, right = Breakdown(), Breakdown()
        left.add("x", 1.0)
        right.add("x", 2.0)
        right.add("y", 5.0)
        left.merge(right)
        assert left.get("x") == 3.0
        assert left.get("y") == 5.0

    def test_scaled_returns_new_breakdown(self):
        bd = Breakdown()
        bd.add("a", 2.0)
        doubled = bd.scaled(2.0)
        assert doubled.get("a") == 4.0
        assert bd.get("a") == 2.0

    def test_categories_preserve_insertion_order(self):
        bd = Breakdown()
        for cat in ("z", "a", "m"):
            bd.add(cat, 1.0)
        assert bd.categories == ("z", "a", "m")


class TestTimeSeries:
    def test_value_at_is_a_step_function(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(10.0, 3.0)
        assert ts.value_at(-1.0) == 0.0
        assert ts.value_at(0.0) == 1.0
        assert ts.value_at(9.999) == 1.0
        assert ts.value_at(10.0) == 3.0
        assert ts.value_at(100.0) == 3.0

    def test_record_rejects_time_travel(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 2.0)

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.record(0.0, 2.0)
        ts.record(5.0, 4.0)
        # [0,5): 2, [5,10): 4 -> mean 3
        assert ts.time_weighted_mean(0.0, 10.0) == pytest.approx(3.0)

    def test_time_weighted_mean_empty_interval_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().time_weighted_mean(5.0, 5.0)

    def test_integral(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        assert ts.integral(0.0, 8.0) == pytest.approx(8.0)
        assert ts.integral(8.0, 8.0) == 0.0

    def test_resample_buckets(self):
        ts = TimeSeries()
        ts.record(0.0, 0.0)
        ts.record(50.0, 10.0)
        buckets = ts.resample(0.0, 100.0, 2)
        assert buckets[0] == (25.0, pytest.approx(0.0))
        assert buckets[1] == (75.0, pytest.approx(10.0))

    def test_resample_needs_a_bucket(self):
        with pytest.raises(ValueError):
            TimeSeries().resample(0.0, 1.0, 0)


class TestHistogram:
    def test_mean_min_max(self):
        hist = Histogram()
        for v in (1.0, 3.0, 2.0):
            hist.add(v)
        assert hist.mean == pytest.approx(2.0)
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0

    def test_empty_histogram_stats(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert math.isnan(hist.minimum)
        assert math.isnan(hist.maximum)

    def test_percentile_nearest_rank(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.add(float(v))
        assert hist.percentile(0.5) == 50.0
        assert hist.percentile(0.99) == 99.0
        assert hist.percentile(1.0) == 100.0
        assert hist.percentile(0.0) == 1.0

    def test_percentile_validates_inputs(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(0.5)
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_unsorted_inserts_still_sort(self):
        hist = Histogram()
        for v in (9.0, 1.0, 5.0):
            hist.add(v)
        assert hist.percentile(0.0) == 1.0
        assert len(hist) == 3

    def test_equal_then_smaller_inserts_resort(self):
        # Regression: `add` once treated only strictly-descending
        # inserts as unsorting, so an equal value followed by a smaller
        # one could leave the sorted flag stale and corrupt percentiles.
        hist = Histogram()
        for v in (5.0, 5.0, 1.0, 3.0):
            hist.add(v)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 5.0
        assert hist.percentile(0.5) == 3.0

    def test_sorted_flag_tracks_tail_not_history(self):
        hist = Histogram()
        hist.add(2.0)
        hist.add(1.0)   # unsorted
        assert hist.percentile(0.0) == 1.0  # forces a sort
        hist.add(3.0)   # appending beyond the max keeps it sorted
        assert hist.percentile(1.0) == 3.0
        assert hist.percentile(0.0) == 1.0

    def test_single_sample_is_every_quantile(self):
        hist = Histogram()
        hist.add(7.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.percentile(q) == 7.0

    def test_nearest_rank_never_interpolates(self):
        # Two samples: any q <= 0.5 resolves to the first, above it to
        # the second — never a value between them.
        hist = Histogram()
        hist.add(10.0)
        hist.add(20.0)
        assert hist.percentile(0.5) == 10.0
        assert hist.percentile(0.500001) == 20.0
        assert hist.percentile(0.95) == 20.0

    def test_quantiles_mapping(self):
        hist = Histogram()
        assert hist.quantiles() == {}
        for v in range(1, 1001):
            hist.add(float(v))
        quantiles = hist.quantiles()
        assert quantiles == {"p50": 500.0, "p95": 950.0,
                             "p99": 990.0, "p999": 999.0}


class TestSketchLayout:
    def test_spec_string(self):
        assert DEFAULT_SKETCH_LAYOUT.spec() == "log2[0,40)x16"
        assert SketchLayout(2, 10, 4).spec() == "log2[2,10)x4"

    def test_validation(self):
        with pytest.raises(ValueError):
            SketchLayout(min_exp=5, max_exp=5)
        with pytest.raises(ValueError):
            SketchLayout(subbuckets=0)

    def test_index_and_bounds_agree(self):
        layout = SketchLayout(0, 8, 8)
        for index in range(layout.bucket_count):
            lo, hi = layout.bounds(index)
            assert layout.index(lo) == index
            # hi is exclusive: the next bucket starts there.
            if hi < layout.max_value:
                assert layout.index(hi) == index + 1

    def test_bounds_range_check(self):
        with pytest.raises(ValueError):
            DEFAULT_SKETCH_LAYOUT.bounds(-1)
        with pytest.raises(ValueError):
            DEFAULT_SKETCH_LAYOUT.bounds(
                DEFAULT_SKETCH_LAYOUT.bucket_count)


class TestLatencySketch:
    def test_empty_sketch(self):
        sketch = LatencySketch()
        assert len(sketch) == 0
        assert sketch.mean == 0.0
        assert sketch.quantiles() == {}
        with pytest.raises(ValueError):
            sketch.percentile(0.5)

    def test_single_sample_quantiles_are_that_sample(self):
        sketch = LatencySketch()
        sketch.add(100.0)
        # One bucket's upper bound, clamped to max_value == the sample.
        for q in (0.0, 0.5, 1.0):
            assert sketch.percentile(q) == 100.0

    def test_relative_error_within_one_bucket(self):
        sketch = LatencySketch()
        exact = Histogram()
        for v in range(1, 5000):
            sketch.add(float(v))
            exact.add(float(v))
        for q in (0.5, 0.95, 0.99, 0.999):
            truth = exact.percentile(q)
            approx = sketch.percentile(q)
            assert approx >= truth  # bucket upper bound: never under
            assert approx <= truth * (1 + 1 / 16) + 1e-9

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            LatencySketch().add(float("nan"))

    def test_clamping_is_observable(self):
        layout = SketchLayout(2, 6, 4)  # grid [4, 64)
        sketch = LatencySketch(layout=layout)
        sketch.add(1.0)      # below grid -> first bucket
        sketch.add(1000.0)   # above grid -> last bucket
        assert sketch.clamped == 2
        assert sketch.count == 2
        assert sketch.min_value == 1.0
        assert sketch.max_value == 1000.0
        # Quantiles stay inside the observed min/max despite clamping.
        assert sketch.percentile(0.0) >= 1.0
        assert sketch.percentile(1.0) <= 1000.0

    def test_percentile_validates_fraction(self):
        sketch = LatencySketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.percentile(1.5)

    def test_merge_layout_mismatch_names_both_specs(self):
        left = LatencySketch()
        left.add(5.0)
        right = LatencySketch(layout=SketchLayout(0, 8, 8))
        right.add(5.0)
        with pytest.raises(ValueError) as excinfo:
            left.merge(right)
        assert "log2[0,40)x16" in str(excinfo.value)
        assert "log2[0,8)x8" in str(excinfo.value)

    def test_pristine_sketch_adopts_incoming_layout(self):
        fresh = LatencySketch()
        other = LatencySketch(layout=SketchLayout(0, 8, 8))
        other.add(5.0)
        fresh.merge(other)
        assert fresh.layout == other.layout
        assert fresh.count == 1

    def test_payload_round_trip(self):
        sketch = LatencySketch("lat")
        for v in (1.0, 17.0, 900.0):
            sketch.add(v)
        rebuilt = LatencySketch.from_payload("lat", sketch.to_payload())
        assert rebuilt.to_payload() == sketch.to_payload()
        assert rebuilt.quantiles() == sketch.quantiles()

    def test_reset(self):
        sketch = LatencySketch()
        sketch.add(3.0)
        sketch.reset()
        assert len(sketch) == 0
        assert sketch.quantiles() == {}


#: Strategy: sample batches on (and around) the default grid.
_samples = st.lists(
    st.floats(min_value=0.25, max_value=2.0**41,
              allow_nan=False, allow_infinity=False),
    max_size=60)


class TestSketchMergeProperties:
    @given(_samples, _samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes_byte_for_byte(self, a, b):
        left, right = LatencySketch(), LatencySketch()
        for v in a:
            left.add(v)
        for v in b:
            right.add(v)
        ab, ba = LatencySketch(), LatencySketch()
        ab.merge(left), ab.merge(right)
        ba.merge(right), ba.merge(left)
        assert ab.to_payload() == ba.to_payload()

    @given(_samples, _samples, _samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        def sketch_of(values):
            sketch = LatencySketch()
            for v in values:
                sketch.add(v)
            return sketch

        left = sketch_of(a)
        left.merge(sketch_of(b))
        left.merge(sketch_of(c))
        bc = sketch_of(b)
        bc.merge(sketch_of(c))
        right = sketch_of(a)
        right.merge(bc)
        assert left.to_payload() == right.to_payload()

    @given(_samples)
    @settings(max_examples=60, deadline=None)
    def test_merged_equals_serial(self, values):
        serial = LatencySketch()
        for v in values:
            serial.add(v)
        shards = [LatencySketch() for _ in range(3)]
        for i, v in enumerate(values):
            shards[i % 3].add(v)
        merged = LatencySketch()
        for shard in shards:
            merged.merge(shard)
        assert merged.to_payload() == serial.to_payload()


class TestReset:
    def test_counter_reset(self):
        counter = Counter("bytes")
        counter.add(10)
        counter.reset()
        assert counter.value == 0.0
        assert counter.events == 0
        assert counter.mean == 0.0

    def test_breakdown_reset(self):
        bd = Breakdown("time")
        bd.add("compute", 5.0)
        bd.reset()
        assert bd.total == 0.0
        assert bd.categories == ()

    def test_histogram_reset(self):
        hist = Histogram("lat")
        hist.add(2.0)
        hist.add(1.0)
        hist.reset()
        assert len(hist) == 0
        assert hist.mean == 0.0
        hist.add(4.0)
        assert hist.percentile(0.5) == 4.0

    def test_timeseries_reset(self):
        ts = TimeSeries("ipc")
        ts.record(5.0, 1.0)
        ts.reset()
        assert len(ts) == 0
        # Time travel is legal again after a reset.
        ts.record(1.0, 2.0)
        assert ts.value_at(1.0) == 2.0
