"""Tests for the statistics containers."""

import math

import pytest

from repro.sim import Breakdown, Counter, Histogram, TimeSeries


class TestCounter:
    def test_add_accumulates(self):
        counter = Counter("bytes")
        counter.add(10)
        counter.add(5)
        assert counter.value == 15
        assert counter.events == 2

    def test_mean(self):
        counter = Counter()
        counter.add(4)
        counter.add(8)
        assert counter.mean == 6

    def test_mean_of_empty_is_zero(self):
        assert Counter().mean == 0.0


class TestBreakdown:
    def test_add_and_total(self):
        bd = Breakdown("time")
        bd.add("compute", 30.0)
        bd.add("storage", 70.0)
        bd.add("compute", 10.0)
        assert bd.get("compute") == 40.0
        assert bd.total == 110.0

    def test_missing_category_reads_zero(self):
        assert Breakdown().get("nope") == 0.0

    def test_fractions_normalize(self):
        bd = Breakdown()
        bd.add("a", 1.0)
        bd.add("b", 3.0)
        fractions = bd.fractions()
        assert fractions["a"] == pytest.approx(0.25)
        assert fractions["b"] == pytest.approx(0.75)

    def test_fractions_of_empty_breakdown(self):
        assert Breakdown().fractions() == {}

    def test_merge(self):
        left, right = Breakdown(), Breakdown()
        left.add("x", 1.0)
        right.add("x", 2.0)
        right.add("y", 5.0)
        left.merge(right)
        assert left.get("x") == 3.0
        assert left.get("y") == 5.0

    def test_scaled_returns_new_breakdown(self):
        bd = Breakdown()
        bd.add("a", 2.0)
        doubled = bd.scaled(2.0)
        assert doubled.get("a") == 4.0
        assert bd.get("a") == 2.0

    def test_categories_preserve_insertion_order(self):
        bd = Breakdown()
        for cat in ("z", "a", "m"):
            bd.add(cat, 1.0)
        assert bd.categories == ("z", "a", "m")


class TestTimeSeries:
    def test_value_at_is_a_step_function(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(10.0, 3.0)
        assert ts.value_at(-1.0) == 0.0
        assert ts.value_at(0.0) == 1.0
        assert ts.value_at(9.999) == 1.0
        assert ts.value_at(10.0) == 3.0
        assert ts.value_at(100.0) == 3.0

    def test_record_rejects_time_travel(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 2.0)

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.record(0.0, 2.0)
        ts.record(5.0, 4.0)
        # [0,5): 2, [5,10): 4 -> mean 3
        assert ts.time_weighted_mean(0.0, 10.0) == pytest.approx(3.0)

    def test_time_weighted_mean_empty_interval_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().time_weighted_mean(5.0, 5.0)

    def test_integral(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        assert ts.integral(0.0, 8.0) == pytest.approx(8.0)
        assert ts.integral(8.0, 8.0) == 0.0

    def test_resample_buckets(self):
        ts = TimeSeries()
        ts.record(0.0, 0.0)
        ts.record(50.0, 10.0)
        buckets = ts.resample(0.0, 100.0, 2)
        assert buckets[0] == (25.0, pytest.approx(0.0))
        assert buckets[1] == (75.0, pytest.approx(10.0))

    def test_resample_needs_a_bucket(self):
        with pytest.raises(ValueError):
            TimeSeries().resample(0.0, 1.0, 0)


class TestHistogram:
    def test_mean_min_max(self):
        hist = Histogram()
        for v in (1.0, 3.0, 2.0):
            hist.add(v)
        assert hist.mean == pytest.approx(2.0)
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0

    def test_empty_histogram_stats(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert math.isnan(hist.minimum)
        assert math.isnan(hist.maximum)

    def test_percentile_nearest_rank(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.add(float(v))
        assert hist.percentile(0.5) == 50.0
        assert hist.percentile(0.99) == 99.0
        assert hist.percentile(1.0) == 100.0
        assert hist.percentile(0.0) == 1.0

    def test_percentile_validates_inputs(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(0.5)
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_unsorted_inserts_still_sort(self):
        hist = Histogram()
        for v in (9.0, 1.0, 5.0):
            hist.add(v)
        assert hist.percentile(0.0) == 1.0
        assert len(hist) == 3

    def test_equal_then_smaller_inserts_resort(self):
        # Regression: `add` once treated only strictly-descending
        # inserts as unsorting, so an equal value followed by a smaller
        # one could leave the sorted flag stale and corrupt percentiles.
        hist = Histogram()
        for v in (5.0, 5.0, 1.0, 3.0):
            hist.add(v)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 5.0
        assert hist.percentile(0.5) == 3.0

    def test_sorted_flag_tracks_tail_not_history(self):
        hist = Histogram()
        hist.add(2.0)
        hist.add(1.0)   # unsorted
        assert hist.percentile(0.0) == 1.0  # forces a sort
        hist.add(3.0)   # appending beyond the max keeps it sorted
        assert hist.percentile(1.0) == 3.0
        assert hist.percentile(0.0) == 1.0


class TestReset:
    def test_counter_reset(self):
        counter = Counter("bytes")
        counter.add(10)
        counter.reset()
        assert counter.value == 0.0
        assert counter.events == 0
        assert counter.mean == 0.0

    def test_breakdown_reset(self):
        bd = Breakdown("time")
        bd.add("compute", 5.0)
        bd.reset()
        assert bd.total == 0.0
        assert bd.categories == ()

    def test_histogram_reset(self):
        hist = Histogram("lat")
        hist.add(2.0)
        hist.add(1.0)
        hist.reset()
        assert len(hist) == 0
        assert hist.mean == 0.0
        hist.add(4.0)
        assert hist.percentile(0.5) == 4.0

    def test_timeseries_reset(self):
        ts = TimeSeries("ipc")
        ts.record(5.0, 1.0)
        ts.reset()
        assert len(ts) == 0
        # Time travel is legal again after a reset.
        ts.record(1.0, 2.0)
        assert ts.value_at(1.0) == 2.0
