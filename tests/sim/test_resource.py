"""Tests for Resource / Store / Channel contention primitives."""

import pytest

from repro.sim import Channel, Resource, Simulator, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    first, second = res.request(), res.request()
    third = res.request()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_release_hands_slot_to_waiter():
    sim = Simulator()
    res = Resource(sim)
    holder = res.request()
    waiter = res.request()
    res.release(holder)
    assert waiter.triggered


def test_resource_release_of_queued_request_cancels_it():
    sim = Simulator()
    res = Resource(sim)
    holder = res.request()
    queued = res.request()
    res.release(queued)
    assert res.queue_length == 0
    res.release(holder)
    assert not queued.triggered


def test_resource_release_unknown_request_raises():
    sim = Simulator()
    res_a, res_b = Resource(sim), Resource(sim)
    foreign = res_b.request()
    with pytest.raises(ValueError):
        res_a.release(foreign)


def test_resource_serializes_processes():
    sim = Simulator()
    res = Resource(sim)
    spans = []

    def worker(tag):
        start_req = res.request()
        yield start_req
        start = sim.now
        yield sim.timeout(10.0)
        res.release(start_req)
        spans.append((tag, start, sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert spans == [("a", 0.0, 10.0), ("b", 10.0, 20.0)]


def test_resource_use_helper_releases_on_completion():
    sim = Simulator()
    res = Resource(sim)

    def worker():
        yield sim.process(res.use(5.0))
        yield sim.process(res.use(5.0))

    sim.process(worker())
    sim.run()
    assert sim.now == 10.0
    assert res.count == 0


def test_resource_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for item in ("x", "y", "z"):
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(42.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(42.0, "late")]


def test_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", sim.now))
        yield store.put(2)
        log.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(10.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert log == [("put1", 0.0), ("put2", 10.0)]


def test_store_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)


def test_channel_transfer_time_includes_latency():
    sim = Simulator()
    link = Channel(sim, bandwidth_bytes_per_ns=2.0, latency_ns=5.0)
    assert link.occupancy_time(100) == 50.0
    assert link.transfer_time(100) == 55.0


def test_channel_transfers_serialize_but_latency_pipelines():
    sim = Simulator()
    link = Channel(sim, bandwidth_bytes_per_ns=1.0, latency_ns=10.0)
    done = []

    def sender(tag, size):
        yield sim.process(link.transfer(size))
        done.append((tag, sim.now))

    sim.process(sender("a", 100))
    sim.process(sender("b", 100))
    sim.run()
    # a: occupies 0-100, arrives 110. b: occupies 100-200, arrives 210.
    assert done == [("a", 110.0), ("b", 210.0)]


def test_channel_accounts_bytes_and_busy_time():
    sim = Simulator()
    link = Channel(sim, bandwidth_bytes_per_ns=4.0)

    def sender():
        yield sim.process(link.transfer(400))

    sim.process(sender())
    sim.run()
    assert link.bytes_transferred == 400
    assert link.busy_time == 100.0


def test_channel_rejects_bad_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, bandwidth_bytes_per_ns=0.0)
    with pytest.raises(ValueError):
        Channel(sim, bandwidth_bytes_per_ns=1.0, latency_ns=-1.0)


def test_channel_rejects_negative_size():
    sim = Simulator()
    link = Channel(sim, bandwidth_bytes_per_ns=1.0)

    def sender():
        with pytest.raises(ValueError):
            yield sim.process(link.transfer(-5))
        return "ok"

    proc = sim.process(sender())
    sim.run()
    assert proc.value == "ok"
