"""Windowed sampling export, validation, and terminal rendering."""

import json

import pytest

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import Simulator, TimeSeries, use_sampling
from repro.telemetry.metrics import MetricsRegistry, use_metrics
from repro.telemetry.session import Telemetry
from repro.telemetry.timeseries import (
    TIMESERIES_SCHEMA,
    Sampler,
    SamplingConfig,
    TimeWeightedTracker,
    export_document,
    heatline,
    load_timeseries,
    render_watch,
    sparkline,
    validate_timeseries,
    write_timeseries,
)


class TestTimeWeightedTracker:
    def test_constant_level(self):
        tracker = TimeWeightedTracker(TimeSeries())
        tracker.set_level(0.0, 3.0)
        assert tracker.close(0.0, 10.0) == pytest.approx(3.0)

    def test_mid_window_change(self):
        tracker = TimeWeightedTracker(TimeSeries())
        tracker.set_level(0.0, 2.0)
        tracker.set_level(5.0, 4.0)
        # [0,5): 2, [5,10): 4 -> mean 3.
        assert tracker.close(0.0, 10.0) == pytest.approx(3.0)

    def test_level_carries_across_windows(self):
        tracker = TimeWeightedTracker(TimeSeries())
        tracker.adjust(0.0, 6.0)
        tracker.close(0.0, 10.0)
        # No updates in the second window: the level persists.
        assert tracker.close(10.0, 20.0) == pytest.approx(6.0)
        assert tracker.level == 6.0

    def test_adjust_is_relative(self):
        tracker = TimeWeightedTracker(TimeSeries())
        tracker.adjust(0.0, 2.0)
        tracker.adjust(0.0, 2.0)
        tracker.adjust(5.0, -3.0)
        # [0,5): 4, [5,10): 1 -> mean 2.5.
        assert tracker.close(0.0, 10.0) == pytest.approx(2.5)


def _sampled_run(window_ns=500.0):
    """One PRAM read stream sampled into a fresh registry."""
    registry = MetricsRegistry()
    with use_metrics(registry), use_sampling(SamplingConfig(window_ns)):
        sim = Simulator()
        assert isinstance(sim.sampler, Sampler)
        subsystem = PramSubsystem(sim)

        def driver():
            for index in range(32):
                request = MemoryRequest(Op.READ, index * 512, 512)
                yield sim.process(subsystem.submit(request))

        sim.process(driver())
        sim.run()
    return registry


class TestExportDocument:
    def test_document_shape_and_schema(self):
        registry = _sampled_run()
        document = export_document(registry, window_ns=500.0)
        assert document["schema"] == TIMESERIES_SCHEMA
        assert document["window_ns"] == 500.0
        assert validate_timeseries(document) == []
        # The instrumented stack produced windowed series and sketches.
        assert any(".window." in name for name in document["series"])
        assert any(".sketch." in name for name in document["sketches"])

    def test_sketch_entries_carry_quantiles_and_spec(self):
        document = export_document(_sampled_run(), window_ns=500.0)
        entry = next(entry for name, entry in document["sketches"].items()
                     if name.endswith("sketch.read"))
        assert entry["spec"] == "log2[0,40)x16"
        assert set(entry["quantiles"]) == {"p50", "p95", "p99", "p999"}
        assert entry["count"] == sum(c for _, c in entry["buckets"])

    def test_empty_containers_are_skipped(self):
        registry = MetricsRegistry()
        registry.series("never.written")
        registry.sketch("never.sampled")
        document = export_document(registry, window_ns=100.0)
        assert document["series"] == {}
        assert document["sketches"] == {}


class TestWriteAndLoad:
    def test_json_round_trip(self, tmp_path):
        document = export_document(_sampled_run(), window_ns=500.0)
        path = str(tmp_path / "ts.json")
        write_timeseries(path, document)
        assert load_timeseries(path) == json.loads(
            json.dumps(document))  # exactly what JSON can represent

    def test_json_is_byte_deterministic(self, tmp_path):
        document = export_document(_sampled_run(), window_ns=500.0)
        first = str(tmp_path / "a.json")
        second = str(tmp_path / "b.json")
        write_timeseries(first, document)
        write_timeseries(second, document)
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()

    def test_csv_long_format(self, tmp_path):
        document = export_document(_sampled_run(), window_ns=500.0)
        path = str(tmp_path / "ts.csv")
        write_timeseries(path, document)
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert lines[0] == "series,t,v"
        # Sketch quantiles ride along as <path>.pNN rows at t = -1.
        assert any(".p99,-1," in line for line in lines)

    def test_load_rejects_non_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            load_timeseries(str(path))


class TestValidate:
    def test_flags_bad_schema_and_window(self):
        problems = validate_timeseries(
            {"schema": "nope", "window_ns": -1.0,
             "series": {}, "sketches": {}})
        assert len(problems) == 2

    def test_flags_ragged_and_unsorted_series(self):
        document = {
            "schema": TIMESERIES_SCHEMA, "window_ns": 10.0,
            "series": {"ragged": {"t": [0.0, 10.0], "v": [1.0]},
                       "unsorted": {"t": [10.0, 0.0], "v": [1.0, 2.0]}},
            "sketches": {}}
        problems = validate_timeseries(document)
        assert any("ragged" in p for p in problems)
        assert any("unsorted" in p for p in problems)

    def test_flags_sketch_count_mismatch(self):
        document = {
            "schema": TIMESERIES_SCHEMA, "window_ns": 10.0, "series": {},
            "sketches": {"lat": {"quantiles": {"p50": 1.0},
                                 "buckets": [[0, 2]], "count": 3}}}
        assert any("lat" in p for p in validate_timeseries(document))


class TestRendering:
    def test_sparkline_shape(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series_renders_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        assert heatline([5.0, 5.0]) == "  "

    def test_resampling_compresses_long_series(self):
        assert len(sparkline(list(range(1000)), width=60)) == 60

    def test_render_watch_lists_series_and_sketches(self):
        document = export_document(_sampled_run(), window_ns=500.0)
        text = render_watch(document)
        assert "time series" in text
        assert "latency sketches" in text
        assert "p999" in text

    def test_render_watch_heat_mode(self):
        document = {
            "schema": TIMESERIES_SCHEMA, "window_ns": 10.0,
            "series": {"q": {"t": [0.0, 10.0], "v": [0.0, 4.0]}},
            "sketches": {}}
        assert "█" in render_watch(document, heat=True)


class TestTelemetrySession:
    def test_timeseries_document_through_session(self, tmp_path):
        telemetry = Telemetry(timeseries=SamplingConfig(window_ns=500.0))
        with telemetry.activate():
            sim = Simulator()
            subsystem = PramSubsystem(sim)

            def driver():
                for index in range(8):
                    request = MemoryRequest(Op.READ, index * 512, 512)
                    yield sim.process(subsystem.submit(request))

            sim.process(driver())
            sim.run()
        document = telemetry.timeseries_document()
        assert validate_timeseries(document) == []
        assert document["window_ns"] == 500.0
        path = str(tmp_path / "out.json")
        telemetry.write_timeseries(path)
        assert load_timeseries(path)["schema"] == TIMESERIES_SCHEMA
