"""Benchmark trajectory: BENCH_*.json round-trip and compare verdicts."""

import json

import pytest

from repro.telemetry.bench import (
    BenchMetric,
    BenchReport,
    bench_filename,
    clear_attestations,
    collect_provenance,
    compare,
    git_sha,
    load_bench,
    provenance_conflicts,
    record_attestation,
    render_compare,
    stamp_provenance,
    write_bench,
)


def _report(**metrics):
    return BenchReport(provenance={"git_sha": "abc1234"},
                       metrics=metrics)


# ----------------------------------------------------------------------
# Model and serialization
# ----------------------------------------------------------------------
def test_metric_validates_direction_and_nan():
    with pytest.raises(ValueError, match="better must be one of"):
        BenchMetric(value=1.0, better="sideways")
    with pytest.raises(ValueError, match="NaN"):
        BenchMetric(value=float("nan"))


def test_round_trip(tmp_path):
    report = _report(
        m=BenchMetric(value=1.5, better="higher", unit="x"))
    path = tmp_path / bench_filename("abc1234")
    write_bench(report, path)
    loaded = load_bench(path)
    assert loaded.metrics["m"].value == 1.5
    assert loaded.metrics["m"].better == "higher"
    assert loaded.provenance["git_sha"] == "abc1234"


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/9", "metrics": {}}))
    with pytest.raises(ValueError, match="unsupported bench schema"):
        load_bench(path)


def test_git_sha_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "feedface")
    assert git_sha() == "feedface"


def test_collect_provenance_fields(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "cafe123")
    provenance = collect_provenance(scale=0.25, seed=1, agents=8)
    assert provenance["git_sha"] == "cafe123"
    assert provenance["scale"] == 0.25
    assert provenance["seed"] == 1
    assert provenance["agents"] == 8
    assert provenance["timestamp"].endswith("Z")


# ----------------------------------------------------------------------
# Attestations
# ----------------------------------------------------------------------
def test_recorded_attestations_flow_into_provenance():
    clear_attestations()
    try:
        record_attestation("tiebreak_independent", {"runs": 5})
        provenance = collect_provenance()
        assert provenance["attestations"] == {
            "tiebreak_independent": {"runs": 5}}
    finally:
        clear_attestations()
    assert "attestations" not in collect_provenance()


def test_record_attestation_rejects_empty_key():
    with pytest.raises(ValueError, match="non-empty"):
        record_attestation("", True)


def test_stamp_provenance_rewrites_artifact_in_place(tmp_path):
    report = _report(m=BenchMetric(value=2.0, better="lower", unit="ns"))
    path = tmp_path / bench_filename("abc1234")
    write_bench(report, path)
    stamp_provenance(path, "tiebreak_independent", {"independent": True})
    stamped = load_bench(path)
    assert stamped.provenance["attestations"][
        "tiebreak_independent"] == {"independent": True}
    # Everything else survives the rewrite untouched.
    assert stamped.metrics["m"].value == 2.0
    assert stamped.provenance["git_sha"] == "abc1234"
    # Stamping twice updates rather than duplicating.
    stamp_provenance(path, "other", 1)
    twice = load_bench(path)
    assert set(twice.provenance["attestations"]) == {
        "tiebreak_independent", "other"}


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def test_self_compare_reports_zero_regressions():
    report = _report(
        a=BenchMetric(value=3.0, better="higher"),
        b=BenchMetric(value=9.0, better="lower"))
    result = compare(report, report)
    assert result.regressions == []
    assert result.improvements == []
    assert all(d.verdict == "unchanged" for d in result.deltas)


def test_direction_aware_verdicts():
    baseline = _report(
        throughput=BenchMetric(value=100.0, better="higher"),
        latency=BenchMetric(value=100.0, better="lower"),
        shape=BenchMetric(value=100.0, better="neutral"))
    candidate = _report(
        throughput=BenchMetric(value=80.0, better="higher"),   # worse
        latency=BenchMetric(value=80.0, better="lower"),       # better
        shape=BenchMetric(value=42.0, better="neutral"))       # n/a
    result = compare(baseline, candidate, threshold=0.05)
    verdicts = {d.name: d.verdict for d in result.deltas}
    assert verdicts == {"throughput": "regression",
                        "latency": "improvement",
                        "shape": "neutral"}
    assert [d.name for d in result.regressions] == ["throughput"]


def test_threshold_suppresses_small_moves():
    baseline = _report(m=BenchMetric(value=100.0, better="lower"))
    candidate = _report(m=BenchMetric(value=104.0, better="lower"))
    assert compare(baseline, candidate,
                   threshold=0.05).regressions == []
    assert [d.name for d in compare(baseline, candidate,
                                    threshold=0.01).regressions] == ["m"]


def test_missing_and_added_metrics_tracked():
    baseline = _report(old=BenchMetric(value=1.0))
    candidate = _report(new=BenchMetric(value=2.0))
    result = compare(baseline, candidate)
    assert result.missing == ["old"]
    assert result.added == ["new"]
    assert result.deltas == []


# ----------------------------------------------------------------------
# measurement-configuration conflicts
# ----------------------------------------------------------------------
def _stamped(**extra):
    return BenchReport(provenance={"git_sha": "abc1234", **extra},
                       metrics={"m": BenchMetric(value=1.0)})


def test_matching_measurement_stamps_do_not_conflict():
    left = _stamped(sketch="log2[0,40)x16", timeseries_window_ns=1000.0)
    assert provenance_conflicts(left, left) == []


def test_mismatched_sketch_layouts_conflict():
    conflicts = provenance_conflicts(
        _stamped(sketch="log2[0,40)x16"),
        _stamped(sketch="log2[0,8)x8"))
    assert len(conflicts) == 1
    assert "log2[0,40)x16" in conflicts[0]
    assert "log2[0,8)x8" in conflicts[0]


def test_mismatched_backends_conflict():
    conflicts = provenance_conflicts(
        _stamped(backend="interpreted"),
        _stamped(backend="compiled"))
    assert len(conflicts) == 1
    assert "interpreted" in conflicts[0]
    assert "compiled" in conflicts[0]


def test_mismatched_service_plans_conflict():
    # SLO metrics from different traffic plans are different
    # measurements: the service stamp must gate compare like the
    # sketch layout and backend stamps do.
    conflicts = provenance_conflicts(
        _stamped(service="none"),
        _stamped(service="seed=7,rate=8e5"))
    assert len(conflicts) == 1
    assert "service" in conflicts[0]
    assert "seed=7,rate=8e5" in conflicts[0]


def test_compare_cli_refuses_mismatched_service_plans(tmp_path, capsys):
    from repro.telemetry.__main__ import main as telemetry_main

    baseline = tmp_path / "baseline.json"
    candidate = tmp_path / "candidate.json"
    write_bench(_stamped(service="none"), baseline)
    write_bench(_stamped(service="seed=7,rate=8e5"), candidate)
    assert telemetry_main(["compare", str(baseline),
                           str(candidate)]) == 2
    err = capsys.readouterr().err
    assert "refusing to compare" in err
    assert "service" in err


def test_compare_cli_refuses_mismatched_backends(tmp_path, capsys):
    from repro.telemetry.__main__ import main as telemetry_main

    baseline = tmp_path / "baseline.json"
    candidate = tmp_path / "candidate.json"
    write_bench(_stamped(backend="interpreted"), baseline)
    write_bench(_stamped(backend="compiled"), candidate)
    assert telemetry_main(["compare", str(baseline),
                           str(candidate)]) == 2
    err = capsys.readouterr().err
    assert "refusing to compare" in err
    assert "backend: baseline 'interpreted' vs candidate 'compiled'" in err


def test_legacy_report_without_stamp_still_compares():
    # Older baselines predate the stamps; only keys present on BOTH
    # sides can conflict, so compare keeps working across the boundary.
    assert provenance_conflicts(
        _stamped(), _stamped(sketch="log2[0,40)x16")) == []


def test_compare_cli_refuses_mismatched_stamps(tmp_path, capsys):
    from repro.telemetry.__main__ import main as telemetry_main

    baseline = tmp_path / "baseline.json"
    candidate = tmp_path / "candidate.json"
    write_bench(_stamped(timeseries_window_ns=1000.0), baseline)
    write_bench(_stamped(timeseries_window_ns=250.0), candidate)
    assert telemetry_main(["compare", str(baseline),
                           str(candidate)]) == 2
    err = capsys.readouterr().err
    assert "refusing to compare" in err
    assert "timeseries_window_ns" in err


def test_zero_baseline_regression_is_flagged():
    baseline = _report(m=BenchMetric(value=0.0, better="lower"))
    candidate = _report(m=BenchMetric(value=5.0, better="lower"))
    result = compare(baseline, candidate)
    assert [d.name for d in result.regressions] == ["m"]


def test_negative_threshold_rejected():
    report = _report(m=BenchMetric(value=1.0))
    with pytest.raises(ValueError, match="threshold"):
        compare(report, report, threshold=-0.1)


def test_render_compare_mentions_each_metric():
    baseline = _report(m=BenchMetric(value=100.0, better="lower"),
                       gone=BenchMetric(value=1.0))
    candidate = _report(m=BenchMetric(value=150.0, better="lower"))
    text = render_compare(compare(baseline, candidate))
    assert "m" in text and "regression" in text
    assert "gone" in text and "missing" in text
    assert "1 regression(s)" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_compare_exit_codes(tmp_path, capsys):
    from repro.telemetry.__main__ import main

    good = _report(m=BenchMetric(value=100.0, better="lower"))
    bad = _report(m=BenchMetric(value=200.0, better="lower"))
    good_path = tmp_path / "BENCH_base.json"
    bad_path = tmp_path / "BENCH_cand.json"
    write_bench(good, good_path)
    write_bench(bad, bad_path)
    assert main(["compare", str(good_path), str(good_path)]) == 0
    assert main(["compare", str(good_path), str(bad_path)]) == 1
    out = capsys.readouterr().out
    assert "regression" in out
    assert main(["compare", str(good_path),
                 str(tmp_path / "missing.json")]) == 2
