"""Unit tests for telemetry fragments (capture + deterministic merge)."""

import pickle

import pytest

from repro.telemetry.bench import BenchMetric, BenchReport, merge_reports
from repro.telemetry.fragments import (
    capture_metrics,
    capture_tracer,
    merge_metrics,
    merge_tracer,
)
from repro.sim import LatencySketch
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import RecordingTracer


def _worker_registry():
    """A registry shaped like one matrix cell's worker capture."""
    registry = MetricsRegistry()
    prefix = registry.component_prefix("subsys")
    registry.counter(f"{prefix}.requests").add(3)
    registry.histogram(f"{prefix}.latency_ns").add(10.0)
    registry.histogram(f"{prefix}.latency_ns").add(30.0)
    registry.sketch(f"{prefix}.sketch.read").add(10.0)
    registry.sketch(f"{prefix}.sketch.read").add(30.0)
    registry.counter("sched.interleave.overlap_ns").add(5)
    registry.gauge("pe.0.sleep_ns", 100.0)
    registry.gauge_max("sched.hints.depth_peak", 7.0)
    return registry


class TestMetricsFragment:
    def test_roundtrip_is_picklable(self):
        fragment = capture_metrics(_worker_registry())
        clone = pickle.loads(pickle.dumps(fragment))
        assert clone.prefixes == fragment.prefixes
        assert clone.containers == fragment.containers
        assert clone.gauges == fragment.gauges

    def test_prefix_replay_reproduces_serial_suffixes(self):
        # Two cells each reserved "subsys" locally; merged in cell
        # order they must land as subsys / subsys#2, like a serial run.
        target = MetricsRegistry()
        merge_metrics(target, capture_metrics(_worker_registry()))
        merge_metrics(target, capture_metrics(_worker_registry()))
        snap = target.snapshot()
        assert snap["subsys.requests"] == 3
        assert snap["subsys#2.requests"] == 3

    def test_shared_counters_accumulate(self):
        target = MetricsRegistry()
        merge_metrics(target, capture_metrics(_worker_registry()))
        merge_metrics(target, capture_metrics(_worker_registry()))
        assert target.snapshot()["sched.interleave.overlap_ns"] == 10

    def test_plain_gauges_overwrite_and_peaks_fold(self):
        first = MetricsRegistry()
        first.gauge("plain", 1.0)
        first.gauge_max("peak", 9.0)
        second = MetricsRegistry()
        second.gauge("plain", 2.0)
        second.gauge_max("peak", 4.0)
        target = MetricsRegistry()
        merge_metrics(target, capture_metrics(first))
        merge_metrics(target, capture_metrics(second))
        snap = target.snapshot()
        assert snap["plain"] == 2.0  # last cell wins, as in serial
        assert snap["peak"] == 9.0   # max across cells

    def test_histogram_samples_pool(self):
        target = MetricsRegistry()
        merge_metrics(target, capture_metrics(_worker_registry()))
        merge_metrics(target, capture_metrics(_worker_registry()))
        snap = target.snapshot()
        assert snap["subsys.latency_ns.count"] == 2
        assert snap["subsys#2.latency_ns.count"] == 2

    def test_merge_into_disabled_registry_is_a_noop(self):
        target = MetricsRegistry(enabled=False)
        merge_metrics(target, capture_metrics(_worker_registry()))
        assert target.snapshot() == {}

    def test_sketches_fold_bucket_wise(self):
        # Two cells' sketches merge by bucket addition; the merged
        # payload is byte-identical to sketching all samples serially.
        target = MetricsRegistry()
        merge_metrics(target, capture_metrics(_worker_registry()))
        merge_metrics(target, capture_metrics(_worker_registry()))
        serial = LatencySketch()
        for value in (10.0, 30.0):
            serial.add(value)
        merged = target.sketch("subsys.sketch.read")
        assert merged.count == 2
        assert merged.to_payload() == serial.to_payload()
        # The second cell's prefix replay kept its sketch distinct.
        assert target.sketch("subsys#2.sketch.read").count == 2

    def test_sketch_merge_order_is_irrelevant(self):
        heavy = MetricsRegistry()
        heavy.sketch("lat").add(1000.0)
        light = MetricsRegistry()
        light.sketch("lat").add(2.0)
        ab, ba = MetricsRegistry(), MetricsRegistry()
        merge_metrics(ab, capture_metrics(heavy))
        merge_metrics(ab, capture_metrics(light))
        merge_metrics(ba, capture_metrics(light))
        merge_metrics(ba, capture_metrics(heavy))
        assert (ab.sketch("lat").to_payload()
                == ba.sketch("lat").to_payload())


class TestLatestPrefix:
    def test_unreserved_base_maps_to_itself(self):
        assert MetricsRegistry().latest_prefix("pe.0") == "pe.0"

    def test_most_recent_reservation_wins(self):
        registry = MetricsRegistry()
        assert registry.component_prefix("pe.0") == "pe.0"
        assert registry.latest_prefix("pe.0") == "pe.0"
        assert registry.component_prefix("pe.0") == "pe.0#2"
        assert registry.latest_prefix("pe.0") == "pe.0#2"


class TestTracerFragment:
    def _worker_tracer(self):
        tracer = RecordingTracer()
        with tracer.scope("cell"):
            tracer.emit("compute", "pe0", 0.0, 10.0)
            tracer.instant("wake", "psc", 5.0)
            tracer.emit("transfer", "bus", 10.0, 20.0)
        tracer.command("cmd")
        return tracer

    def test_merge_preserves_span_instant_id_interleave(self):
        # Worker ids: compute=1, wake=2, transfer=3.  A serial run
        # interleaves spans and instants on one counter; the merge must
        # reproduce that, not renumber spans and instants separately.
        target = RecordingTracer()
        target.emit("warmup", "t", 0.0, 1.0)  # consumes id 1
        merge_tracer(target, capture_tracer(self._worker_tracer()))
        assert [s.span_id for s in target.spans] == [1, 2, 4]
        assert [s.span_id for s in target.instants] == [3]
        # The target's counter continues past the claimed ids.
        target.emit("after", "t", 2.0, 3.0)
        assert target.spans[-1].span_id == 5

    def test_merge_appends_commands_and_scopes(self):
        target = RecordingTracer()
        merge_tracer(target, capture_tracer(self._worker_tracer()))
        assert target.commands == ["cmd"]
        assert all(s.scope == "cell" for s in target.spans)

    def test_fragment_is_picklable(self):
        fragment = capture_tracer(self._worker_tracer())
        clone = pickle.loads(pickle.dumps(fragment))
        assert clone.spans == fragment.spans
        assert clone.instants == fragment.instants


class TestMergeReports:
    def _report(self, name, value):
        return BenchReport(
            provenance={"git_sha": "abc", "scale": "0.25"},
            metrics={name: BenchMetric(value=value, better="higher")})

    def test_merges_disjoint_fragments_sorted(self):
        merged = merge_reports([self._report("b.metric", 2.0),
                                self._report("a.metric", 1.0)])
        assert list(merged.metrics) == ["a.metric", "b.metric"]
        assert merged.provenance["merged_fragments"] == 2

    def test_identical_duplicates_collapse(self):
        merged = merge_reports([self._report("m", 1.0),
                                self._report("m", 1.0)])
        assert merged.metrics["m"].value == 1.0

    def test_conflicting_duplicate_raises(self):
        with pytest.raises(ValueError, match="m"):
            merge_reports([self._report("m", 1.0),
                           self._report("m", 2.0)])

    def test_empty_fragment_list_raises(self):
        with pytest.raises(ValueError):
            merge_reports([])
