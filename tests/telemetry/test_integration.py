"""End-to-end telemetry over a real PRAM subsystem.

Checks that recorded spans line up with the LPDDR2-NVM three-phase
protocol, that a traced Fig. 12 run shows the burst/array overlap the
figure is about, and that tracing is observational (determinism holds
with a recording tracer installed).
"""

import pytest

from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.pram import PramGeometry
from repro.sim import Simulator
from repro.telemetry import (
    Telemetry,
    perfetto_document,
    validate_perfetto,
)

GEOMETRY = PramGeometry(channels=1, modules_per_channel=1,
                        partitions_per_bank=4, tiles_per_partition=1,
                        bitlines_per_tile=512, wordlines_per_tile=512)


def _stride() -> int:
    return GEOMETRY.row_bytes


def _run_reads(telemetry: Telemetry, count: int = 4,
               policy: SchedulerPolicy = SchedulerPolicy.INTERLEAVING):
    with telemetry.activate():
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=GEOMETRY, policy=policy)
        requests = [MemoryRequest(Op.READ, i * _stride(),
                                  GEOMETRY.row_bytes)
                    for i in range(count)]

        def driver():
            pending = [sim.process(subsystem.submit(r)) for r in requests]
            yield sim.all_of(pending)

        sim.process(driver())
        with telemetry.tracer.scope("test"):
            sim.run()
    return subsystem


class TestThreePhaseSpans:
    def test_cold_read_emits_all_three_phases(self):
        telemetry = Telemetry()
        _run_reads(telemetry, count=1)
        names = [s.name for s in telemetry.tracer.spans]
        for phase in ("cmd", "pre_active", "activate", "read_burst"):
            assert phase in names, f"missing {phase} span"

    def test_phases_nest_in_protocol_order(self):
        telemetry = Telemetry()
        _run_reads(telemetry, count=1)
        spans = {s.name: s for s in telemetry.tracer.spans}
        pre_active = spans["pre_active"]
        activate = spans["activate"]
        burst = spans["read_burst"]
        # pre-active latches the RAB, then activate senses into the
        # RDB, then the burst streams the RDB over the bus.
        assert pre_active.end_ns <= activate.start_ns
        assert activate.end_ns <= burst.start_ns
        # Array phases live on the partition track; the burst holds
        # the shared bus.
        assert pre_active.track == "ch0.m0.p0"
        assert activate.track == "ch0.m0.p0"
        assert burst.track == "ch0.bus"

    def test_array_phases_sit_inside_request_span(self):
        telemetry = Telemetry()
        _run_reads(telemetry, count=1)
        request = next(s for s in telemetry.tracer.spans
                       if s.track == "requests")
        assert request.asynchronous
        for span in telemetry.tracer.spans:
            if span.track.startswith("ch0.m0"):
                assert request.start_ns <= span.start_ns
                assert span.end_ns <= request.end_ns

    def test_commands_recorded_alongside_spans(self):
        telemetry = Telemetry()
        _run_reads(telemetry, count=1)
        commands = [c.command.value for c in telemetry.tracer.commands]
        assert "PRE-ACTIVE" in commands or "pre_active" in [
            c.lower().replace("-", "_") for c in commands]


class TestInterleavingOverlap:
    def test_burst_overlaps_other_partition_array_access(self):
        telemetry = Telemetry()
        subsystem = _run_reads(telemetry, count=4)
        channel = subsystem.channels[0]
        assert channel.overlap_ns > 0.0
        assert telemetry.metrics.counter(
            "sched.interleave.overlap_ns").value > 0.0

    def test_overlap_visible_in_perfetto_tracks(self):
        telemetry = Telemetry()
        _run_reads(telemetry, count=4)
        document = perfetto_document(telemetry.tracer)
        assert validate_perfetto(document) == []
        events = document["traceEvents"]
        bursts = [e for e in events
                  if e["ph"] == "X" and e["name"] == "read_burst"]
        arrays = [e for e in events
                  if e["ph"] == "X" and e["name"] in ("pre_active",
                                                      "activate")]
        overlapping = [
            (burst, array)
            for burst in bursts for array in arrays
            if array["tid"] != burst["tid"]
            and array["ts"] < burst["ts"] + burst["dur"]
            and burst["ts"] < array["ts"] + array["dur"]
        ]
        assert overlapping, (
            "no RDB burst overlapped another partition's array access")

    def test_phase_skip_counters_on_reread(self):
        telemetry = Telemetry()
        with telemetry.activate():
            sim = Simulator()
            subsystem = PramSubsystem(sim, geometry=GEOMETRY,
                                      policy=SchedulerPolicy.INTERLEAVING)
            requests = [MemoryRequest(Op.READ, 0, GEOMETRY.row_bytes)
                        for _ in range(2)]

            def driver():
                for request in requests:  # sequential: second RDB-hits
                    yield sim.process(subsystem.submit(request))

            sim.process(driver())
            sim.run()
        channel = subsystem.channels[0]
        assert channel.rdb_hits == 1
        snap = telemetry.metrics.snapshot("pram.ch0.phase_skip.*")
        assert snap["pram.ch0.phase_skip.pre_active"] >= 1
        assert snap["pram.ch0.phase_skip.activate"] >= 1


class TestObservationalPurity:
    @pytest.mark.determinism
    def test_traced_run_is_deterministic(self):
        telemetry = Telemetry()
        _run_reads(telemetry, count=4)

    def test_tracing_does_not_change_timing(self):
        untraced = Simulator()
        plain = PramSubsystem(untraced, geometry=GEOMETRY,
                              policy=SchedulerPolicy.INTERLEAVING)
        request = MemoryRequest(Op.READ, 0, GEOMETRY.row_bytes)
        untraced.process(plain.submit(request))
        untraced.run()
        plain_time = request.complete_time

        telemetry = Telemetry()
        subsystem = _run_reads(telemetry, count=1)
        del subsystem
        traced = next(s for s in telemetry.tracer.spans
                      if s.track == "requests")
        assert traced.end_ns == pytest.approx(plain_time)


class TestMetricsOnlySession:
    def test_record_spans_false_keeps_null_tracer(self):
        from repro.telemetry import current_metrics, current_tracer
        from repro.telemetry.tracer import NULL_TRACER

        telemetry = Telemetry(record_spans=False)
        with telemetry.activate():
            # The metrics-only path must keep the zero-overhead tracer
            # so hot emit sites stay behind `tracer.enabled`.
            assert current_tracer() is NULL_TRACER
            assert current_metrics() is telemetry.metrics
            sim = Simulator()
            subsystem = PramSubsystem(sim, geometry=GEOMETRY)
            request = MemoryRequest(Op.READ, 0, GEOMETRY.row_bytes)
            sim.process(subsystem.submit(request))
            sim.run()
            assert not sim.tracer.enabled
        assert telemetry.tracer.spans == []
        assert telemetry.metrics.snapshot("pram.*")
