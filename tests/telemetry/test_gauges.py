"""Interval-gauge math: clipping, zero-duration runs, re-entrancy."""

import math

import pytest

from repro.sim import Simulator
from repro.telemetry.gauges import (
    IntervalGauge,
    capture_window,
    littles_law,
    merged_length,
    request_depth_series,
    track_gauges,
    utilization_table,
)
from repro.telemetry.tracer import RecordingTracer, use_tracer


# ----------------------------------------------------------------------
# merged_length
# ----------------------------------------------------------------------
def test_merged_length_unions_overlaps():
    assert merged_length([(0.0, 10.0), (5.0, 15.0)]) == 15.0


def test_merged_length_disjoint():
    assert merged_length([(0.0, 2.0), (5.0, 6.0)]) == 3.0


def test_merged_length_empty_and_degenerate():
    assert merged_length([]) == 0.0
    assert merged_length([(3.0, 3.0)]) == 0.0


# ----------------------------------------------------------------------
# IntervalGauge basics
# ----------------------------------------------------------------------
def test_busy_ns_clips_at_window_edges():
    gauge = IntervalGauge()
    gauge.add_interval(0.0, 100.0)
    assert gauge.busy_ns(25.0, 75.0) == 50.0
    assert gauge.utilization(25.0, 75.0) == 1.0


def test_interval_past_sim_end_clips():
    # A span that ends after the sampling window (the sim-end clip).
    gauge = IntervalGauge()
    gauge.add_interval(80.0, 200.0)
    assert gauge.busy_ns(0.0, 100.0) == 20.0
    assert gauge.utilization(0.0, 100.0) == pytest.approx(0.2)


def test_zero_duration_window_never_divides_by_zero():
    gauge = IntervalGauge()
    gauge.add_interval(0.0, 5.0)
    assert gauge.busy_ns(3.0, 3.0) == 0.0
    assert gauge.utilization(3.0, 3.0) == 0.0
    assert gauge.utilization(5.0, 2.0) == 0.0


def test_zero_length_interval_is_dropped():
    gauge = IntervalGauge()
    gauge.add_interval(4.0, 4.0)
    assert gauge.interval_count == 0
    assert gauge.busy_ns(0.0, 10.0) == 0.0


def test_backwards_interval_raises():
    gauge = IntervalGauge("g")
    with pytest.raises(ValueError, match="ends before it starts"):
        gauge.add_interval(10.0, 5.0)


def test_nan_rejected():
    gauge = IntervalGauge()
    with pytest.raises(ValueError):
        gauge.add_interval(float("nan"), 1.0)
    with pytest.raises(ValueError):
        gauge.acquire(float("nan"))


# ----------------------------------------------------------------------
# Re-entrant acquire/release and open-hold sampling
# ----------------------------------------------------------------------
def test_nested_holds_count_once():
    gauge = IntervalGauge()
    gauge.acquire(0.0)
    gauge.acquire(2.0)     # nested: must not double-count
    gauge.release(8.0)
    gauge.release(10.0)    # outermost close records [0, 10]
    assert gauge.depth == 0
    assert gauge.busy_ns(0.0, 10.0) == 10.0


def test_open_hold_sampled_reentrantly():
    # Sampling while the hold is still open clips it at the sample end.
    gauge = IntervalGauge()
    gauge.add_interval(0.0, 10.0)
    gauge.acquire(20.0)
    assert gauge.depth == 1
    assert gauge.busy_ns(0.0, 30.0) == 20.0     # 10 closed + 10 open
    # A second sample at a later end sees more of the open hold, and
    # the earlier sample did not mutate state.
    assert gauge.busy_ns(0.0, 50.0) == 40.0
    gauge.release(60.0)
    assert gauge.busy_ns(0.0, 60.0) == 50.0


def test_open_hold_overlapping_closed_interval_not_double_counted():
    gauge = IntervalGauge()
    gauge.add_interval(0.0, 30.0)
    gauge.acquire(20.0)
    assert gauge.busy_ns(0.0, 40.0) == 40.0


def test_release_without_acquire_raises():
    gauge = IntervalGauge("bus")
    with pytest.raises(ValueError, match="release without acquire"):
        gauge.release(1.0)


# ----------------------------------------------------------------------
# Span-derived gauges
# ----------------------------------------------------------------------
def _record(tracer, name, track, start, end, asynchronous=False, **args):
    tracer.emit(name, track, start, end, asynchronous=asynchronous, **args)


def test_track_gauges_excludes_queue_tracks():
    tracer = RecordingTracer()
    _record(tracer, "read_burst", "ch0.bus", 0.0, 10.0)
    _record(tracer, "read_chunk", "ch0.inflight", 0.0, 50.0,
            asynchronous=True)
    _record(tracer, "read 0x0", "requests", 0.0, 60.0, asynchronous=True)
    gauges = track_gauges(tracer.spans)
    assert set(gauges) == {"ch0.bus"}
    assert gauges["ch0.bus"].busy_ns(0.0, 60.0) == 10.0


def test_capture_window_empty_run():
    assert capture_window([]) == (0.0, 0.0)
    assert utilization_table([]) == []
    assert littles_law([]) is None


def test_utilization_table_sorted_busiest_first():
    tracer = RecordingTracer()
    _record(tracer, "cmd", "ch0.bus", 0.0, 90.0)
    _record(tracer, "activate", "ch0.m0.p0", 0.0, 30.0)
    table = utilization_table(tracer.spans)
    assert [row.track for row in table] == ["ch0.bus", "ch0.m0.p0"]
    assert table[0].utilization == pytest.approx(1.0)
    assert table[1].utilization == pytest.approx(30.0 / 90.0)


def test_request_depth_series_handoff_no_phantom_spike():
    tracer = RecordingTracer()
    # One request completes at t=10 exactly as the next begins: depth
    # must go 1 -> 1, never 2.
    _record(tracer, "read 0x0", "requests", 0.0, 10.0, asynchronous=True)
    _record(tracer, "read 0x1", "requests", 10.0, 20.0,
            asynchronous=True)
    series = request_depth_series(tracer.spans)
    assert max(series.values) == 1.0


def test_littles_law_exact_on_full_capture():
    tracer = RecordingTracer()
    _record(tracer, "read 0x0", "requests", 0.0, 30.0, asynchronous=True)
    _record(tracer, "read 0x1", "requests", 10.0, 40.0,
            asynchronous=True)
    _record(tracer, "read 0x2", "requests", 20.0, 50.0,
            asynchronous=True)
    check = littles_law(tracer.spans)
    assert check is not None
    assert check.request_count == 3
    assert check.mean_latency_ns == pytest.approx(30.0)
    # For a fully captured run the law is exact: the depth integral
    # IS the summed residence time.
    assert check.consistent(1e-9)
    assert check.ratio == pytest.approx(1.0)


def test_littles_law_none_for_zero_duration():
    tracer = RecordingTracer()
    _record(tracer, "read 0x0", "requests", 5.0, 5.0, asynchronous=True)
    assert littles_law(tracer.spans) is None


def test_gauges_from_live_simulation():
    # End to end: a simulated producer occupying a resource-like track.
    tracer = RecordingTracer()
    with use_tracer(tracer):
        sim = Simulator()

        def worker():
            start = sim.now
            yield sim.timeout(40.0)
            sim.tracer.emit("work", "dev.lane", start, sim.now)
            yield sim.timeout(60.0)

        sim.process(worker())
        sim.run()
    gauges = track_gauges(tracer.spans)
    assert gauges["dev.lane"].utilization(0.0, sim.now) == pytest.approx(
        0.4)
    assert math.isclose(capture_window(tracer.spans)[1], 40.0)
