"""Exporter tests: Perfetto JSON, validation, span-log round trips."""

import json

from repro.telemetry import (
    RecordingTracer,
    Telemetry,
    load_spanlog,
    perfetto_document,
    perfetto_events,
    spanlog_spans,
    validate_perfetto,
    write_perfetto,
    write_spanlog,
)
from repro.telemetry.__main__ import main as telemetry_main


def _sample_tracer() -> RecordingTracer:
    tracer = RecordingTracer()
    with tracer.scope("pram:gemver"):
        tracer.emit("read 0x0", "requests", 0.0, 150.0, asynchronous=True)
        tracer.emit("pre_active", "ch0.m0.p0", 10.0, 40.0, buffer=0)
        tracer.emit("activate", "ch0.m0.p0", 40.0, 95.0, row=3)
        tracer.emit("read_burst", "ch0.bus", 95.0, 130.0)
        tracer.instant("pe0->active", "psc", 100.0)
    with tracer.scope("pram:doitg"):
        tracer.emit("compute", "pe0", 0.0, 50.0, ops=64)
    return tracer


class TestPerfettoExport:
    def test_document_validates_clean(self):
        assert validate_perfetto(perfetto_document(_sample_tracer())) == []

    def test_scopes_become_processes_tracks_become_threads(self):
        events = perfetto_events(_sample_tracer())
        processes = {e["args"]["name"]: e["pid"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
        threads = {(e["pid"], e["args"]["name"]): e["tid"] for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert set(processes) == {"pram:gemver", "pram:doitg"}
        assert (processes["pram:gemver"], "ch0.bus") in threads
        assert (processes["pram:doitg"], "pe0") in threads

    def test_async_spans_export_as_b_e_pairs(self):
        events = perfetto_events(_sample_tracer())
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["id"] == ends[0]["id"]
        assert begins[0]["name"] == "read 0x0"

    def test_sync_spans_export_as_complete_events(self):
        events = perfetto_events(_sample_tracer())
        xs = {e["name"]: e for e in events if e["ph"] == "X"}
        # ts is microseconds (ns / 1000).
        assert xs["pre_active"]["ts"] == 0.01
        assert xs["pre_active"]["dur"] == 0.03

    def test_event_ts_is_globally_monotonic(self):
        events = [e for e in perfetto_events(_sample_tracer())
                  if e["ph"] != "M"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_file_round_trip_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_perfetto(_sample_tracer(), str(path))
        document = json.loads(path.read_text())
        assert validate_perfetto(document) == []
        assert document["displayTimeUnit"] == "ns"

    def test_per_track_ts_monotonic_after_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_perfetto(_sample_tracer(), str(path))
        document = json.loads(path.read_text())
        per_track = {}
        for event in document["traceEvents"]:
            if event["ph"] == "M":
                continue
            per_track.setdefault((event["pid"], event["tid"]),
                                 []).append(event["ts"])
        for stamps in per_track.values():
            assert stamps == sorted(stamps)


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_perfetto([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_perfetto({}) == ["missing or non-list 'traceEvents'"]

    def test_flags_unknown_phase(self):
        problems = validate_perfetto(
            {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1}]})
        assert any("unknown phase" in p for p in problems)

    def test_flags_negative_ts(self):
        problems = validate_perfetto(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 1,
                              "tid": 1, "ts": -1.0, "dur": 1.0}]})
        assert any("bad ts" in p for p in problems)

    def test_flags_async_without_id(self):
        problems = validate_perfetto(
            {"traceEvents": [{"ph": "b", "name": "x", "pid": 1,
                              "tid": 1, "ts": 0.0}]})
        assert any("async" in p for p in problems)


class TestSpanLog:
    def test_round_trip_preserves_spans(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "spans.jsonl"
        write_spanlog(tracer, str(path))
        spans = spanlog_spans(str(path))
        assert {s.name for s in spans} == {s.name for s in tracer.spans}
        burst = next(s for s in spans if s.name == "read_burst")
        assert burst.start_ns == 95.0
        assert burst.end_ns == 130.0
        assert burst.scope == "pram:gemver"

    def test_lines_are_time_ordered_typed_json(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_spanlog(_sample_tracer(), str(path))
        lines = load_spanlog(str(path))
        assert all(line["type"] in ("span", "instant", "command")
                   for line in lines)
        starts = [line.get("start_ns", 0.0) for line in lines]
        assert starts == sorted(starts)


class TestValidateCli:
    def test_validate_accepts_good_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        spans = tmp_path / "t.jsonl"
        telemetry = Telemetry()
        with telemetry.activate():
            telemetry.tracer.emit("a", "t", 0.0, 1.0)
        telemetry.write_trace(str(trace))
        telemetry.write_spanlog(str(spans))
        assert telemetry_main(
            ["validate", str(trace), "--spanlog", str(spans)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_bad_trace(self, tmp_path, capsys):
        trace = tmp_path / "bad.json"
        trace.write_text(json.dumps({"traceEvents": "nope"}))
        assert telemetry_main(["validate", str(trace)]) == 1
        assert capsys.readouterr().err
