"""Metrics registry tests: namespaces, get-or-create, snapshots."""

import pytest

from repro.sim import Breakdown, Counter, Histogram, TimeSeries
from repro.telemetry import (
    NULL_METRICS,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)


class TestComponentPrefix:
    def test_first_registrant_keeps_plain_name(self):
        metrics = MetricsRegistry()
        assert metrics.component_prefix("pram.ch0") == "pram.ch0"

    def test_collisions_get_numbered_suffixes(self):
        metrics = MetricsRegistry()
        metrics.component_prefix("pram.ch0")
        assert metrics.component_prefix("pram.ch0") == "pram.ch0#2"
        assert metrics.component_prefix("pram.ch0") == "pram.ch0#3"

    def test_disabled_registry_reserves_nothing(self):
        assert NULL_METRICS.component_prefix("x") == "x"
        assert NULL_METRICS.component_prefix("x") == "x"


class TestGetOrCreate:
    def test_counter_is_shared_by_path(self):
        metrics = MetricsRegistry()
        metrics.counter("sched.overlap").add(5)
        metrics.counter("sched.overlap").add(7)
        assert metrics.counter("sched.overlap").value == 12

    def test_kind_mismatch_raises(self):
        metrics = MetricsRegistry()
        metrics.counter("x")
        with pytest.raises(TypeError):
            metrics.histogram("x")

    def test_each_kind_constructs_its_container(self):
        metrics = MetricsRegistry()
        assert isinstance(metrics.counter("a"), Counter)
        assert isinstance(metrics.histogram("b"), Histogram)
        assert isinstance(metrics.breakdown("c"), Breakdown)
        assert isinstance(metrics.series("d"), TimeSeries)

    def test_disabled_registry_hands_out_throwaways(self):
        one = NULL_METRICS.counter("x")
        two = NULL_METRICS.counter("x")
        assert one is not two
        assert NULL_METRICS.paths() == []


class TestAttach:
    def test_attach_is_idempotent_for_same_object(self):
        metrics = MetricsRegistry()
        hist = Histogram("lat")
        assert metrics.attach("ch0.lat", hist) == "ch0.lat"
        assert metrics.attach("ch0.lat", hist) == "ch0.lat"
        assert metrics.get("ch0.lat") is hist

    def test_attach_collision_raises_naming_both_sites(self):
        metrics = MetricsRegistry()
        metrics.attach("ch0.lat", Histogram())  # first registration site
        with pytest.raises(ValueError) as excinfo:
            metrics.attach("ch0.lat", Histogram())
        message = str(excinfo.value)
        assert "ch0.lat" in message
        # Both registration sites are named (this file, two lines).
        assert message.count("test_metrics.py") == 2

    def test_attach_collision_with_a_gauge_raises(self):
        metrics = MetricsRegistry()
        metrics.gauge("depth", 3.0)
        with pytest.raises(ValueError):
            metrics.attach("depth", Histogram())

    def test_disabled_attach_stays_a_no_op(self):
        assert NULL_METRICS.attach("x", Histogram()) == "x"
        assert NULL_METRICS.attach("x", Histogram()) == "x"


class TestSnapshot:
    def test_counter_and_gauge_flatten_to_values(self):
        metrics = MetricsRegistry()
        metrics.counter("reads").add(3)
        metrics.gauge("pe.0.sleep_ns", 125.0)
        snap = metrics.snapshot()
        assert snap["reads"] == 3
        assert snap["pe.0.sleep_ns"] == 125.0

    def test_histogram_flattens_to_percentiles(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("lat")
        for v in range(1, 101):
            hist.add(float(v))
        snap = metrics.snapshot("lat*")
        assert snap["lat.count"] == 100
        assert snap["lat.p50"] == 50.0
        assert snap["lat.p99"] == 99.0

    def test_breakdown_flattens_per_category(self):
        metrics = MetricsRegistry()
        bd = metrics.breakdown("time")
        bd.add("compute", 30.0)
        bd.add("stall", 70.0)
        snap = metrics.snapshot()
        assert snap["time.compute"] == 30.0
        assert snap["time.total"] == 100.0

    def test_pattern_filters_paths(self):
        metrics = MetricsRegistry()
        metrics.counter("pram.ch0.rab_hits").add()
        metrics.counter("sched.hints.registered").add()
        assert metrics.paths("pram.*") == ["pram.ch0.rab_hits"]
        assert set(metrics.snapshot("sched.*")) == {
            "sched.hints.registered"}

    def test_summary_table_renders_all_paths(self):
        metrics = MetricsRegistry()
        metrics.counter("a.b").add(2)
        metrics.gauge("c.d", 1.5)
        table = metrics.summary_table()
        assert "a.b" in table
        assert "c.d" in table
        assert "metric" in table

    def test_empty_summary_says_so(self):
        assert "no metrics" in MetricsRegistry().summary_table()


class TestReset:
    def test_reset_zeroes_but_keeps_registration(self):
        metrics = MetricsRegistry()
        counter = metrics.counter("hits")
        counter.add(4)
        metrics.gauge("g", 2.0)
        metrics.reset()
        assert metrics.counter("hits") is counter
        assert counter.value == 0.0
        assert "g" not in metrics.snapshot()

    def test_prefixes_survive_reset(self):
        metrics = MetricsRegistry()
        metrics.component_prefix("pram.ch0")
        metrics.reset()
        assert metrics.component_prefix("pram.ch0") == "pram.ch0#2"


class TestAmbientRegistry:
    def test_default_is_disabled(self):
        assert current_metrics() is NULL_METRICS
        assert not current_metrics().enabled

    def test_use_metrics_scopes_installation(self):
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            assert current_metrics() is metrics
            current_metrics().counter("x").add()
        assert current_metrics() is NULL_METRICS
        assert metrics.counter("x").value == 1
