"""Latency attribution: segment sweep, exactness invariant, fig12."""

import math

import pytest

from repro.experiments.fig12_interleaving_timing import run as fig12_run
from repro.telemetry import Telemetry
from repro.telemetry.dashboard import (
    build_profile,
    render_html,
    render_text,
)
from repro.telemetry.profile import (
    SEGMENTS,
    attribute_requests,
    summarize,
    verify_attribution,
)
from repro.telemetry.tracer import RecordingTracer


def _request(tracer, req, start, end, op="read", address=0, size=64):
    tracer.emit(f"{op} 0x{address:x}", "requests", start, end,
                asynchronous=True, req=req, op=op, address=address,
                size=size)


# ----------------------------------------------------------------------
# Synthetic sweeps
# ----------------------------------------------------------------------
def test_full_pipeline_attribution():
    tracer = RecordingTracer()
    _request(tracer, 1, 0.0, 100.0)
    tracer.emit("cmd", "ch0.bus", 0.0, 5.0, req=1)
    tracer.emit("pre_active", "ch0.m0.p0", 5.0, 15.0, req=1)
    tracer.emit("activate", "ch0.m0.p0", 15.0, 70.0, req=1)
    tracer.emit("read_burst", "ch0.bus", 70.0, 90.0, req=1, overlap=0.0)
    [attribution] = attribute_requests(tracer.spans)
    segments = attribution.segments
    assert segments["bus"] == 5.0
    assert segments["preactive"] == 10.0
    assert segments["activate"] == 55.0
    assert segments["rdb_burst"] == 20.0
    assert segments["queue_wait"] == 10.0      # the uncovered [90, 100]
    assert segments["interleave_hidden"] == 0.0
    assert attribution.attributed_ns == pytest.approx(100.0)
    assert verify_attribution([attribution], overlap_total_ns=0.0) == []


def test_uncovered_time_is_queue_wait():
    tracer = RecordingTracer()
    _request(tracer, 7, 0.0, 50.0)
    [attribution] = attribute_requests(tracer.spans)
    assert attribution.segments["queue_wait"] == 50.0
    assert attribution.dominant_segment() == "queue_wait"


def test_overlapping_spans_collapse_by_priority():
    # A burst over the same instants as an activate: the deeper stage
    # (rdb_burst) claims the overlap, nothing is counted twice.
    tracer = RecordingTracer()
    _request(tracer, 2, 0.0, 40.0)
    tracer.emit("activate", "ch0.m0.p0", 0.0, 30.0, req=2)
    tracer.emit("read_burst", "ch0.bus", 20.0, 40.0, req=2, overlap=0.0)
    [attribution] = attribute_requests(tracer.spans)
    assert attribution.segments["activate"] == 20.0
    assert attribution.segments["rdb_burst"] == 20.0
    assert attribution.attributed_ns == pytest.approx(40.0)


def test_spans_clip_to_request_window():
    tracer = RecordingTracer()
    _request(tracer, 3, 10.0, 30.0)
    tracer.emit("activate", "ch0.m0.p0", 0.0, 40.0, req=3)
    [attribution] = attribute_requests(tracer.spans)
    assert attribution.segments["activate"] == 20.0
    assert attribution.attributed_ns == pytest.approx(20.0)


def test_overlap_credit_flows_from_span_args():
    tracer = RecordingTracer()
    _request(tracer, 4, 0.0, 60.0)
    tracer.emit("read_burst", "ch0.bus", 30.0, 60.0, req=4, overlap=12.5)
    [attribution] = attribute_requests(tracer.spans)
    assert attribution.overlap_ns == 12.5
    assert attribution.segments["interleave_hidden"] == 12.5
    # segments sum = 30 (queue) + 30 (burst) + 12.5 (hidden); minus the
    # credit it equals the 60 ns end-to-end latency.
    assert attribution.attributed_ns == pytest.approx(60.0)
    assert verify_attribution([attribution],
                              overlap_total_ns=12.5) == []


def test_verify_catches_overlap_mismatch():
    tracer = RecordingTracer()
    _request(tracer, 5, 0.0, 60.0)
    tracer.emit("read_burst", "ch0.bus", 30.0, 60.0, req=5, overlap=10.0)
    attributions = attribute_requests(tracer.spans)
    problems = verify_attribution(attributions, overlap_total_ns=99.0)
    assert any("scheduler observed" in problem for problem in problems)


def test_verify_catches_overcredited_overlap():
    tracer = RecordingTracer()
    _request(tracer, 6, 0.0, 60.0)
    # Credit exceeds the burst itself: impossible, must be flagged.
    tracer.emit("read_burst", "ch0.bus", 50.0, 60.0, req=6, overlap=25.0)
    attributions = attribute_requests(tracer.spans)
    problems = verify_attribution(attributions)
    assert any("exceeds burst segment" in problem for problem in problems)


def test_requests_without_req_arg_are_skipped():
    tracer = RecordingTracer()
    tracer.emit("read 0x0", "requests", 0.0, 10.0, asynchronous=True)
    assert attribute_requests(tracer.spans) == []


def test_summarize_totals_and_fractions():
    tracer = RecordingTracer()
    _request(tracer, 10, 0.0, 100.0)
    _request(tracer, 11, 0.0, 100.0)
    tracer.emit("activate", "ch0.m0.p0", 0.0, 50.0, req=10)
    tracer.emit("activate", "ch0.m0.p1", 0.0, 100.0, req=11)
    summary = summarize(attribute_requests(tracer.spans))
    assert summary.request_count == 2
    assert summary.total_latency_ns == 200.0
    assert summary.segment_totals["activate"] == 150.0
    assert summary.segment_means()["activate"] == 75.0
    assert summary.segment_fractions()["activate"] == pytest.approx(0.75)
    assert set(summary.segment_totals) == set(SEGMENTS)


# ----------------------------------------------------------------------
# The acceptance-criteria integration test: a traced fig12 run
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_fig12():
    telemetry = Telemetry()
    with telemetry.activate():
        fig12_run()
    return telemetry


def test_fig12_attribution_invariant(traced_fig12):
    spans = traced_fig12.tracer.spans
    overlap_total = traced_fig12.metrics.counter(
        "sched.interleave.overlap_ns").value
    attributions = attribute_requests(spans)
    assert attributions, "fig12 must yield attributable requests"
    # Segment durations minus the credited overlap sum exactly to each
    # request's end-to-end latency...
    assert verify_attribution(attributions,
                              overlap_total_ns=overlap_total) == []
    for attribution in attributions:
        assert math.isclose(attribution.attributed_ns,
                            attribution.latency_ns,
                            rel_tol=1e-9, abs_tol=1e-6)
    # ...and the per-request credits sum to the scheduler's counter.
    credited = math.fsum(a.overlap_ns for a in attributions)
    assert math.isclose(credited, overlap_total, rel_tol=1e-9,
                        abs_tol=1e-6)
    assert overlap_total > 0.0, "fig12 exists to demonstrate overlap"


def test_fig12_profile_renders(traced_fig12):
    spans = traced_fig12.tracer.spans
    overlap_total = traced_fig12.metrics.counter(
        "sched.interleave.overlap_ns").value
    profile = build_profile("fig12", spans,
                            overlap_total_ns=overlap_total)
    assert profile.invariant_problems == []
    assert profile.littles is not None
    assert profile.littles.consistent(1e-6)
    text = render_text(profile)
    assert "attribution invariant: holds" in text
    assert "interleave_hidden" in text
    html = render_html([profile])
    assert html.startswith("<!DOCTYPE html>")
    assert "fig12" in html
    assert "attribution invariant holds" in html
