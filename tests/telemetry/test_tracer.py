"""Tracer unit tests: null default, recording, scoping, combination."""

import pytest

from repro.sim import Simulator
from repro.telemetry import (
    NULL_TRACER,
    KernelEventRecorder,
    MultiTracer,
    RecordingTracer,
    Span,
    Tracer,
    combine,
    current_tracer,
    use_tracer,
)


class TestNullTracer:
    def test_disabled_by_default(self):
        assert NULL_TRACER.enabled is False
        assert current_tracer() is NULL_TRACER

    def test_hooks_are_noops(self):
        NULL_TRACER.emit("x", "t", 0.0, 1.0, foo=1)
        NULL_TRACER.instant("x", "t", 0.0)
        NULL_TRACER.kernel_event(0.0, "x")
        NULL_TRACER.command(object())

    def test_scope_allocates_nothing(self):
        # The null scope is one shared context manager, not a fresh
        # object per call — hot loops can enter scopes for free.
        assert NULL_TRACER.scope("a") is NULL_TRACER.scope("b")
        with NULL_TRACER.scope("a"):
            pass

    def test_base_class_methods_not_overridden_elsewhere(self):
        # Every hot path guards on `.enabled`; the base hooks return
        # None without constructing spans.
        assert Tracer.emit(NULL_TRACER, "x", "t", 0.0, 1.0) is None

    def test_simulator_defaults_to_null_tracer(self):
        sim = Simulator()
        assert sim.tracer is NULL_TRACER


class TestRecordingTracer:
    def test_emit_records_span(self):
        tracer = RecordingTracer()
        tracer.emit("burst", "ch0.bus", 10.0, 25.0, row=3)
        (span,) = tracer.spans
        assert span.name == "burst"
        assert span.track == "ch0.bus"
        assert span.start_ns == 10.0
        assert span.end_ns == 25.0
        assert span.args == {"row": 3}
        assert span.span_id == 1

    def test_span_ids_are_unique_and_increasing(self):
        tracer = RecordingTracer()
        tracer.emit("a", "t", 0.0, 1.0)
        tracer.instant("b", "t", 2.0)
        tracer.emit("c", "t", 3.0, 4.0)
        ids = [tracer.spans[0].span_id, tracer.instants[0].span_id,
               tracer.spans[1].span_id]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_scopes_nest_with_slashes(self):
        tracer = RecordingTracer()
        with tracer.scope("outer"):
            tracer.emit("a", "t", 0.0, 1.0)
            with tracer.scope("inner"):
                tracer.emit("b", "t", 1.0, 2.0)
            tracer.emit("c", "t", 2.0, 3.0)
        tracer.emit("d", "t", 3.0, 4.0)
        assert [s.scope for s in tracer.spans] == [
            "outer", "outer/inner", "outer", ""]

    def test_kernel_events_off_by_default(self):
        tracer = RecordingTracer()
        tracer.kernel_event(1.0, "Timeout")
        assert tracer.kernel_events == []
        keeper = RecordingTracer(record_kernel_events=True)
        keeper.kernel_event(1.0, "Timeout")
        assert keeper.kernel_events == [(1.0, "Timeout")]

    def test_len_counts_spans_and_instants(self):
        tracer = RecordingTracer()
        tracer.emit("a", "t", 0.0, 1.0)
        tracer.instant("b", "t", 1.0)
        assert len(tracer) == 2

    def test_span_to_dict_round_trip(self):
        span = Span(name="a", track="t", start_ns=1.0, end_ns=2.0,
                    scope="s", asynchronous=True, span_id=7,
                    args={"k": 1})
        assert Span(**span.to_dict()) == span


class TestKernelEventRecorder:
    def test_records_seed_trace_format(self):
        sink = []
        recorder = KernelEventRecorder(sink)
        assert recorder.enabled
        recorder.kernel_event(5.0, "Timeout:worker")
        recorder.emit("ignored", "t", 0.0, 1.0)  # spans are dropped
        assert sink == [(5.0, "Timeout:worker")]


class TestCombine:
    def test_nothing_active_gives_null(self):
        assert combine() is NULL_TRACER
        assert combine(None, NULL_TRACER) is NULL_TRACER

    def test_single_active_passes_through(self):
        tracer = RecordingTracer()
        assert combine(None, tracer) is tracer

    def test_duplicates_collapse(self):
        tracer = RecordingTracer()
        assert combine(tracer, tracer) is tracer

    def test_two_active_fan_out(self):
        left, right = RecordingTracer(), RecordingTracer()
        multi = combine(left, right)
        assert isinstance(multi, MultiTracer)
        multi.emit("a", "t", 0.0, 1.0)
        multi.instant("b", "t", 1.0)
        multi.command("rec")
        assert len(left.spans) == len(right.spans) == 1
        assert len(left.instants) == len(right.instants) == 1
        assert left.commands == right.commands == ["rec"]

    def test_multi_scope_enters_all(self):
        left, right = RecordingTracer(), RecordingTracer()
        multi = combine(left, right)
        with multi.scope("run"):
            multi.emit("a", "t", 0.0, 1.0)
        assert left.spans[0].scope == "run"
        assert right.spans[0].scope == "run"

    def test_multi_of_disabled_children_is_disabled(self):
        assert not MultiTracer([NULL_TRACER]).enabled
        assert not MultiTracer([NULL_TRACER, NULL_TRACER]).enabled
        assert MultiTracer([NULL_TRACER, RecordingTracer()]).enabled

    def test_all_null_multi_short_circuits_to_null(self):
        # A MultiTracer wrapping only disabled tracers must not defeat
        # the `tracer.enabled` fast path on the hot emit sites.
        assert combine(MultiTracer([NULL_TRACER]), None) is NULL_TRACER

    def test_multi_with_one_live_child_unwraps(self):
        recording = RecordingTracer()
        multi = MultiTracer([recording, NULL_TRACER])
        assert combine(multi, None) is recording

    def test_nested_multi_flattens(self):
        left, right, third = (RecordingTracer(), RecordingTracer(),
                              RecordingTracer())
        flattened = combine(MultiTracer([left, right]), third)
        assert isinstance(flattened, MultiTracer)
        assert set(flattened.tracers) == {left, right, third}
        for tracer in flattened.tracers:
            assert not isinstance(tracer, MultiTracer)


class TestAmbientTracer:
    def test_use_tracer_scopes_installation(self):
        tracer = RecordingTracer()
        assert current_tracer() is NULL_TRACER
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_nested_use_restores_outer(self):
        outer, inner = RecordingTracer(), RecordingTracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_simulator_binds_ambient_at_construction(self):
        tracer = RecordingTracer()
        with use_tracer(tracer):
            sim = Simulator()
        assert sim.tracer is tracer
        # Construction outside the scope is unaffected.
        assert Simulator().tracer is NULL_TRACER

    def test_explicit_and_ambient_combine(self):
        explicit, ambient = RecordingTracer(), RecordingTracer()
        with use_tracer(ambient):
            sim = Simulator(tracer=explicit)
        assert isinstance(sim.tracer, MultiTracer)
        assert set(sim.tracer.tracers) == {explicit, ambient}


class TestKernelEventLabels:
    def test_anonymous_event_labeled_with_owning_process(self):
        tracer = RecordingTracer(record_kernel_events=True)
        sim = Simulator(tracer=tracer)
        gate = sim.event()  # anonymous: label degrades to the waiter

        def opener():
            yield sim.timeout(1.0)
            gate.succeed()

        def waiter():
            yield gate

        sim.process(opener(), name="opener")
        sim.process(waiter(), name="waiter")
        sim.run()
        labels = [label for _, label in tracer.kernel_events]
        assert "Event:waiter" in labels

    def test_named_events_keep_their_name(self):
        tracer = RecordingTracer(record_kernel_events=True)
        sim = Simulator(tracer=tracer)
        done = sim.event("custom.done")

        def worker():
            yield sim.timeout(1.0)
            done.succeed()

        def waiter():
            yield done

        sim.process(worker(), name="w")
        sim.process(waiter(), name="v")
        sim.run()
        labels = [label for _, label in tracer.kernel_events]
        assert "custom.done" in labels

    def test_timestamps_match_simulated_time(self):
        tracer = RecordingTracer(record_kernel_events=True)
        sim = Simulator(tracer=tracer)

        def worker():
            yield sim.timeout(7.5)

        sim.process(worker(), name="w")
        sim.run()
        assert any(ts == pytest.approx(7.5)
                   for ts, _ in tracer.kernel_events)
