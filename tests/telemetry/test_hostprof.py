"""Host wall-clock profiler: attribution, census, exports, CLI."""

import itertools
import json

import pytest

from repro.experiments import cli
from repro.experiments.parallel import run_experiments_parallel
from repro.experiments.runner import ExperimentConfig
from repro.sim import Simulator
from repro.sim.hostprof import current_hostprof, use_hostprof
from repro.telemetry.__main__ import main as telemetry_main
from repro.telemetry.bench import (
    BenchMetric,
    BenchReport,
    bench_filename,
    has_host_metrics,
    host_conflicts,
    host_environment,
    write_bench,
)
from repro.telemetry.dashboard import render_html
from repro.telemetry.fragments import capture_hostprof, merge_hostprof
from repro.telemetry.hostprof import (
    KERNEL_BUCKET,
    HostProfiler,
    classify_event,
    collapsed_stacks,
    load_speedscope,
    parse_collapsed,
    render_flame,
    render_summary,
    speedscope_document,
    validate_speedscope,
    write_collapsed,
    write_hostprof,
    write_speedscope,
)
from repro.telemetry.timeseries import supports_unicode


def _stub_clock(step: int = 100):
    """Deterministic monotonic clock: 0, step, 2*step, ..."""
    counter = itertools.count(0, step)
    return lambda: next(counter)


def _module_worker(env):
    yield env.timeout(5)


def _drive(profiler):
    """Two processes and a pure-kernel event under the profiler."""
    with use_hostprof(profiler):
        sim = Simulator()

        def worker(env, rounds):
            for _ in range(rounds):
                yield env.timeout(10)

        sim.process(worker(sim, 3), name="alpha")
        sim.process(worker(sim, 2), name="beta")
        orphan = sim.event("orphan")
        orphan.succeed()
        sim.run()
    return sim


class TestAttribution:
    def test_buckets_tile_the_run(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        # Stubbed clock: begin/end bracket everything, so the bucket
        # sum must equal the whole bracketed interval exactly.
        assert profiler.total_ns() == profiler.run_ns
        assert profiler.attributed_fraction(profiler.run_ns) == 1.0
        assert profiler.runs == 1

    def test_kernel_gaps_land_in_the_kernel_bucket(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        assert profiler.buckets[KERNEL_BUCKET] > 0

    def test_process_buckets_carry_component_and_phase(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        processes = {key[1] for key in profiler.buckets}
        assert {"alpha", "beta"} <= processes
        # Nested generator: qualname "_drive.<locals>.worker" splits to
        # component "_drive" (the enclosing scope), phase "worker".
        assert any(key[0] == "_drive" and key[2] == "worker"
                   for key in profiler.buckets)

    def test_module_level_generator_is_toplevel(self):
        profiler = HostProfiler(clock=_stub_clock())
        with use_hostprof(profiler):
            sim = Simulator()
            sim.process(_module_worker(sim), name="solo")
            sim.run()
        assert any(key[0] == "toplevel" and key[2] == "_module_worker"
                   for key in profiler.buckets)

    def test_stub_clock_exports_are_reproducible(self):
        runs = []
        for _ in range(2):
            profiler = HostProfiler(clock=_stub_clock())
            _drive(profiler)
            runs.append((collapsed_stacks(profiler),
                         json.dumps(speedscope_document(profiler),
                                    sort_keys=True)))
        assert runs[0] == runs[1]

    def test_explicit_constructor_hook_wins_over_ambient(self):
        explicit = HostProfiler(clock=_stub_clock())
        ambient = HostProfiler(clock=_stub_clock())

        def noop(env):
            yield env.timeout(1)

        with use_hostprof(ambient):
            sim = Simulator(hostprof=explicit)
            sim.process(noop(sim), name="noop")
            sim.run()
        assert explicit.runs == 1
        assert ambient.runs == 0

    def test_no_profiler_means_no_hook(self):
        assert current_hostprof() is None
        sim = Simulator()
        assert sim.hostprof is None


class TestCensus:
    def test_census_counts_and_batches(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        census = profiler.census()
        # 2 bootstraps + 5 timeouts + 1 orphan Event + 2 Process
        # completions, all admitted through the schedule census too.
        assert census["dispatches"]["Timeout"] == 5
        assert census["dispatches"]["bootstrap"] == 2
        assert sum(census["dispatches"].values()) == \
            sum(census["schedules"].values())
        assert sum(census["batch_sizes"]) == \
            sum(census["dispatches"].values())

    def test_census_is_host_time_free(self):
        fast = HostProfiler(clock=_stub_clock(100))
        slow = HostProfiler(clock=_stub_clock(7777))
        _drive(fast)
        _drive(slow)
        assert fast.census() == slow.census()
        assert fast.total_ns() != slow.total_ns()

    def test_classify_event_kind_specials(self):
        profiler = HostProfiler(clock=_stub_clock())
        sim = _drive(profiler)
        # Named kernel-glue plain events profile as their role; with no
        # waiting process they fall back to the kernel-idle bucket.
        boot = sim.event("alpha.bootstrap")
        assert classify_event(boot, []) == (
            "kernel", "-", "idle", "bootstrap")
        plain = sim.event("some.event")
        assert classify_event(plain, [])[3] == "Event"


class TestMergeAndFragments:
    def test_merge_is_associative(self):
        parts = []
        for step in (100, 300, 900):
            profiler = HostProfiler(clock=_stub_clock(step))
            _drive(profiler)
            parts.append(profiler.to_payload())

        def fold(order):
            target = HostProfiler()
            for payload in order:
                target.merge(HostProfiler.from_payload(payload))
            return target.to_payload()

        left = fold([parts[0], parts[1], parts[2]])
        pre = HostProfiler.from_payload(parts[1])
        pre.merge(HostProfiler.from_payload(parts[2]))
        right = HostProfiler.from_payload(parts[0])
        right.merge(pre)
        assert left == right.to_payload()

    def test_payload_round_trip(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        clone = HostProfiler.from_payload(profiler.to_payload())
        assert clone.to_payload() == profiler.to_payload()
        assert clone.census() == profiler.census()

    def test_fragment_capture_and_merge(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        fragment = capture_hostprof(profiler)
        assert len(fragment) == len(profiler.buckets)
        target = HostProfiler()
        merge_hostprof(target, fragment)
        assert target.census() == profiler.census()

    def test_serial_and_sharded_census_identical(self):
        config = ExperimentConfig(scale=0.05, seed=1, agents=3,
                                  workloads=("gemver", "doitg"))
        censuses = []
        for jobs in (1, 2):
            profiler = HostProfiler()
            with use_hostprof(profiler):
                run_experiments_parallel(["fig12"], config, jobs=jobs)
            censuses.append(profiler.census())
        assert censuses[0] == censuses[1]


class TestExports:
    def test_collapsed_round_trip(self, tmp_path):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        path = tmp_path / "profile.collapsed"
        write_collapsed(profiler, str(path))
        parsed = parse_collapsed(path.read_text().splitlines())
        assert parsed == profiler.buckets

    def test_parse_collapsed_rejects_malformed(self):
        with pytest.raises(ValueError, match="not a collapsed stack"):
            parse_collapsed(["a;b;c;d notanumber"])
        with pytest.raises(ValueError, match="4 fields"):
            parse_collapsed(["a;b 12"])

    def test_speedscope_document_validates(self, tmp_path):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        path = tmp_path / "profile.json"
        write_speedscope(profiler, str(path))
        document = load_speedscope(str(path))
        assert validate_speedscope(document) == []
        profile = document["profiles"][0]
        assert sum(profile["weights"]) == profiler.total_ns()
        assert len(profile["samples"]) == len(profiler.buckets)

    def test_validate_speedscope_flags_corruption(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        document = speedscope_document(profiler)
        document["profiles"][0]["weights"][0] += 1
        assert any("weights sum" in problem
                   for problem in validate_speedscope(document))
        document = speedscope_document(profiler)
        document["profiles"][0]["samples"][0] = [999]
        assert any("unknown frames" in problem
                   for problem in validate_speedscope(document))
        assert validate_speedscope([]) == ["document is not a JSON object"]

    def test_write_hostprof_suffix_dispatch(self, tmp_path):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        assert write_hostprof(
            profiler, str(tmp_path / "p.collapsed")) == "collapsed"
        assert write_hostprof(
            profiler, str(tmp_path / "p.json")) == "speedscope"
        assert validate_speedscope(
            load_speedscope(str(tmp_path / "p.json"))) == []

    def test_bench_metrics_are_neutral_ns(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        metrics = profiler.bench_metrics()
        assert metrics["host_ns.total"].value == float(profiler.total_ns())
        assert all(metric.better == "neutral" and metric.unit == "ns"
                   for metric in metrics.values())
        assert "host_ns.kernel" in metrics


class TestRendering:
    def test_render_flame_and_summary(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        flame = render_flame(speedscope_document(profiler), top=3)
        assert "hostprof:" in flame and "█" in flame
        assert "more bucket(s)" in flame
        summary = render_summary(profiler)
        assert "census:" in summary and "by component:" in summary

    def test_ascii_mode_uses_no_unicode(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        flame = render_flame(speedscope_document(profiler), ascii_=True)
        summary = render_summary(profiler, ascii_=True)
        for text in (flame, summary):
            text.encode("ascii")  # raises if any unicode glyph leaked

    def test_supports_unicode_detection(self, monkeypatch):
        monkeypatch.setenv("TERM", "dumb")
        assert not supports_unicode()
        monkeypatch.setenv("TERM", "xterm-256color")

        class Stream:
            encoding = "ascii"

        assert not supports_unicode(Stream())
        Stream.encoding = "utf-8"
        assert supports_unicode(Stream())

    def test_dashboard_hostprof_section(self):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        page = render_html([], hostprof=profiler.to_payload())
        assert "host profile" in page
        assert "kernel / - / drain / -" in page
        assert "host profile" not in render_html([])


class TestExperimentsCli:
    def test_hostprof_flag_writes_speedscope(self, tmp_path, capsys):
        out = tmp_path / "flame.json"
        assert cli.main(["fig12", "--quick",
                         "--hostprof", str(out)]) == 0
        assert validate_speedscope(load_speedscope(str(out))) == []
        captured = capsys.readouterr().out
        assert "host profile (speedscope) written" in captured
        assert "census:" in captured

    def test_hostprof_flag_writes_collapsed(self, tmp_path, capsys):
        out = tmp_path / "flame.collapsed"
        assert cli.main(["fig12", "--quick",
                         "--hostprof", str(out)]) == 0
        assert parse_collapsed(out.read_text().splitlines())
        assert "host profile (collapsed) written" in \
            capsys.readouterr().out

    def test_hostprof_with_jobs_merges_fragments(self, tmp_path, capsys):
        out = tmp_path / "flame.json"
        assert cli.main(["fig12,fig13", "--quick", "--jobs", "2",
                         "--hostprof", str(out)]) == 0
        document = load_speedscope(str(out))
        assert validate_speedscope(document) == []
        assert document["profiles"][0]["weights"]

    def test_report_includes_hostprof_section(self, tmp_path, capsys):
        report = tmp_path / "dash.html"
        prof = tmp_path / "flame.json"
        assert cli.main(["fig12", "--quick", "--report", str(report),
                         "--hostprof", str(prof)]) == 0
        assert "host profile" in report.read_text()


class TestTelemetryCli:
    def _profile(self, tmp_path):
        profiler = HostProfiler(clock=_stub_clock())
        _drive(profiler)
        path = tmp_path / "profile.json"
        write_speedscope(profiler, str(path))
        return path

    def test_flame_renders_valid_profile(self, tmp_path, capsys):
        path = self._profile(tmp_path)
        assert telemetry_main(["flame", str(path), "--top", "2"]) == 0
        assert "hostprof:" in capsys.readouterr().out

    def test_flame_rejects_missing_and_invalid(self, tmp_path, capsys):
        assert telemetry_main(["flame", str(tmp_path / "nope.json")]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"$schema": "wrong"}))
        assert telemetry_main(["flame", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "$schema" in err

    def test_flame_ascii_flag(self, tmp_path, capsys):
        path = self._profile(tmp_path)
        assert telemetry_main(["flame", str(path), "--ascii"]) == 0
        capsys.readouterr().out.encode("ascii")

    def test_compare_json_payload_and_exit_codes(self, tmp_path, capsys):
        base = BenchReport(
            provenance={"git_sha": "aaa", "host": host_environment()},
            metrics={"m": BenchMetric(value=10.0, better="lower")})
        good = BenchReport(
            provenance={"git_sha": "bbb", "host": host_environment()},
            metrics={"m": BenchMetric(value=10.0, better="lower")})
        bad = BenchReport(
            provenance={"git_sha": "ccc", "host": host_environment()},
            metrics={"m": BenchMetric(value=20.0, better="lower")})
        paths = {}
        for tag, report in (("base", base), ("good", good),
                            ("bad", bad)):
            paths[tag] = tmp_path / bench_filename(tag)
            write_bench(report, paths[tag])
        assert telemetry_main(["compare", str(paths["base"]),
                               str(paths["good"]), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.bench-compare/1"
        assert payload["regressions"] == 0
        assert payload["deltas"][0]["verdict"] == "unchanged"
        assert telemetry_main(["compare", str(paths["base"]),
                               str(paths["bad"]), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 1

    def test_compare_warns_on_cross_host_host_metrics(self, tmp_path,
                                                      capsys):
        this_host = host_environment()
        other_host = dict(this_host, machine="riscv128", cpu_count=999)
        base = BenchReport(
            provenance={"git_sha": "aaa", "host": other_host},
            metrics={"host_ns.total": BenchMetric(value=5.0,
                                                  better="neutral")})
        cand = BenchReport(
            provenance={"git_sha": "bbb", "host": this_host},
            metrics={"host_ns.total": BenchMetric(value=9.0,
                                                  better="neutral")})
        base_path = tmp_path / "base.json"
        cand_path = tmp_path / "cand.json"
        write_bench(base, base_path)
        write_bench(cand, cand_path)
        # Neutral metrics never regress; host mismatch only warns.
        assert telemetry_main(["compare", str(base_path),
                               str(cand_path)]) == 0
        assert "advisory" in capsys.readouterr().err
        assert telemetry_main(["compare", str(base_path),
                               str(cand_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["warnings"]

    def test_host_conflict_helpers(self):
        same = BenchReport(provenance={"host": {"machine": "x"}},
                           metrics={})
        other = BenchReport(provenance={"host": {"machine": "y"}},
                            metrics={})
        hostless = BenchReport(provenance={}, metrics={})
        assert host_conflicts(same, other) == [
            "host machine: baseline 'x' vs candidate 'y'"]
        assert host_conflicts(same, same) == []
        assert host_conflicts(same, hostless) == []
        assert not has_host_metrics(same, other)
        with_host = BenchReport(
            provenance={},
            metrics={"host_ns.total": BenchMetric(value=1.0,
                                                  better="neutral")})
        assert has_host_metrics(same, with_host)
