"""Parse-time validation of the service traffic plan."""

import dataclasses
import math

import pytest

from repro.service import ServiceConfig, TENANT_CLASSES, tenant_class


class TestFieldValidation:
    """Every nonsense value raises ValueError naming the field."""

    @pytest.mark.parametrize("field,value", [
        ("rate_rps", -1.0),
        ("rate_rps", 0.0),
        ("rate_rps", float("nan")),
        ("rate_rps", float("inf")),
        ("duration_ns", 0.0),
        ("duration_ns", float("nan")),
        ("deadline_ns", -5.0),
        ("deadline_ns", float("nan")),
        ("sweep_interval_ns", 0.0),
        ("burst_ns", -1.0),
        ("diurnal_period_ns", 0.0),
        ("retry_backoff_ns", 0.0),
        ("retry_backoff_ns", float("nan")),
        ("backoff_multiplier", 0.5),
        ("read_fraction", 1.5),
        ("read_fraction", float("nan")),
        ("burst_fraction", -0.1),
        ("diurnal_amplitude", 1.0),
        ("burst_factor", 0.9),
        ("rogue_factor", 0.0),
        ("brownout_high", 1.5),
        ("brownout_low", 0.0),
        ("tenants", 0),
        ("queue_depth", 0),
        ("workers", 0),
        ("request_bytes", 0),
        ("shared_queue", 2),
    ])
    def test_bad_value_names_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            ServiceConfig(**{field: value})

    def test_negative_retry_budget_names_field(self):
        with pytest.raises(ValueError, match="retry_budget"):
            ServiceConfig(retry_budget=-1)

    def test_unknown_arrival_kind(self):
        with pytest.raises(ValueError, match="arrival"):
            ServiceConfig(arrival="lumpy")

    def test_rogue_tenants_bounded_by_tenants(self):
        with pytest.raises(ValueError, match="rogue_tenants"):
            ServiceConfig(tenants=3, rogue_tenants=4)

    def test_brownout_low_must_be_below_high(self):
        with pytest.raises(ValueError, match="brownout_low"):
            ServiceConfig(brownout_high=0.5, brownout_low=0.5)

    def test_footprint_must_hold_one_request(self):
        with pytest.raises(ValueError, match="footprint_bytes"):
            ServiceConfig(request_bytes=512, footprint_bytes=256)

    def test_default_plan_is_valid(self):
        config = ServiceConfig()
        assert config.tenants == 6
        assert config.arrival == "poisson"


class TestParse:
    """The ``--service`` key=value spec parser."""

    def test_aliases_map_to_fields(self):
        config = ServiceConfig.parse(
            "seed=7,rate=2e6,deadline=4e4,retries=3,queue=16,"
            "backoff=500,size=256,sweep_ns=2500")
        assert config.seed == 7
        assert config.rate_rps == 2e6
        assert config.deadline_ns == 4e4
        assert config.retry_budget == 3
        assert config.queue_depth == 16
        assert config.retry_backoff_ns == 500.0
        assert config.request_bytes == 256
        assert config.sweep_interval_ns == 2500.0

    def test_full_field_names_accepted(self):
        config = ServiceConfig.parse(
            "rate_rps=1e6,arrival=mmpp,burst_factor=4")
        assert config.rate_rps == 1e6
        assert config.arrival == "mmpp"
        assert config.burst_factor == 4.0

    def test_unknown_key_lists_known_keys(self):
        with pytest.raises(ValueError, match="unknown service-plan key"):
            ServiceConfig.parse("bogus=1")
        with pytest.raises(ValueError, match="rate"):
            ServiceConfig.parse("bogus=1")

    def test_non_number_names_field(self):
        with pytest.raises(ValueError,
                           match="rate_rps expects a number"):
            ServiceConfig.parse("rate=lots")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            ServiceConfig.parse("rate")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ServiceConfig.parse("   ")

    def test_parsed_values_still_validated(self):
        with pytest.raises(ValueError, match="deadline_ns"):
            ServiceConfig.parse("deadline=-1")
        with pytest.raises(ValueError, match="rate_rps"):
            ServiceConfig.parse("rate=nan")


class TestDerived:
    """Derived rates and SLOs."""

    def test_rate_per_ns_conversion(self):
        assert ServiceConfig(rate_rps=1e9).rate_per_ns == 1.0

    def test_fair_share_and_rogue_scaling(self):
        config = ServiceConfig(tenants=4, rate_rps=4e6, rogue_tenants=1,
                               rogue_factor=10.0)
        share = config.rate_per_ns / 4
        assert config.tenant_rate_per_ns(0) == pytest.approx(10 * share)
        assert config.tenant_rate_per_ns(1) == pytest.approx(share)

    def test_tenant_class_cycle(self):
        names = [tenant_class(t).name for t in range(6)]
        assert names == ["premium", "standard", "batch",
                         "premium", "standard", "batch"]

    def test_slo_scales_deadline(self):
        config = ServiceConfig(deadline_ns=1000.0)
        premium, standard, batch = TENANT_CLASSES
        assert config.slo_p99_ns(premium) == 500.0
        assert config.slo_p99_ns(standard) == 1000.0
        assert config.slo_p99_ns(batch) == 2000.0

    def test_shed_ranks_protect_premium(self):
        ranks = {cls.name: cls.shed_rank for cls in TENANT_CLASSES}
        assert ranks["batch"] < ranks["standard"] < ranks["premium"]

    def test_config_is_hashable_and_frozen(self):
        config = ServiceConfig()
        hash(config)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 1

    def test_no_nan_slips_through_every_float_field(self):
        for field in dataclasses.fields(ServiceConfig):
            if field.type not in ("float", float):
                continue
            with pytest.raises(ValueError, match=field.name):
                ServiceConfig(**{field.name: math.nan})
