"""Service front end against the real PRAM subsystem under faults.

End-to-end checks that the :class:`RequestStatus` severity lattice
propagates from the device's fault machinery through the service retry
path into the tenant outcome ledger.
"""

import dataclasses

import pytest

from repro.controller import PramSubsystem, SchedulerPolicy
from repro.faults.plan import FaultConfig
from repro.service import ServiceConfig, ServiceFrontend
from repro.sim import Simulator

CONFIG = ServiceConfig(seed=9, tenants=3, rate_rps=3e5,
                       duration_ns=100_000.0, deadline_ns=1e6,
                       workers=4, retry_budget=4,
                       read_fraction=0.5)


def run_under_faults(config: ServiceConfig, faults: FaultConfig):
    sim = Simulator()
    subsystem = PramSubsystem(sim, policy=SchedulerPolicy.FINAL,
                              faults=faults)
    frontend = ServiceFrontend(sim, subsystem, config)
    return frontend.run()


def test_corrected_reads_surface_in_the_ledger():
    # Aggressive single-bit read upsets: SEC-DED corrects them and the
    # CORRECTED status must reach the tenant ledger, not collapse to OK.
    plan = FaultConfig(seed=2, read_flip_probability=0.05)
    result = run_under_faults(CONFIG, plan)
    totals = result.totals()
    assert totals["corrected"] > 0
    assert totals["failed"] == 0
    # Corrected completions are goodput and carry latency samples.
    assert result.merged_sketch().count == result.goodput


def test_degraded_reads_surface_in_the_ledger():
    # Frequent double flips defeat SEC-DED: detected-uncorrectable
    # reads complete DEGRADED.
    plan = FaultConfig(seed=2, read_flip_probability=0.2,
                       read_double_flip_probability=0.9)
    result = run_under_faults(CONFIG, plan)
    assert result.totals()["degraded"] > 0


def test_program_failures_exercise_the_retry_path():
    # Transient program failures: the device retries first (spending
    # the composed budget), rows retire onto spares, and what remains
    # transient may be replayed by the service within its share.
    plan = FaultConfig(seed=2, program_fail_probability=0.2,
                       max_program_retries=1,
                       spare_rows_per_partition=2)
    config = dataclasses.replace(CONFIG, retry_budget=4)
    result = run_under_faults(config, plan)
    totals = result.totals()
    assert sum(totals.values()) == result.offered
    assert result.goodput > 0


def test_device_budget_consumes_service_budget():
    # max_program_retries >= retry_budget: composition leaves the
    # service zero replays, so no service retry may ever fire.
    plan = FaultConfig(seed=2, program_fail_probability=0.3,
                       max_program_retries=4)
    config = dataclasses.replace(CONFIG, retry_budget=4)
    result = run_under_faults(config, plan)
    assert sum(stats.retries for stats in result.tenants) == 0


def test_faulted_service_runs_repeat_identically():
    plan = FaultConfig(seed=2, read_flip_probability=0.01,
                       program_fail_probability=0.05,
                       max_program_retries=1,
                       spare_rows_per_partition=1)
    first = run_under_faults(CONFIG, plan)
    second = run_under_faults(CONFIG, plan)
    assert first.totals() == second.totals()
    assert first.elapsed_ns == second.elapsed_ns
    assert ([s.retries for s in first.tenants]
            == [s.retries for s in second.tenants])


def test_null_fault_plan_matches_no_plan():
    null = FaultConfig(seed=5)
    with_null = run_under_faults(CONFIG, null)
    without = run_under_faults(CONFIG, None)
    assert with_null.totals() == without.totals()
    assert with_null.elapsed_ns == without.elapsed_ns
