"""Front-end behavior against a scripted fixed-latency backend.

A stub :class:`~repro.service.frontend.ServiceBackend` replaces the
PRAM subsystem so admission control, brownout, deadlines, and the
retry path can be exercised with exact, hand-computable outcomes.
"""

import dataclasses
import typing

import pytest

from repro.controller.request import MemoryRequest, Op, RequestStatus
from repro.faults.plan import FaultConfig, compose_service_retries
from repro.service import (
    ServiceConfig,
    ServiceFrontend,
    ServiceRequest,
    outcome_summary,
    tenant_class,
)
from repro.sim import Simulator


class StubBackend:
    """Fixed-latency backend with a scripted outcome tape.

    ``outcomes`` is consumed one entry per submit: each entry is a
    status or a ``(status, permanent)`` pair; when the tape runs dry
    every further submit completes OK.
    """

    def __init__(self, sim: Simulator, latency: float = 100.0,
                 outcomes: typing.Sequence = (),
                 fault_config: typing.Optional[FaultConfig] = None,
                 pressure: float = 0.0) -> None:
        self.sim = sim
        self.latency = latency
        self.fault_config = fault_config
        self.pressure = pressure
        self.submits = 0
        self._tape = list(outcomes)

    def submit(self, request: MemoryRequest) -> typing.Generator:
        self.submits += 1
        yield self.sim.timeout(self.latency)
        if self._tape:
            entry = self._tape.pop(0)
            if isinstance(entry, tuple):
                status, permanent = entry
                request.fault_permanent = permanent
            else:
                status = entry
            request.status = status

    def backpressure(self) -> float:
        return self.pressure


BASE = ServiceConfig(seed=5, tenants=3, rate_rps=1e6,
                     duration_ns=50_000.0, queue_depth=4, workers=2,
                     deadline_ns=10_000.0, retry_budget=2,
                     retry_backoff_ns=100.0)


def run_frontend(config=BASE, **backend_kwargs):
    sim = Simulator()
    backend = StubBackend(sim, **backend_kwargs)
    frontend = ServiceFrontend(sim, backend, config)
    return frontend.run(), backend


def test_everything_completes_at_light_load():
    result, backend = run_frontend()
    totals = result.totals()
    assert totals["ok"] == result.offered > 0
    assert totals["shed"] == totals["timeout"] == totals["failed"] == 0
    assert backend.submits == result.offered
    assert outcome_summary(totals) == "all ok"


def test_offered_ledger_is_conserved():
    # Slow backend, tight deadline: every offered request still lands
    # in exactly one terminal bucket.
    config = dataclasses.replace(BASE, rate_rps=4e6, workers=1,
                                 queue_depth=2, deadline_ns=2_000.0)
    result, _ = run_frontend(config, latency=1_500.0)
    totals = result.totals()
    assert sum(totals.values()) == result.offered
    assert totals["shed"] > 0 or totals["timeout"] > 0


def test_queue_full_sheds_instead_of_queueing():
    # One worker stuck in a long submit; depth-1 queues overflow fast.
    config = dataclasses.replace(BASE, workers=1, queue_depth=1,
                                 rate_rps=4e6)
    result, _ = run_frontend(config, latency=30_000.0)
    shed = sum(stats.shed_queue for stats in result.tenants)
    assert shed > 0
    for stats in result.tenants:
        assert stats.offered == (stats.shed + stats.timeout
                                 + stats.goodput + stats.failed)


def test_brownout_sheds_batch_first_and_premium_never():
    # Saturate hard enough to hold the brownout ladder up: batch
    # (rank 0) must shed at admission, premium (rank 2) never.
    config = dataclasses.replace(BASE, tenants=6, workers=1,
                                 queue_depth=2, rate_rps=2e7,
                                 brownout_high=0.4, brownout_low=0.1)
    result, _ = run_frontend(config, latency=20_000.0)
    by_class = {}
    for stats in result.tenants:
        by_class.setdefault(stats.cls.name, 0)
        by_class[stats.cls.name] += stats.shed_brownout
    assert by_class["batch"] > 0
    assert by_class["premium"] == 0
    assert sum(result.brownout_ns[level]
               for level in result.brownout_ns if level > 0) > 0.0


def test_deadline_expires_queued_work_without_device_time():
    # Backend so slow nothing queued can start before its deadline:
    # the sweeper must expire it, not the backend.
    config = dataclasses.replace(BASE, workers=1, queue_depth=4,
                                 deadline_ns=1_000.0,
                                 sweep_interval_ns=500.0)
    result, backend = run_frontend(config, latency=40_000.0)
    expired = sum(stats.expired for stats in result.tenants)
    assert expired > 0
    # Device time was spent only on what actually dispatched.
    assert backend.submits < result.offered


def test_late_completion_counts_as_timeout_not_goodput():
    config = dataclasses.replace(BASE, rate_rps=2e5, workers=4,
                                 deadline_ns=500.0)
    result, _ = run_frontend(config, latency=800.0)
    totals = result.totals()
    assert result.offered > 0
    assert totals["ok"] == 0
    assert totals["timeout"] == result.offered
    assert sum(stats.late for stats in result.tenants) > 0


def serve_one(config, outcomes, fault_config=None, latency=10.0,
              deadline=1e6):
    """Push one hand-built request through the serve/retry path."""
    sim = Simulator()
    backend = StubBackend(sim, latency=latency, outcomes=outcomes,
                          fault_config=fault_config)
    frontend = ServiceFrontend(sim, backend, config)
    request = ServiceRequest(tenant=0, op=Op.READ, address=0,
                             arrival=0.0, deadline=deadline)
    sim.process(frontend._serve(request))
    sim.run()
    return frontend.stats[0], backend


class TestRetryPath:
    """Bounded, backoff-spaced retries and the composition contract."""

    def test_transient_failure_retried_to_success(self):
        stats, backend = serve_one(
            BASE, [RequestStatus.FAILED, RequestStatus.FAILED])
        assert backend.submits == 3
        assert stats.ok == 1
        assert stats.retries == 2

    def test_budget_exhaustion_fails_request(self):
        stats, backend = serve_one(BASE, [RequestStatus.FAILED] * 5)
        # budget 2 => 1 initial + 2 retries, then give up.
        assert backend.submits == 3
        assert stats.failed == 1
        assert stats.ok == 0

    def test_permanent_failure_never_retried(self):
        stats, backend = serve_one(BASE, [(RequestStatus.FAILED, True)])
        assert backend.submits == 1
        assert stats.failed == 1
        assert stats.retries == 0

    def test_device_retries_spend_the_service_budget(self):
        # The device layer already retries programs 2x, so the service
        # keeps budget - 2 attempts: composition, not multiplication.
        plan = FaultConfig(seed=1, max_program_retries=2)
        assert compose_service_retries(3, plan) == 1
        stats, backend = serve_one(BASE, [RequestStatus.FAILED] * 5,
                                   fault_config=plan)
        # service budget = max(0, 2 - 2) = 0: no service retry at all.
        assert backend.submits == 1
        assert stats.failed == 1

    def test_compose_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="retry budget"):
            compose_service_retries(-1, None)

    def test_backoff_grows_exponentially(self):
        # Two retries at backoff 100 * 2**attempt: completion time is
        # 3 submits + 100 + 200 of backoff exactly.
        stats, backend = serve_one(
            BASE, [RequestStatus.FAILED, RequestStatus.FAILED],
            latency=10.0)
        assert backend.sim.now == pytest.approx(3 * 10.0 + 100.0 + 200.0)

    def test_backoff_respects_deadline(self):
        # Deadline too tight for even one backoff: fail immediately
        # rather than retrying into certain lateness.
        config = dataclasses.replace(BASE, retry_backoff_ns=1_000.0)
        stats, backend = serve_one(config, [RequestStatus.FAILED] * 3,
                                   deadline=105.0)
        assert backend.submits == 1
        assert stats.failed == 1
        assert stats.retries == 0


class TestSeverityLattice:
    """RequestStatus propagation through the service retry path."""

    @pytest.mark.parametrize("status,bucket", [
        (RequestStatus.OK, "ok"),
        (RequestStatus.CORRECTED, "corrected"),
        (RequestStatus.DEGRADED, "degraded"),
    ])
    def test_non_failed_statuses_count_once(self, status, bucket):
        stats, _ = serve_one(BASE, [status])
        counts = stats.outcome_counts()
        assert counts[bucket] == 1
        assert sum(counts.values()) == 1
        # CORRECTED / DEGRADED are goodput: latency is sketched.
        assert stats.sketch.count == 1

    def test_corrected_not_retried(self):
        # CORRECTED is a *successful* completion on the lattice; the
        # retry path only fires on FAILED.
        stats, backend = serve_one(BASE, [RequestStatus.CORRECTED])
        assert backend.submits == 1
        assert stats.retries == 0
        assert stats.corrected == 1

    def test_retry_clears_transient_degradation(self):
        # FAILED then CORRECTED: the retry's own (fresh) request
        # carries the final status.
        stats, _ = serve_one(
            BASE, [RequestStatus.FAILED, RequestStatus.CORRECTED])
        assert stats.corrected == 1
        assert stats.retries == 1


def test_subsystem_backpressure_feeds_brownout():
    # Queue occupancy stays low, but the backend reports saturation:
    # the brownout controller must still climb.
    config = dataclasses.replace(BASE, tenants=6, brownout_high=0.9,
                                 brownout_low=0.2)
    result, _ = run_frontend(config, pressure=1.0)
    assert sum(result.brownout_ns[level]
               for level in result.brownout_ns if level > 0) > 0.0
    shed = sum(stats.shed_brownout for stats in result.tenants)
    assert shed > 0


def test_class_stats_structure():
    config = dataclasses.replace(BASE, tenants=6)
    result, _ = run_frontend(config)
    stats = result.class_stats()
    assert set(stats) == {"premium", "standard", "batch"}
    for name, cls_stats in stats.items():
        assert cls_stats.cls is tenant_class(
            {"premium": 0, "standard": 1, "batch": 2}[name])
        assert cls_stats.goodput == cls_stats.ok
        assert cls_stats.meets_slo in (True, False)
    assert (sum(s.offered for s in stats.values())
            == result.offered)


def test_shared_queue_mode_pools_capacity():
    config = dataclasses.replace(BASE, shared_queue=1)
    result, _ = run_frontend(config)
    assert result.totals()["ok"] == result.offered


def test_outcome_summary_contract():
    assert outcome_summary({}) == "all ok"
    assert outcome_summary(
        {"failed": 1, "shed": 2, "corrected": 3, "ok": 4}
    ) == "corrected=3, shed=2, failed=1"
    assert outcome_summary(
        {"ok": 4, "timeout": 1}, include_ok=True
    ) == "ok=4, timeout=1"
    with pytest.raises(ValueError, match="unknown outcome"):
        outcome_summary({"exploded": 1})
