"""Reproducibility of the service layer, serially and sharded.

Three layers of the guarantee:

* repeated in-process runs produce identical results (and the
  ``determinism`` marker diffs the kernel event traces of two runs);
* the CLI writes byte-identical reports serially and under
  ``--jobs 2`` for a fixed ``--service`` plan;
* the admission/dispatch path is *tie-break independent*: shuffling
  same-timestamp event order does not change any tenant's outcomes.
"""

import dataclasses
import typing

import pytest

from repro.analysis.racecheck import certify_tiebreak_independence
from repro.controller.request import MemoryRequest
from repro.experiments.cli import main
from repro.service import ServiceConfig, ServiceFrontend, ServiceResult
from repro.sim import Simulator

PLAN = ("seed=7,tenants=3,duration=30000,rate=8e5,queue=4,workers=2,"
        "deadline=20000")


class FixedLatencyBackend:
    """Deterministic stand-in subsystem for kernel-level replays."""

    fault_config = None

    def __init__(self, sim: Simulator, latency: float = 150.0) -> None:
        self.sim = sim
        self.latency = latency

    def submit(self, request: MemoryRequest) -> typing.Generator:
        yield self.sim.timeout(self.latency)

    def backpressure(self) -> float:
        return 0.0


def run_service(config: ServiceConfig) -> ServiceResult:
    sim = Simulator()
    return ServiceFrontend(sim, FixedLatencyBackend(sim), config).run()


def fingerprint(result: ServiceResult) -> typing.Dict:
    return {
        "totals": result.totals(),
        "elapsed": result.elapsed_ns,
        "brownout": result.brownout_ns,
        "per_tenant": [(s.tenant, s.offered, s.ok, s.shed, s.timeout,
                        s.failed, s.retries, s.sketch.count)
                       for s in result.tenants],
    }


@pytest.mark.determinism
def test_service_run_is_deterministic():
    # The plugin runs this twice and diffs the kernel event traces.
    run_service(ServiceConfig.parse(PLAN))


def test_repeated_runs_are_identical():
    config = ServiceConfig.parse(PLAN)
    assert fingerprint(run_service(config)) == fingerprint(
        run_service(config))


def test_overloaded_runs_are_identical():
    config = dataclasses.replace(ServiceConfig.parse(PLAN),
                                 rate_rps=8e6, deadline_ns=2_000.0)
    assert fingerprint(run_service(config)) == fingerprint(
        run_service(config))


def test_admission_path_is_tiebreak_independent():
    # Shuffling same-timestamp event order must not change outcomes:
    # workers are symmetric dispatch slots and accounting is keyed by
    # tenant, never by worker identity or wakeup order.
    config = dataclasses.replace(ServiceConfig.parse(PLAN),
                                 rate_rps=4e6, queue_depth=2)
    certificate = certify_tiebreak_independence(
        lambda: fingerprint(run_service(config)),
        subject="service admission queue",
        runs=4, seed=3, attest=False)
    assert certificate.independent, certificate.summary()


@pytest.mark.determinism
def test_cli_service_results_serial_vs_sharded(tmp_path, monkeypatch,
                                              capsys):
    monkeypatch.setenv("REPRO_GIT_SHA", "0000test")
    monkeypatch.setenv("REPRO_TIMESTAMP", "2026-01-01T00:00:00")
    serial_dir = tmp_path / "serial"
    sharded_dir = tmp_path / "sharded"
    assert main(["overload", "--quick", "--service", PLAN,
                 "--results", str(serial_dir)]) == 0
    assert main(["overload", "--quick", "--service", PLAN, "--jobs", "2",
                 "--results", str(sharded_dir)]) == 0
    capsys.readouterr()
    name = "service_overload.txt"
    serial = (serial_dir / name).read_bytes()
    assert serial
    assert (sharded_dir / name).read_bytes() == serial


def test_cli_rejects_bad_service_plan(capsys):
    assert main(["overload", "--quick", "--service", "rate=-1"]) == 2
    err = capsys.readouterr().err
    assert "invalid --service plan" in err
    assert "rate_rps" in err
