"""Seeded arrival synthesis: determinism, rates, and burstiness."""

import dataclasses

import pytest

from repro.controller.request import Op
from repro.service import ServiceConfig, merged_timeline, tenant_arrivals
from repro.service.arrivals import tenant_times

BASE = ServiceConfig(seed=11, tenants=3, rate_rps=2e6,
                     duration_ns=200_000.0)


class TestDeterminism:
    """Streams are pure functions of (seed, tenant, index)."""

    def test_repeat_synthesis_is_identical(self):
        assert merged_timeline(BASE) == merged_timeline(BASE)

    def test_one_tenant_independent_of_others(self):
        # Adding tenants (at the same per-tenant rate) must not
        # perturb an existing tenant's stream: draws are keyed by
        # (seed, category, tenant, index), never by global state.
        more = dataclasses.replace(BASE, tenants=6,
                                   rate_rps=BASE.rate_rps * 2)
        assert tenant_arrivals(BASE, 1) == tenant_arrivals(more, 1)

    def test_seed_changes_the_stream(self):
        other = dataclasses.replace(BASE, seed=12)
        assert merged_timeline(BASE) != merged_timeline(other)

    @pytest.mark.parametrize("arrival", ["poisson", "mmpp", "diurnal"])
    def test_every_process_is_reproducible(self, arrival):
        config = dataclasses.replace(BASE, arrival=arrival)
        assert merged_timeline(config) == merged_timeline(config)


class TestStreamShape:
    """Sanity of the synthesized traffic."""

    @pytest.mark.parametrize("arrival", ["poisson", "mmpp", "diurnal"])
    def test_times_inside_window_and_sorted(self, arrival):
        config = dataclasses.replace(BASE, arrival=arrival)
        timeline = merged_timeline(config)
        assert timeline
        times = [a.time for a in timeline]
        assert times == sorted(times)
        assert all(0.0 < t < config.duration_ns for t in times)

    @pytest.mark.parametrize("arrival", ["poisson", "mmpp", "diurnal"])
    def test_mean_rate_matches_configuration(self, arrival):
        # Long window so the law of large numbers has room to work.
        config = dataclasses.replace(BASE, arrival=arrival,
                                     duration_ns=2_000_000.0)
        offered = len(merged_timeline(config))
        expected = config.rate_per_ns * config.duration_ns
        assert offered == pytest.approx(expected, rel=0.15)

    def test_rogue_tenant_offers_a_multiple(self):
        config = dataclasses.replace(BASE, rogue_tenants=1,
                                     rogue_factor=10.0,
                                     duration_ns=1_000_000.0)
        rogue = len(tenant_times(config, 0))
        victim = len(tenant_times(config, 1))
        assert rogue > 5 * victim

    def test_mmpp_is_burstier_than_poisson(self):
        # Compare the dispersion (variance/mean of per-window counts):
        # ~1 for Poisson, >1 for the clustered MMPP stream.
        def dispersion(config):
            window = 5_000.0
            bins = int(config.duration_ns / window)
            counts = [0] * bins
            for time in tenant_times(config, 0):
                counts[min(int(time / window), bins - 1)] += 1
            mean = sum(counts) / bins
            var = sum((c - mean) ** 2 for c in counts) / bins
            return var / mean

        long = dataclasses.replace(BASE, duration_ns=2_000_000.0)
        bursty = dataclasses.replace(long, arrival="mmpp")
        assert dispersion(bursty) > 2.0 * dispersion(long)

    def test_addresses_aligned_and_in_footprint(self):
        for arrival in merged_timeline(BASE):
            assert arrival.address % BASE.request_bytes == 0
            assert 0 <= arrival.address < BASE.footprint_bytes
            assert arrival.op in (Op.READ, Op.WRITE)

    def test_read_fraction_respected(self):
        config = dataclasses.replace(BASE, duration_ns=2_000_000.0,
                                     read_fraction=0.75)
        timeline = merged_timeline(config)
        reads = sum(1 for a in timeline if a.op is Op.READ)
        assert reads / len(timeline) == pytest.approx(0.75, abs=0.05)

    def test_merged_order_is_total(self):
        keys = [(a.time, a.tenant) for a in merged_timeline(BASE)]
        assert len(keys) == len(set(keys))
