"""Workload spec and trace-generation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.isa import ComputeOp, LoadOp, StoreOp
from repro.workloads import (
    Category,
    POLYBENCH,
    WorkloadSpec,
    all_workloads,
    generate_traces,
    workload,
    workloads_in,
)
from repro.workloads.trace import BLOCK_BYTES, OUTPUT_BASE


class TestSuiteTable:
    def test_fifteen_workloads(self):
        assert len(POLYBENCH) == 15

    def test_paper_category_assignments(self):
        read = {w.name for w in workloads_in(Category.READ_INTENSIVE)}
        assert read == {"durbin", "dynpro", "gemver", "trisolv"}
        write = {w.name for w in workloads_in(Category.WRITE_INTENSIVE)}
        assert write == {"chol", "doitg", "lu", "seidel"}
        compute = {w.name for w in workloads_in(Category.COMPUTE_INTENSIVE)}
        assert compute == {"adi", "fdtdap", "floyd"}
        memory = {w.name for w in workloads_in(Category.MEMORY_INTENSIVE)}
        assert memory == {"jaco1D", "jaco2D", "regd", "trmm"}

    def test_write_intensive_have_high_write_ratios(self):
        for spec in workloads_in(Category.WRITE_INTENSIVE):
            assert spec.write_ratio >= 0.4, spec.name
            assert spec.is_write_heavy

    def test_read_intensive_have_low_write_ratios(self):
        for spec in workloads_in(Category.READ_INTENSIVE):
            assert spec.write_ratio <= 0.15, spec.name
            assert not spec.is_write_heavy

    def test_compute_intensive_have_high_ops_per_byte(self):
        floor = max(s.compute_ops_per_byte for s in all_workloads()
                    if s.category is not Category.COMPUTE_INTENSIVE)
        for spec in workloads_in(Category.COMPUTE_INTENSIVE):
            assert spec.compute_ops_per_byte > floor

    def test_memory_intensive_have_largest_footprints(self):
        memory_min = min(s.total_kb
                         for s in workloads_in(Category.MEMORY_INTENSIVE))
        read_max = max(s.total_kb
                       for s in workloads_in(Category.READ_INTENSIVE))
        assert memory_min > read_max

    def test_lookup_by_name(self):
        assert workload("gemver").name == "gemver"
        with pytest.raises(KeyError):
            workload("nonsense")

    def test_all_workloads_sorted(self):
        names = [w.name for w in all_workloads()]
        assert names == sorted(names)


class TestSpecValidation:
    def test_bad_footprint(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", "x", Category.READ_INTENSIVE,
                         input_kb=0, output_kb=0, compute_ops_per_byte=1.0)

    def test_bad_intensity(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", "x", Category.READ_INTENSIVE,
                         input_kb=1, output_kb=0, compute_ops_per_byte=0.0)

    def test_bad_reuse(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", "x", Category.READ_INTENSIVE,
                         input_kb=1, output_kb=0,
                         compute_ops_per_byte=1.0, reuse_factor=1.0)


class TestTraceGeneration:
    def test_deterministic_for_same_seed(self):
        spec = workload("gemver")
        a = generate_traces(spec, agents=3, scale=0.1, seed=7)
        b = generate_traces(spec, agents=3, scale=0.1, seed=7)
        assert a.traces == b.traces

    def test_different_seeds_differ_for_irregular(self):
        spec = workload("trmm")  # shuffled order
        a = generate_traces(spec, agents=2, scale=0.1, seed=1)
        b = generate_traces(spec, agents=2, scale=0.1, seed=2)
        assert a.traces != b.traces

    def test_regions_match_footprint(self):
        spec = workload("doitg")
        bundle = generate_traces(spec, agents=7, scale=1.0)
        assert bundle.input_region[0] == 0
        assert bundle.input_bytes == pytest.approx(
            spec.input_kb * 1024, rel=0.05)
        assert bundle.output_region[0] == OUTPUT_BASE
        assert bundle.output_bytes == pytest.approx(
            spec.output_kb * 1024, rel=0.05)

    def test_loads_stay_in_input_region(self):
        bundle = generate_traces(workload("gemver"), agents=4, scale=0.2)
        lo, size = bundle.input_region
        for trace in bundle.traces:
            for op in trace:
                if isinstance(op, LoadOp):
                    assert lo <= op.address < lo + size

    def test_stores_stay_in_output_region(self):
        bundle = generate_traces(workload("doitg"), agents=4, scale=0.2)
        lo, size = bundle.output_region
        for trace in bundle.traces:
            for op in trace:
                if isinstance(op, StoreOp):
                    assert lo <= op.address < lo + size

    def test_every_output_block_stored_exactly_once(self):
        bundle = generate_traces(workload("seidel"), agents=3, scale=0.2)
        stored = []
        for trace in bundle.traces:
            stored += [op.address for op in trace
                       if isinstance(op, StoreOp)]
        assert len(stored) == len(set(stored))
        assert len(stored) == bundle.output_bytes // BLOCK_BYTES

    def test_agents_cover_disjoint_input_slices(self):
        bundle = generate_traces(workload("jaco1D"), agents=4, scale=0.2)
        seen = [set() for _ in bundle.traces]
        for i, trace in enumerate(bundle.traces):
            for op in trace:
                if isinstance(op, LoadOp):
                    seen[i].add(op.address // BLOCK_BYTES)
        for i in range(len(seen)):
            for j in range(i + 1, len(seen)):
                assert not (seen[i] & seen[j])

    def test_sequential_workload_preserves_order(self):
        bundle = generate_traces(workload("gemver"), agents=1, scale=0.1)
        loads = [op.address for op in bundle.traces[0]
                 if isinstance(op, LoadOp)]
        fresh = sorted(set(loads))
        first_occurrences = []
        seen = set()
        for address in loads:
            if address not in seen:
                seen.add(address)
                first_occurrences.append(address)
        # First touches happen in ascending address order.
        assert first_occurrences == fresh

    def test_compute_ops_scale_with_intensity(self):
        light = generate_traces(workload("jaco1D"), agents=1, scale=0.1)
        heavy = generate_traces(workload("fdtdap"), agents=1, scale=0.1)

        def ops_per_load(bundle):
            compute = sum(op.scalar_ops for op in bundle.traces[0]
                          if isinstance(op, ComputeOp))
            loads = sum(1 for op in bundle.traces[0]
                        if isinstance(op, LoadOp))
            return compute / loads

        assert ops_per_load(heavy) > ops_per_load(light) * 4

    def test_validation(self):
        spec = workload("gemver")
        with pytest.raises(ValueError):
            generate_traces(spec, agents=0)
        with pytest.raises(ValueError):
            generate_traces(spec, scale=0.0)

    @given(st.sampled_from(sorted(POLYBENCH)),
           st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_trace_volume_conservation_property(self, name, agents):
        """Loads cover the whole input, stores the whole output,
        regardless of agent count."""
        bundle = generate_traces(workload(name), agents=agents, scale=0.05)
        loaded = set()
        stored = 0
        for trace in bundle.traces:
            for op in trace:
                if isinstance(op, LoadOp):
                    loaded.add(op.address // BLOCK_BYTES)
                elif isinstance(op, StoreOp):
                    stored += 1
        assert len(loaded) == bundle.input_bytes // BLOCK_BYTES
        assert stored == bundle.output_bytes // BLOCK_BYTES
