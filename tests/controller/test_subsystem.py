"""Integration tests: the full PRAM subsystem under each policy."""

import pytest

from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.controller.firmware import FirmwareModel
from repro.pram import PramGeometry
from repro.sim import Simulator

#: Small geometry keeps tests fast while preserving multi-everything.
SMALL = PramGeometry(channels=2, modules_per_channel=2,
                     partitions_per_bank=4, tiles_per_partition=1,
                     bitlines_per_tile=256, wordlines_per_tile=256)


def make_subsystem(policy=SchedulerPolicy.FINAL, **kwargs):
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=SMALL, policy=policy, **kwargs)
    return sim, subsystem


def run_requests(sim, subsystem, requests):
    """Drive requests concurrently; return completion time."""

    def driver():
        pending = [sim.process(subsystem.submit(r)) for r in requests]
        yield sim.all_of(pending)

    sim.process(driver())
    sim.run()
    return sim.now


class TestFunctionalCorrectness:
    def test_write_then_read_roundtrip(self):
        sim, subsystem = make_subsystem()
        payload = bytes(range(64))

        def driver():
            yield sim.process(subsystem.write(0x40, payload))
            data = yield sim.process(subsystem.read(0x40, 64))
            assert data == payload

        sim.process(driver())
        sim.run()
        assert subsystem.requests_completed == 2

    def test_preload_then_timed_read(self):
        sim, subsystem = make_subsystem()
        subsystem.preload(0x100, b"\xAB" * 96)

        def driver():
            data = yield sim.process(subsystem.read(0x100, 96))
            assert data == b"\xAB" * 96

        sim.process(driver())
        sim.run()

    def test_preload_partial_rows_and_inspect(self):
        _, subsystem = make_subsystem()
        subsystem.preload(10, b"xyz")
        assert subsystem.inspect(10, 3) == b"xyz"
        assert subsystem.inspect(8, 2) == bytes(2)

    def test_unwritten_memory_reads_zero(self):
        sim, subsystem = make_subsystem()

        def driver():
            data = yield sim.process(subsystem.read(0x200, 32))
            assert data == bytes(32)

        sim.process(driver())
        sim.run()

    def test_cross_channel_request(self):
        sim, subsystem = make_subsystem()
        # SMALL stripes 32 B per module, 64 B per channel: a 64-byte
        # request at 32 spans (ch0, m1) and (ch1, m0).
        boundary = 32
        payload = bytes(range(64))

        def driver():
            yield sim.process(subsystem.write(boundary, payload))
            data = yield sim.process(subsystem.read(boundary, 64))
            assert data == payload

        sim.process(driver())
        sim.run()


class TestTiming:
    def test_single_read_latency_near_device_read(self):
        sim, subsystem = make_subsystem()
        request = MemoryRequest(Op.READ, 0, 32)
        run_requests(sim, subsystem, [request])
        assert 100.0 <= request.latency <= 200.0

    def test_single_write_latency_is_program_dominated(self):
        sim, subsystem = make_subsystem()
        request = MemoryRequest(Op.WRITE, 0, 32, data=bytes(32))
        run_requests(sim, subsystem, [request])
        assert 10_000.0 <= request.latency <= 11_000.0

    def test_overwrite_latency_pays_reset(self):
        sim, subsystem = make_subsystem(policy=SchedulerPolicy.BARE_METAL)
        subsystem.preload(0, b"\x11" * 32)
        request = MemoryRequest(Op.WRITE, 0, 32, data=b"\x22" * 32)
        run_requests(sim, subsystem, [request])
        assert request.latency >= 18_000.0


#: Distance between successive partitions of module 0 in SMALL.
PARTITION_STRIDE = (SMALL.row_bytes * SMALL.modules_per_channel
                    * SMALL.channels)


def partition_strided_reads(count):
    """Reads hitting distinct partitions of module 0, channel 0."""
    return [MemoryRequest(Op.READ, i * PARTITION_STRIDE, 32)
            for i in range(count)]


def sequential_reads(count):
    """Reads striding across modules (a sequential access stream)."""
    return [MemoryRequest(Op.READ, i * SMALL.row_bytes, 32)
            for i in range(count)]


class TestPolicies:
    def test_interleaving_beats_bare_metal_on_partition_parallel_reads(self):
        sim_a, sub_a = make_subsystem(SchedulerPolicy.BARE_METAL)
        time_a = run_requests(sim_a, sub_a, partition_strided_reads(4))
        sim_b, sub_b = make_subsystem(SchedulerPolicy.INTERLEAVING)
        time_b = run_requests(sim_b, sub_b, partition_strided_reads(4))
        assert time_b < time_a

    def test_interleaving_overlap_hides_a_meaningful_fraction(self):
        # Abstract: interleaving hides access latency behind transfer
        # time "by 40%"; our model should show a comparable gain on
        # partition-parallel reads.
        sim_a, sub_a = make_subsystem(SchedulerPolicy.BARE_METAL)
        time_a = run_requests(sim_a, sub_a, partition_strided_reads(4))
        sim_b, sub_b = make_subsystem(SchedulerPolicy.INTERLEAVING)
        time_b = run_requests(sim_b, sub_b, partition_strided_reads(4))
        assert 1.0 - time_b / time_a >= 0.25

    def test_same_module_writes_see_no_interleaving_benefit(self):
        # Figure 13: write-heavy workloads get ~zero benefit because
        # long programs serialize at each module's overlay window no
        # matter how the scheduler orders them.
        def same_module_writes():
            return [MemoryRequest(Op.WRITE, i * PARTITION_STRIDE, 32,
                                  data=bytes(32))
                    for i in range(4)]

        sim_a, sub_a = make_subsystem(SchedulerPolicy.BARE_METAL)
        time_a = run_requests(sim_a, sub_a, same_module_writes())
        sim_b, sub_b = make_subsystem(SchedulerPolicy.INTERLEAVING)
        time_b = run_requests(sim_b, sub_b, same_module_writes())
        assert time_b == pytest.approx(time_a, rel=0.05)

    def test_selective_erase_speeds_up_announced_overwrites(self):
        def run(policy):
            sim, subsystem = make_subsystem(policy)
            subsystem.preload(0, b"\x33" * 32)  # target already programmed
            subsystem.register_write_hint(0, 32)

            def driver():
                yield sim.process(subsystem.drain_hints())
                request = MemoryRequest(Op.WRITE, 0, 32, data=b"\x44" * 32)
                start = sim.now
                yield sim.process(subsystem.submit(request))
                return sim.now - start

            proc = sim.process(driver())
            sim.run()
            return proc.value

        bare = run(SchedulerPolicy.BARE_METAL)
        selective = run(SchedulerPolicy.SELECTIVE_ERASE)
        # Section V-A: selective erasing reduces overwrite latency ~44-55%.
        assert 0.35 <= 1.0 - selective / bare <= 0.60

    def test_selective_erase_preserves_data_correctness(self):
        sim, subsystem = make_subsystem(SchedulerPolicy.FINAL)
        subsystem.preload(0, b"\x55" * 32)
        subsystem.register_write_hint(0, 32)

        def driver():
            yield sim.process(subsystem.drain_hints())
            yield sim.process(subsystem.write(0, b"\x66" * 32))
            data = yield sim.process(subsystem.read(0, 32))
            assert data == b"\x66" * 32

        sim.process(driver())
        sim.run()

    def test_hints_are_noop_under_non_preresetting_policies(self):
        sim, subsystem = make_subsystem(SchedulerPolicy.INTERLEAVING)
        subsystem.preload(0, b"\x33" * 32)
        subsystem.register_write_hint(0, 32)

        def driver():
            yield sim.process(subsystem.drain_hints())

        sim.process(driver())
        sim.run()
        assert subsystem.channels[0].pre_resets_issued == 0

    def test_pre_reset_skips_pristine_rows(self):
        sim, subsystem = make_subsystem(SchedulerPolicy.FINAL)
        subsystem.register_write_hint(0, 32)  # never written: pristine

        def driver():
            yield sim.process(subsystem.drain_hints())

        sim.process(driver())
        sim.run()
        assert subsystem.channels[0].pre_resets_issued == 0


class TestPhaseSkipping:
    def test_repeated_row_reads_hit_the_rdb(self):
        sim, subsystem = make_subsystem()
        requests = [MemoryRequest(Op.READ, 0, 32) for _ in range(3)]

        def driver():
            for request in requests:
                yield sim.process(subsystem.submit(request))

        sim.process(driver())
        sim.run()
        # First read does full three-phase; later ones skip both phases.
        assert requests[1].latency < requests[0].latency
        skips = subsystem.channels[0].phase_skips
        assert skips["activate"] >= 2

    def test_phase_skipping_can_be_disabled(self):
        sim, subsystem = make_subsystem(phase_skipping=False)
        requests = [MemoryRequest(Op.READ, 0, 32) for _ in range(3)]

        def driver():
            for request in requests:
                yield sim.process(subsystem.submit(request))

        sim.process(driver())
        sim.run()
        assert subsystem.channels[0].phase_skips["activate"] == 0
        assert requests[1].latency == pytest.approx(requests[2].latency)

    def test_rab_hit_skips_only_pre_active(self):
        sim, subsystem = make_subsystem()
        # Same module, same upper row, different lower rows -> RAB hit,
        # RDB miss.  Row stride in SMALL is 512 bytes.
        row_stride = PARTITION_STRIDE * SMALL.partitions_per_bank
        requests = [MemoryRequest(Op.READ, 0, 32),
                    MemoryRequest(Op.READ, row_stride, 32)]

        def driver():
            for request in requests:
                yield sim.process(subsystem.submit(request))

        sim.process(driver())
        sim.run()
        skips = subsystem.channels[0].phase_skips
        assert skips["pre_active"] >= 1


class TestFirmwareBaseline:
    def test_firmware_adds_serialized_latency(self):
        sim_hw, sub_hw = make_subsystem()
        hw_time = run_requests(sim_hw, sub_hw, sequential_reads(8))

        sim_fw = Simulator()
        sub_fw = PramSubsystem(
            sim_fw, geometry=SMALL,
            firmware=FirmwareModel(sim_fw))
        fw_time = run_requests(sim_fw, sub_fw, sequential_reads(8))
        assert fw_time > hw_time * 2

    def test_firmware_counts_requests(self):
        sim = Simulator()
        firmware = FirmwareModel(sim)
        subsystem = PramSubsystem(sim, geometry=SMALL, firmware=firmware)
        run_requests(sim, subsystem, sequential_reads(4))
        assert firmware.requests_processed == 4

    def test_firmware_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FirmwareModel(sim, cores=0)
        with pytest.raises(ValueError):
            FirmwareModel(sim, clock_ghz=0.0)


class TestStatistics:
    def test_operation_counts(self):
        sim, subsystem = make_subsystem()
        requests = [
            MemoryRequest(Op.WRITE, 0, 32, data=bytes(32)),
            MemoryRequest(Op.READ, 0, 32),
        ]

        def driver():
            for request in requests:
                yield sim.process(subsystem.submit(request))

        sim.process(driver())
        sim.run()
        counts = subsystem.operation_counts()
        assert counts["programs"] == 1
        assert counts["reads"] == 1

    def test_latency_means(self):
        sim, subsystem = make_subsystem()
        run_requests(sim, subsystem, sequential_reads(2))
        assert subsystem.mean_read_latency() > 0
        assert subsystem.mean_write_latency() == 0.0

    def test_boot_latency_positive(self):
        _, subsystem = make_subsystem()
        assert subsystem.boot_latency_ns > 0
