"""Property-based tests on the PRAM subsystem's end-to-end behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.pram import PramGeometry
from repro.sim import Simulator

SMALL = PramGeometry(channels=2, modules_per_channel=2,
                     partitions_per_bank=4, tiles_per_partition=1,
                     bitlines_per_tile=256, wordlines_per_tile=256)

#: Strategy: a batch of non-overlapping aligned writes.
write_batches = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),   # 32 B slot index
              st.binary(min_size=32, max_size=32)),
    min_size=1, max_size=12,
    unique_by=lambda item: item[0])

policies = st.sampled_from(list(SchedulerPolicy))


@given(write_batches, policies)
@settings(max_examples=40, deadline=None)
def test_concurrent_writes_then_reads_are_consistent(batch, policy):
    """Whatever lands, every byte reads back exactly as last written,
    under every scheduling policy."""
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=SMALL, policy=policy)
    requests = [MemoryRequest(Op.WRITE, slot * 32, 32, data=payload)
                for slot, payload in batch]

    def driver():
        pending = [sim.process(subsystem.submit(r)) for r in requests]
        yield sim.all_of(pending)

    sim.process(driver())
    sim.run()
    for slot, payload in batch:
        assert subsystem.inspect(slot * 32, 32) == payload


@given(write_batches)
@settings(max_examples=25, deadline=None)
def test_policies_agree_on_data_only_on_timing(batch):
    """All four policies produce identical final contents; they may
    only differ in how long the batch takes."""
    contents = {}
    times = {}
    for policy in SchedulerPolicy:
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=SMALL, policy=policy)
        requests = [MemoryRequest(Op.WRITE, slot * 32, 32, data=payload)
                    for slot, payload in batch]

        def driver():
            pending = [sim.process(subsystem.submit(r))
                       for r in requests]
            yield sim.all_of(pending)

        sim.process(driver())
        sim.run()
        contents[policy] = subsystem.inspect(0, 64 * 32)
        times[policy] = sim.now
    assert len(set(contents.values())) == 1
    # Interleaving never loses to bare-metal on the same batch.
    assert (times[SchedulerPolicy.INTERLEAVING]
            <= times[SchedulerPolicy.BARE_METAL] + 1e-6)


@given(st.integers(min_value=1, max_value=1024),
       st.integers(min_value=0, max_value=4096))
@settings(max_examples=40, deadline=None)
def test_read_latency_monotone_in_size(size, address):
    """Bigger reads never complete faster than smaller ones from the
    same start address."""
    def latency(read_size):
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=SMALL)
        request = MemoryRequest(Op.READ, address, read_size)
        proc = sim.process(subsystem.submit(request))
        sim.run()
        assert proc.ok
        return request.latency

    small = latency(size)
    large = latency(size + 32)
    assert large >= small - 1e-6


@given(write_batches)
@settings(max_examples=20, deadline=None)
def test_selective_erase_hints_never_corrupt_data(batch):
    """Registering hints for a region while concurrently rewriting it
    must never lose the new data (the freshness check)."""
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=SMALL,
                              policy=SchedulerPolicy.FINAL)
    # Prior contents so hints have something to reset.
    for slot, _ in batch:
        subsystem.preload(slot * 32, bytes([0xAA]) * 32)
    requests = [MemoryRequest(Op.WRITE, slot * 32, 32, data=payload)
                for slot, payload in batch]

    def driver():
        subsystem.register_write_hint(0, 64 * 32)
        drain = sim.process(subsystem.drain_hints())
        pending = [sim.process(subsystem.submit(r)) for r in requests]
        yield sim.all_of(pending + [drain])

    sim.process(driver())
    sim.run()
    for slot, payload in batch:
        assert subsystem.inspect(slot * 32, 32) == payload


def test_requests_complete_exactly_once():
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=SMALL)
    request = MemoryRequest(Op.READ, 0, 32)
    done_values = []
    request.done = sim.event("done")
    request.done.callbacks.append(lambda e: done_values.append(e.value))

    def driver():
        yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    assert len(done_values) == 1
    assert subsystem.requests_completed == 1


@pytest.mark.parametrize("policy", list(SchedulerPolicy))
def test_empty_region_read_is_zeros(policy):
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=SMALL, policy=policy)
    request = MemoryRequest(Op.READ, 512, 96)

    def driver():
        yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    assert request.result == bytes(96)
