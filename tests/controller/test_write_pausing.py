"""Write-pausing tests (the [66]-style optional controller feature)."""

import pytest

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.pram import PramGeometry, PramModule
from repro.sim import Simulator

SMALL = PramGeometry(channels=1, modules_per_channel=1,
                     partitions_per_bank=4, tiles_per_partition=1,
                     bitlines_per_tile=256, wordlines_per_tile=256)


class TestModulePauseResume:
    def test_pause_frees_the_partition(self):
        module = PramModule()
        t = module.stage_program(0.0, 0, 0, 0, bytes(32))
        module.execute_program(t)
        assert module.program_in_flight(0, t + 100.0)
        assert module.pause_program(0, t + 100.0, resume_penalty_ns=1_000)
        assert module.partition_ready_at(0) == t + 100.0
        assert module.pauses == 1

    def test_resume_restores_remaining_plus_penalty(self):
        module = PramModule()
        t = module.stage_program(0.0, 0, 0, 0, bytes(32))
        finish = module.execute_program(t)
        pause_at = t + 2_000.0
        remaining = (finish - module.params.twr_ns) - pause_at
        module.pause_program(0, pause_at, resume_penalty_ns=1_000)
        resume_at = pause_at + 200.0
        new_finish = module.resume_program(0, resume_at)
        assert new_finish == pytest.approx(
            resume_at + remaining + 1_000.0)

    def test_pause_without_program_is_noop(self):
        module = PramModule()
        assert module.pause_program(0, 0.0, 1_000) is False
        assert module.resume_program(0, 0.0) == 0.0

    def test_reads_are_not_pausable(self):
        module = PramModule()
        module.pre_active(0.0, 0, 0)
        module.activate(10.0, 0, 0, 0)  # occupies, but not a program
        assert module.program_in_flight(0, 50.0) is False


def read_latency_during_write(write_pausing: bool) -> float:
    """A read to the same partition lands mid-program; measure it."""
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=SMALL,
                              write_pausing=write_pausing)
    subsystem.preload(1024, b"\xEE" * 32)  # partition 1... same module
    write = MemoryRequest(Op.WRITE, 0, 32, data=b"\x11" * 32)
    read = MemoryRequest(Op.READ, 512, 32)  # same partition 0, row 1

    def driver():
        write_proc = sim.process(subsystem.submit(write))
        yield sim.timeout(2_000.0)  # land mid-program (~10 us long)
        yield sim.process(subsystem.submit(read))
        yield write_proc

    sim.process(driver())
    sim.run()
    return read.latency, write.latency


class TestSubsystemPausing:
    def test_pausing_slashes_read_latency_under_a_write(self):
        blocked, _ = read_latency_during_write(False)
        paused, _ = read_latency_during_write(True)
        # Without pausing the read waits out most of the 10 us program.
        assert blocked > 5_000.0
        # With pausing it is served at near-idle latency.
        assert paused < 1_000.0

    def test_pausing_extends_the_write(self):
        _, write_plain = read_latency_during_write(False)
        _, write_paused = read_latency_during_write(True)
        assert write_paused > write_plain

    def test_data_intact_after_pause(self):
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=SMALL,
                                  write_pausing=True)
        write = MemoryRequest(Op.WRITE, 0, 32, data=b"\x77" * 32)
        read = MemoryRequest(Op.READ, 512, 32)

        def driver():
            write_proc = sim.process(subsystem.submit(write))
            yield sim.timeout(2_000.0)
            yield sim.process(subsystem.submit(read))
            yield write_proc

        sim.process(driver())
        sim.run()
        assert subsystem.inspect(0, 32) == b"\x77" * 32
        assert read.result == bytes(32)

    def test_pause_counter_visible(self):
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=SMALL,
                                  write_pausing=True)
        write = MemoryRequest(Op.WRITE, 0, 32, data=b"\x11" * 32)
        read = MemoryRequest(Op.READ, 512, 32)

        def driver():
            write_proc = sim.process(subsystem.submit(write))
            yield sim.timeout(2_000.0)
            yield sim.process(subsystem.submit(read))
            yield write_proc

        sim.process(driver())
        sim.run()
        assert subsystem.channels[0].pauses_issued == 1
