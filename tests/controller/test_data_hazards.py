"""Regressions for two data-integrity bugs the conformance checker found.

Both were masked by test payloads whose byte pattern repeats with a
period dividing the 1024-byte channel stripe, so every partition's row
held identical bytes.  The payloads here break that symmetry.

1. Multi-stripe reassembly: ``PramSubsystem.submit`` concatenated
   per-channel results channel-major, shuffling any request larger
   than one stripe.
2. RDB clobbering: pipelined reads that RAB-hit the same buffer pair
   re-activated over an RDB whose burst had not happened yet and
   streamed the wrong partition's row.
"""

from repro.controller import PramSubsystem
from repro.sim import Simulator


def aperiodic(size):
    """A byte pattern with no period dividing the channel stripe."""
    return bytes((i * 37 + (i >> 8) * 11) % 256 for i in range(size))


def round_trip(size, reread=None):
    sim = Simulator()
    subsystem = PramSubsystem(sim)
    payload = aperiodic(size)
    out = {}

    def driver():
        yield from subsystem.write(0, payload)
        out["cold"] = yield from subsystem.read(0, size)
        if reread:
            out["warm"] = yield from subsystem.read(0, reread)

    sim.process(driver())
    sim.run()
    return payload, out


def test_multi_stripe_request_reassembles_in_address_order():
    # 4 KiB spans four 1 KiB stripes: channel-major concatenation
    # would place bytes [1024, 1536) at offset 512.
    payload, out = round_trip(4096)
    assert out["cold"] == payload


def test_single_stripe_request_still_round_trips():
    payload, out = round_trip(1024)
    assert out["cold"] == payload


def test_warm_reread_streams_the_right_rows():
    # The warm re-read RAB-hits on every chunk; without per-pair
    # ownership all chunks pile onto pair 0 and each burst returns the
    # row the *next* chunk activated.
    payload, out = round_trip(16 * 1024, reread=4096)
    assert out["cold"] == payload
    assert out["warm"] == payload[:4096]


def test_phase_skipping_survives_hazard_tracking():
    sim = Simulator()
    subsystem = PramSubsystem(sim)
    payload = aperiodic(8192)

    def driver():
        yield from subsystem.write(0, payload)
        yield from subsystem.read(0, len(payload))
        data = yield from subsystem.read(0, len(payload))
        assert data == payload

    sim.process(driver())
    sim.run()
    skips = sum(ch.phase_skips["pre_active"] for ch in subsystem.channels)
    assert skips > 0
