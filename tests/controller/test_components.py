"""PHY, initializer, datapath, planner, and hint-store tests."""

import pytest

from repro.controller import (
    AccessPlanner,
    Datapath,
    Initializer,
    MemoryRequest,
    Op,
    PramPhy,
    WriteHintStore,
)
from repro.pram import PramGeometry, PramModule


class TestPhy:
    def test_clock_matches_400mhz(self):
        assert PramPhy().clock_ns == 2.5

    def test_command_cost_per_packet(self):
        phy = PramPhy()
        assert phy.command_cost(2) == 5.0
        assert phy.packets_sent == 2

    def test_register_write_cost(self):
        phy = PramPhy()
        assert phy.register_write_cost() == 2.5

    def test_negative_packets_rejected(self):
        with pytest.raises(ValueError):
            PramPhy().command_cost(-1)


class TestInitializer:
    def test_boot_invalidate_buffers_and_sets_owba(self):
        module = PramModule()
        module.buffers.load_rab(0, 5)
        init = Initializer(overlay_window_base=0x4000)
        latency = init.boot([module])
        assert init.booted
        assert latency > 0
        assert module.buffers.find_rab(5) is None
        assert module.window.base_address == 0x4000

    def test_boot_scales_with_module_count(self):
        modules_2 = [PramModule() for _ in range(2)]
        modules_8 = [PramModule() for _ in range(8)]
        assert Initializer().boot(modules_8) > Initializer().boot(modules_2)

    def test_boot_requires_modules(self):
        with pytest.raises(ValueError):
            Initializer().boot([])


class TestDatapath:
    def test_stage_store_and_load(self):
        dp = Datapath()
        dp.stage_store(b"\x01" * 32)
        assert dp.store_register == b"\x01" * 32
        assert dp.stage_load(b"\x02" * 16) == b"\x02" * 16
        assert dp.load_register == b"\x02" * 16 + bytes(16)

    def test_operand_size_limits(self):
        dp = Datapath()
        with pytest.raises(ValueError):
            dp.stage_store(b"")
        with pytest.raises(ValueError):
            dp.stage_store(bytes(33))

    def test_byte_accounting(self):
        dp = Datapath()
        dp.stage_store(bytes(32))
        dp.stage_load(bytes(32))
        dp.stage_load(bytes(16))
        assert dp.totals() == (48, 32)


class TestAccessPlanner:
    def test_single_row_request_is_one_chunk(self):
        planner = AccessPlanner()
        chunks = planner.plan(MemoryRequest(Op.READ, 0, 32))
        assert len(chunks) == 1
        assert chunks[0].size == 32

    def test_512_byte_request_decomposes_to_16_rows(self):
        planner = AccessPlanner()
        chunks = planner.plan(MemoryRequest(Op.READ, 0, 512))
        assert len(chunks) == 16
        assert all(c.size == 32 for c in chunks)

    def test_buffer_ids_rotate_round_robin_per_module(self):
        planner = AccessPlanner()
        # Two successive requests to the same module rotate its pairs.
        first = planner.plan(MemoryRequest(Op.READ, 0, 32))
        second = planner.plan(MemoryRequest(Op.READ, 0, 32))
        third = planner.plan(MemoryRequest(Op.READ, 0, 32))
        assert [c[0].buffer_id for c in (first, second, third)] == [0, 1, 2]

    def test_buffer_ids_independent_across_modules(self):
        planner = AccessPlanner()
        chunks = planner.plan(MemoryRequest(Op.READ, 0, 128))
        # 128 B spans modules 0..3, each using its own buffer 0.
        assert [c.buffer_id for c in chunks] == [0, 0, 0, 0]

    def test_write_chunks_carry_payload_slices(self):
        planner = AccessPlanner()
        payload = bytes(range(64))
        chunks = planner.plan(MemoryRequest(Op.WRITE, 0, 64, data=payload))
        assert chunks[0].payload == payload[:32]
        assert chunks[1].payload == payload[32:]
        assert chunks[0].is_write

    def test_read_chunk_payload_is_none(self):
        planner = AccessPlanner()
        chunks = planner.plan(MemoryRequest(Op.READ, 0, 32))
        assert chunks[0].payload is None

    def test_chunks_by_channel_split(self):
        geo = PramGeometry()
        planner = AccessPlanner()
        # 480..511 is (ch0, m15); 512..543 is (ch1, m0).
        request = MemoryRequest(Op.READ, 480, 64)
        grouped = planner.chunks_by_channel(request)
        assert set(grouped) == {0, 1}
        assert len(grouped[0]) == 1
        assert len(grouped[1]) == 1

    def test_1kb_request_covers_both_channels_fully(self):
        geo = PramGeometry()
        planner = AccessPlanner()
        request = MemoryRequest(Op.READ, 0, 1024)
        grouped = planner.chunks_by_channel(request)
        assert len(grouped[0]) == geo.modules_per_channel
        assert len(grouped[1]) == geo.modules_per_channel


class TestWriteHintStore:
    def test_fifo_order(self):
        store = WriteHintStore()
        store.add(0, 32, registered_at=1.0)
        store.add(64, 32, registered_at=2.0)
        assert store.pop() == (0, 32, 1.0)
        assert store.pop() == (64, 32, 2.0)
        assert store.pop() is None

    def test_default_registration_time_is_unconstrained(self):
        store = WriteHintStore()
        store.add(0, 32)
        _, _, registered_at = store.pop()
        assert registered_at == float("inf")

    def test_counters(self):
        store = WriteHintStore()
        store.add(0, 32)
        store.pop()
        assert store.registered == 1
        assert store.consumed == 1
        assert len(store) == 0

    def test_validation(self):
        store = WriteHintStore()
        with pytest.raises(ValueError):
            store.add(0, 0)
        with pytest.raises(ValueError):
            store.add(-1, 32)
