"""Start-gap wear-leveling tests (Section VII extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller import (
    MemoryRequest,
    Op,
    PramSubsystem,
    StartGapMapper,
)
from repro.controller.wear_level import GapMove
from repro.pram import PramGeometry
from repro.sim import Simulator

SMALL = PramGeometry(channels=2, modules_per_channel=2,
                     partitions_per_bank=4, tiles_per_partition=1,
                     bitlines_per_tile=256, wordlines_per_tile=256)


class TestMapperBasics:
    def test_initial_mapping_is_identity(self):
        mapper = StartGapMapper(lines=8)
        assert [mapper.map(l) for l in range(8)] == list(range(8))
        assert mapper.gap == 8

    def test_one_spare_physical_line(self):
        assert StartGapMapper(lines=8).physical_lines == 9

    def test_gap_move_after_interval(self):
        mapper = StartGapMapper(lines=8, gap_write_interval=2)
        assert mapper.record_write() is None
        move = mapper.record_write()
        assert move == GapMove(source=7, destination=8)
        assert mapper.gap == 7

    def test_mapping_skips_the_gap(self):
        mapper = StartGapMapper(lines=4, gap_write_interval=1)
        mapper.record_write()  # gap 4 -> 3 (line 3 copied to 4)
        # Logical 3 must now read from physical 4.
        assert mapper.map(3) == 4
        assert mapper.map(0) == 0

    def test_wrap_advances_start(self):
        mapper = StartGapMapper(lines=4, gap_write_interval=1)
        for _ in range(4):
            mapper.record_write()
        assert mapper.gap == 0
        move = mapper.record_write()  # wrap
        assert move == GapMove(source=4, destination=0)
        assert mapper.gap == 4
        assert mapper.start == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StartGapMapper(0)
        with pytest.raises(ValueError):
            StartGapMapper(4, gap_write_interval=0)
        with pytest.raises(ValueError):
            StartGapMapper(4).map(4)

    def test_endurance_spread_metric(self):
        mapper = StartGapMapper(4)
        assert mapper.endurance_spread([5, 5, 5, 5]) == 1.0
        assert mapper.endurance_spread([10, 5, 5]) > 1.0
        assert mapper.endurance_spread([]) == 1.0


@given(st.integers(min_value=2, max_value=64),
       st.integers(min_value=0, max_value=400))
@settings(max_examples=60)
def test_mapping_stays_a_bijection_property(lines, moves):
    """After any number of gap moves, logical->physical is injective
    and never lands on the current gap line."""
    mapper = StartGapMapper(lines, gap_write_interval=1)
    for _ in range(moves):
        mapper.record_write()
    physical = [mapper.map(l) for l in range(lines)]
    assert len(set(physical)) == lines
    assert mapper.gap not in physical
    assert all(0 <= p <= lines for p in physical)


@given(st.integers(min_value=2, max_value=32))
@settings(max_examples=30)
def test_full_rotation_returns_to_identity_property(lines):
    """lines+... moves per cycle; after lines full cycles the start
    register wraps back to zero."""
    mapper = StartGapMapper(lines, gap_write_interval=1)
    for _ in range(lines * (lines + 1)):
        mapper.record_write()
    assert mapper.start == 0
    assert mapper.gap == lines


class TestSubsystemIntegration:
    def make(self, interval=4):
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=SMALL,
                                  wear_leveling=True,
                                  gap_write_interval=interval)
        return sim, subsystem

    def run_writes(self, sim, subsystem, count, address=0):
        payloads = [bytes([i % 255 + 1]) * 32 for i in range(count)]

        def driver():
            for payload in payloads:
                yield sim.process(subsystem.write(address, payload))

        sim.process(driver())
        sim.run()
        return payloads

    def test_data_correct_across_gap_moves(self):
        sim, subsystem = self.make(interval=2)
        payloads = self.run_writes(sim, subsystem, 12)
        assert subsystem.inspect(0, 32) == payloads[-1]
        moves = sum(ch.gap_moves for ch in subsystem.channels)
        assert moves >= 4

    def test_other_rows_survive_gap_moves(self):
        sim, subsystem = self.make(interval=2)
        subsystem.preload(1024, b"\xCD" * 32)  # partition 1 neighbour

        def driver():
            for i in range(10):
                yield sim.process(subsystem.write(0, bytes([i + 1]) * 32))
            data = yield from subsystem.read(1024, 32)
            assert data == b"\xCD" * 32

        sim.process(driver())
        sim.run()

    def test_hammered_row_spreads_over_physical_lines(self):
        sim, subsystem = self.make(interval=2)
        self.run_writes(sim, subsystem, 30)
        # The hammered logical row 0 of (ch0, m0, p0) migrated: more
        # than one physical row absorbed programs.
        module = subsystem.modules[0][0]
        tracker = module.cell_tracker(0)
        written_rows = {row for (row, _word)
                        in tracker._write_counts}
        assert len(written_rows) > 1

    def test_wear_leveling_off_keeps_writes_in_place(self):
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=SMALL,
                                  wear_leveling=False)

        def driver():
            for i in range(10):
                yield sim.process(subsystem.write(0, bytes([i + 1]) * 32))

        sim.process(driver())
        sim.run()
        module = subsystem.modules[0][0]
        tracker = module.cell_tracker(0)
        written_rows = {row for (row, _word) in tracker._write_counts}
        assert written_rows == {0}

    def test_overhead_is_bounded(self):
        def total_time(wear_leveling):
            sim = Simulator()
            subsystem = PramSubsystem(sim, geometry=SMALL,
                                      wear_leveling=wear_leveling,
                                      gap_write_interval=100)
            self.run_writes(sim, subsystem, 50)
            return sim.now

        baseline = total_time(False)
        leveled = total_time(True)
        # With psi=100, amortized overhead stays within a few percent.
        assert leveled <= baseline * 1.05
