"""MemoryRequest validation tests."""

import pytest

from repro.controller import MemoryRequest, Op


class TestValidation:
    def test_read_request(self):
        req = MemoryRequest(Op.READ, address=0x100, size=32)
        assert not req.is_write

    def test_write_requires_payload(self):
        with pytest.raises(ValueError):
            MemoryRequest(Op.WRITE, 0, 32)

    def test_write_payload_must_match_size(self):
        with pytest.raises(ValueError):
            MemoryRequest(Op.WRITE, 0, 32, data=b"short")

    def test_read_must_not_carry_payload(self):
        with pytest.raises(ValueError):
            MemoryRequest(Op.READ, 0, 4, data=b"1234")

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryRequest(Op.READ, 0, 0)

    def test_address_must_be_non_negative(self):
        with pytest.raises(ValueError):
            MemoryRequest(Op.READ, -1, 32)

    def test_request_ids_are_unique(self):
        a = MemoryRequest(Op.READ, 0, 32)
        b = MemoryRequest(Op.READ, 0, 32)
        assert a.request_id != b.request_id

    def test_latency_property(self):
        req = MemoryRequest(Op.READ, 0, 32)
        req.submit_time = 10.0
        req.complete_time = 150.0
        assert req.latency == 140.0
