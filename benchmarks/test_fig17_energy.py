"""Figure 17: energy decomposition."""

from benchmarks.conftest import write_report
from repro.experiments import fig17_energy


def test_fig17_energy(benchmark, bench_config, full_matrix, results_dir,
                      bench_record):
    result = benchmark.pedantic(
        fig17_energy.run,
        kwargs={"config": bench_config, "matrix": full_matrix},
        rounds=1, iterations=1)

    write_report(results_dir, "fig17_energy", fig17_energy.report(result))
    means = result["mean_mj"]
    categories = result["category_mj"]
    bench_record("fig17.dramless_mean_mj", means["DRAM-less"],
                 better="lower", unit="mJ")
    bench_record("fig17.dramless_fraction_of_heterodirect",
                 result["dramless_fraction_of_heterodirect"],
                 better="lower", unit="fraction")
    # Paper: DRAM-less consumes ~19% of the advanced (P2P) systems'
    # energy; shape band: well under half.
    assert result["dramless_fraction_of_heterodirect"] <= 0.5
    # And ~76% less than PAGE-buffer; shape band: under 70%.
    assert result["dramless_fraction_of_pagebuffer"] <= 0.7
    # Hetero burns most of its energy in the host storage stack.
    assert categories["Hetero"]["host"] == max(
        categories["Hetero"].values())
    # DRAM-less has zero host-side and zero DRAM-background energy.
    assert categories["DRAM-less"]["host"] == 0.0
    assert categories["DRAM-less"]["dram"] == 0.0
    # P2P halves-or-better the host energy versus the stock stack.
    assert (categories["Heterodirect"]["host"]
            < categories["Hetero"]["host"])
    # DRAM-less is the most energy-frugal evaluated system.
    assert means["DRAM-less"] == min(means.values())
