"""Figure 1: conventional accelerated system vs the idealized one."""

from benchmarks.conftest import write_report
from repro.experiments import fig01_motivation


def test_fig01_motivation(benchmark, bench_config, results_dir,
                          bench_record):
    result = benchmark.pedantic(
        fig01_motivation.run, args=(bench_config,), rounds=1, iterations=1)

    write_report(results_dir, "fig01_motivation",
                 fig01_motivation.report(result))
    bench_record("fig01.max_degradation", result["max_degradation"],
                 better="neutral", unit="fraction")
    bench_record("fig01.mean_energy_ratio", result["mean_energy_ratio"],
                 better="neutral", unit="x")
    # Paper: performance degrades as much as 74%; energy inflates ~9x.
    # Shape claims: substantial degradation, substantial energy blowup.
    assert 0.30 <= result["max_degradation"] <= 0.95
    assert result["mean_energy_ratio"] >= 2.0
    # Every workload must degrade (data movement is never free).
    for row in result["rows"]:
        assert row["normalized_performance"] < 1.0
        assert row["energy_ratio"] > 1.0
