"""Figure 20: core power and total energy, first 16 KB of gemver."""

from benchmarks.conftest import write_report
from repro.experiments import fig20_21_power


def test_fig20_power_read(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        fig20_21_power.run_figure20, args=(bench_config,),
        rounds=1, iterations=1)

    write_report(results_dir, "fig20_power_gemver",
                 fig20_21_power.report(result))
    energy = result["energy_mj"]
    completion = result["completion_ns"]
    # Paper: Integrated-SLC and PAGE-buffer take longer to actually
    # complete and burn more energy than DRAM-less (7x / 1.9x).
    assert completion["DRAM-less"] <= completion["Integrated-SLC"]
    assert completion["DRAM-less"] <= completion["PAGE-buffer"]
    assert energy["DRAM-less"] < energy["Integrated-SLC"]
    assert energy["DRAM-less"] < energy["PAGE-buffer"]
    # NOR's longer run costs it more total energy than DRAM-less
    # (paper: +32%) despite its lower instantaneous PE power.
    assert energy["NOR-intf"] > energy["DRAM-less"]
