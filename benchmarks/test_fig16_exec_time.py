"""Figure 16: execution-time decomposition."""

from benchmarks.conftest import write_report
from repro.experiments import fig16_exec_time


def test_fig16_exec_time(benchmark, bench_config, full_matrix,
                         results_dir, bench_record):
    result = benchmark.pedantic(
        fig16_exec_time.run,
        kwargs={"config": bench_config, "matrix": full_matrix},
        rounds=1, iterations=1)

    write_report(results_dir, "fig16_exec_time",
                 fig16_exec_time.report(result))
    fractions = result["mean_fractions"]
    bench_record("fig16.dramless_compute_fraction",
                 fractions["DRAM-less"]["computation"],
                 better="higher", unit="fraction")
    bench_record("fig16.hetero_compute_fraction",
                 fractions["Hetero"]["computation"],
                 better="neutral", unit="fraction")
    # Heterogeneous systems spend real time staging/writing back data;
    # integrated/PRAM systems never stage.
    for name in ("Hetero", "Heterodirect", "Hetero-PRAM",
                 "Heterodirect-PRAM"):
        assert fractions[name]["data_preparation"] > 0.02, name
    for name in ("Integrated-SLC", "PAGE-buffer", "NOR-intf",
                 "DRAM-less"):
        assert fractions[name]["data_preparation"] == 0.0, name
    # Hetero's wall clock is dominated by data movement, not compute.
    hetero = fractions["Hetero"]
    movement = (hetero["data_preparation"] + hetero["output_writeback"]
                + hetero["memory_stall"] + hetero["store_stall"])
    assert movement > hetero["computation"]
    # DRAM-less has no per-round writeback phase (persistent medium).
    assert fractions["DRAM-less"]["output_writeback"] == 0.0
