"""Table III: workload characteristics."""

from repro.experiments import tables
from repro.workloads import Category, workloads_in


def test_table3_workloads(benchmark):
    rows = benchmark.pedantic(tables.table3_workloads,
                              rounds=1, iterations=1)
    assert len(rows) == 15
    by_name = {row["workload"]: row for row in rows}
    # The paper's write-intensiveness classification (output per input).
    assert by_name["doitg"]["write_ratio"] > 0.5
    assert by_name["durbin"]["write_ratio"] < 0.1
    # Memory-intensive workloads carry the largest volumes.
    memory = [by_name[w.name]["input_kb"] + by_name[w.name]["output_kb"]
              for w in workloads_in(Category.MEMORY_INTENSIVE)]
    reads = [by_name[w.name]["input_kb"] + by_name[w.name]["output_kb"]
             for w in workloads_in(Category.READ_INTENSIVE)]
    assert min(memory) > max(reads)
