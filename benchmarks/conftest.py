"""Shared benchmark configuration and the cached execution matrix.

Every benchmark runs its experiment exactly once (pedantic, one round)
and writes its text report to ``results/`` under a provenance header,
so a checked-in result is attributable to the commit, scale, and seed
that produced it.  Figures 15-17 share the expensive full system x
workload matrix through a session fixture.

Benchmarks also feed scalar metrics into a session-wide
``BENCH_<git-sha>.json`` trajectory file (see
:mod:`repro.telemetry.bench`) via the ``bench_record`` fixture; the
file lands in ``results/`` (override the path with ``REPRO_BENCH_OUT``)
and is what ``python -m repro.telemetry compare`` diffs across
commits.
"""

import os
import pathlib

import pytest

from repro.experiments.runner import ExperimentConfig, run_matrix
from repro.sim.stats import DEFAULT_SKETCH_LAYOUT
from repro.systems import SYSTEM_NAMES
from repro.telemetry.timeseries import DEFAULT_WINDOW_NS
from repro.telemetry.bench import (
    BenchMetric,
    BenchReport,
    bench_filename,
    collect_provenance,
    write_bench,
)

#: The benchmark evaluation configuration: full suite, quarter-scale
#: footprints with shrunken caches (footprint >> cache, as in the
#: paper's inflated-volume setup).
BENCH_CONFIG = ExperimentConfig(scale=0.25)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Metrics accumulated by ``bench_record`` over the whole session.
_BENCH_METRICS = {}


def _provenance():
    provenance = collect_provenance(scale=BENCH_CONFIG.scale,
                                    seed=BENCH_CONFIG.seed,
                                    agents=BENCH_CONFIG.agents)
    # Stamp the measurement configuration: percentile metrics from a
    # different sketch layout (or series from a different sampling
    # window) are not comparable, and ``telemetry compare`` refuses to
    # diff reports whose stamps disagree.
    provenance["sketch"] = DEFAULT_SKETCH_LAYOUT.spec()
    provenance["timeseries_window_ns"] = DEFAULT_WINDOW_NS
    provenance["backend"] = BENCH_CONFIG.backend
    # Service-layer plan (and its seed) behind any service.* metrics:
    # SLO numbers from different traffic plans are different
    # measurements, so compare refuses to diff them.
    provenance["service"] = BENCH_CONFIG.service or "none"
    return provenance


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def full_matrix(bench_config):
    """The 15-workload x 11-system execution matrix (run once).

    ``REPRO_BENCH_JOBS=N`` shards the matrix cells across N worker
    processes and ``REPRO_BENCH_CACHE=DIR`` replays unchanged cells
    from the content-addressed result cache; both merge back
    deterministically, so the matrix is identical to a serial run's.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
    return run_matrix(bench_config, list(SYSTEM_NAMES),
                      jobs=jobs, cache_dir=cache_dir)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_record():
    """Record one scalar into the session's BENCH_*.json trajectory.

    Usage: ``bench_record("fig12.hidden_fraction", 0.43,
    better="higher", unit="fraction")``.  ``better`` declares the
    regression direction for ``telemetry compare``.
    """
    def record(name, value, better="neutral", unit=""):
        _BENCH_METRICS[name] = BenchMetric(
            value=float(value), better=better, unit=unit)
    return record


def write_report(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one experiment's text report under a provenance header."""
    provenance = _provenance()
    header = "\n".join(
        f"# {key}: {provenance[key]}"
        for key in ("git_sha", "scale", "seed", "agents", "timestamp"))
    (results_dir / f"{name}.txt").write_text(
        header + "\n\n" + text + "\n")


def pytest_sessionfinish(session, exitstatus):
    """Write the accumulated metrics as one BENCH_<sha>.json."""
    if not _BENCH_METRICS:
        return
    provenance = _provenance()
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / bench_filename(provenance["git_sha"])
    write_bench(BenchReport(provenance=provenance,
                            metrics=dict(_BENCH_METRICS)), path)
