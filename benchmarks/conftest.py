"""Shared benchmark configuration and the cached execution matrix.

Every benchmark runs its experiment exactly once (pedantic, one round)
and writes its text report to ``results/``.  Figures 15-17 share the
expensive full system x workload matrix through a session fixture.
"""

import pathlib

import pytest

from repro.experiments.runner import ExperimentConfig, run_matrix
from repro.systems import SYSTEM_NAMES

#: The benchmark evaluation configuration: full suite, quarter-scale
#: footprints with shrunken caches (footprint >> cache, as in the
#: paper's inflated-volume setup).
BENCH_CONFIG = ExperimentConfig(scale=0.25)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def full_matrix(bench_config):
    """The 15-workload x 11-system execution matrix (run once)."""
    return run_matrix(bench_config, list(SYSTEM_NAMES))


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one experiment's text report."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
