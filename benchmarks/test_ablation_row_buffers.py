"""Ablation: row-buffer count (the multi-row-buffer design).

Related work ([60] in the paper) reports that multiple row buffers cut
PRAM latency ~45% versus a single buffer.  Sweep RAB/RDB pairs over a
working set wider than one buffer.
"""

import dataclasses

import pytest

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.pram import PramGeometry
from repro.sim import Simulator

HOT_ROWS = 3
SWEEPS = 24


def mean_read_latency(buffers: int) -> float:
    sim = Simulator()
    geometry = dataclasses.replace(PramGeometry(), rab_count=buffers,
                                   rdb_count=buffers)
    subsystem = PramSubsystem(sim, geometry=geometry)
    # Distinct upper row bits per hot row (see the phase-skip bench).
    row_stride = 16 * 1024 << 7
    requests = []
    for _ in range(SWEEPS):
        for row in range(HOT_ROWS):
            requests.append(MemoryRequest(Op.READ, row * row_stride, 32))

    def driver():
        for request in requests:
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return subsystem.mean_read_latency()


def test_ablation_row_buffers(benchmark):
    latencies = benchmark.pedantic(
        lambda: {n: mean_read_latency(n) for n in (1, 2, 4, 8)},
        rounds=1, iterations=1)
    # One buffer thrashes a 3-row hot set; four (Table II) hold it.
    assert latencies[4] < latencies[1] * 0.65
    # Beyond the hot-set size, more buffers stop helping.
    assert latencies[8] == pytest.approx(latencies[4], rel=0.10)
    # Monotone non-increasing across the sweep.
    assert latencies[1] >= latencies[2] >= latencies[4] * 0.999
