"""Figure 12: the multi-resource aware interleaving overlap."""

from benchmarks.conftest import write_report
from repro.experiments import fig12_interleaving_timing


def test_fig12_interleaving(benchmark, results_dir, bench_record):
    result = benchmark.pedantic(fig12_interleaving_timing.run,
                                rounds=1, iterations=1)

    write_report(results_dir, "fig12_interleaving",
                 fig12_interleaving_timing.report(result))
    bench_record("fig12.hidden_fraction", result["hidden_fraction"],
                 better="higher", unit="fraction")
    bench_record("fig12.interleaved_total_ns",
                 result["interleaved_completions_ns"][-1],
                 better="lower", unit="ns")
    bench_record("fig12.bare_metal_total_ns",
                 result["bare_metal_completions_ns"][-1],
                 better="lower", unit="ns")
    # Abstract: "the new memory interleaving technique can hide the
    # memory access latency behind the corresponding data transfer
    # time by 40%".
    assert 0.25 <= result["hidden_fraction"] <= 0.60
    # Interleaved requests complete strictly earlier.
    for bare, inter in zip(result["bare_metal_completions_ns"][1:],
                           result["interleaved_completions_ns"][1:]):
        assert inter < bare
