"""Null fault-plan overhead guard.

Threading repro.faults through the stack put a ``faults is not None``
(plus one precomputed ``*_on`` flag) check into the module's read,
program, and occupy paths and into the channel's read/write chunk
machinery.  This benchmark pins that cost: a run under a fault plan
whose probabilities are all zero must stay within 5% of a run with no
plan at all.

Wall-clock comparisons on shared CI machines are noisy, so the two
variants are timed interleaved (alternating, so drift hits both
equally), the score is the minimum over several repetitions, and a
failing first pass gets one retry with more repetitions.
"""

import time
import typing

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.faults.plan import FaultConfig
from repro.sim import Simulator

#: Acceptance bound: zero-plan runtime / no-plan runtime.
MAX_OVERHEAD = 1.05

#: Simulated requests per timing sample (reads and writes: both the
#: ECC hook and the verify hook sit on the timed path).
REQUESTS = 192

#: A plan that can never fire a fault of any category.
ZERO_PLAN = FaultConfig(seed=9)


def _drive(faults: typing.Optional[FaultConfig]) -> float:
    sim = Simulator()
    subsystem = PramSubsystem(sim, faults=faults)

    def driver():
        for index in range(REQUESTS):
            address = (index * 512) % (1 << 20)
            if index % 2:
                request = MemoryRequest(Op.WRITE, address, 512,
                                        data=b"\x5A" * 512)
            else:
                request = MemoryRequest(Op.READ, address, 512)
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def _sample(faults: typing.Optional[FaultConfig]) -> float:
    start = time.perf_counter()
    _drive(faults)
    return time.perf_counter() - start


def _measure(repetitions: int) -> float:
    """Min-of-N interleaved ratio: zero-plan / no-plan."""
    zero_plan: list = []
    no_plan: list = []
    for _ in range(repetitions):
        zero_plan.append(_sample(ZERO_PLAN))
        no_plan.append(_sample(None))
    return min(zero_plan) / min(no_plan)


def test_zero_plan_timing_matches_no_plan():
    assert _drive(ZERO_PLAN) == _drive(None)


def test_null_fault_plan_overhead_within_bound():
    _sample(None)  # warm caches/allocator before timing
    ratio = _measure(7)
    if ratio > MAX_OVERHEAD:  # one retry with more repetitions
        ratio = _measure(15)
    assert ratio <= MAX_OVERHEAD, (
        f"zero-fault-plan run is {ratio:.3f}x the fault-free kernel "
        f"(bound {MAX_OVERHEAD}x)")
