"""Ablation: start-gap wear leveling (the Section VII extension).

Hammers a small set of logical rows and measures (a) the performance
overhead and (b) the endurance spread (max writes per physical line /
mean) with and without the leveler.
"""

from repro.controller import PramSubsystem
from repro.pram import PramGeometry
from repro.sim import Simulator

# Tiny partitions (16 rows) so full start-gap rotations complete
# within the benchmark's write budget.
GEOMETRY = PramGeometry(channels=2, modules_per_channel=2,
                        partitions_per_bank=4, tiles_per_partition=1,
                        bitlines_per_tile=256, wordlines_per_tile=16)

HOT_WRITES = 400


def hammer(wear_leveling: bool, interval: int = 8):
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=GEOMETRY,
                              wear_leveling=wear_leveling,
                              gap_write_interval=interval)

    def driver():
        for i in range(HOT_WRITES):
            payload = bytes([i % 255 + 1]) * 32
            yield sim.process(subsystem.write(0, payload))

    sim.process(driver())
    sim.run()
    tracker = subsystem.modules[0][0].cell_tracker(0)
    per_row = {}
    for (row, _word), count in tracker._write_counts.items():
        per_row[row] = per_row.get(row, 0) + count
    hottest = max(per_row.values())
    return sim.now, hottest, len(per_row)


def test_ablation_wear_leveling(benchmark):
    result = benchmark.pedantic(
        lambda: {"off": hammer(False), "on": hammer(True)},
        rounds=1, iterations=1)
    time_off, hottest_off, rows_off = result["off"]
    time_on, hottest_on, rows_on = result["on"]
    # Without leveling every program lands on one physical row.
    assert rows_off == 1
    # With start-gap the hot line rotates across the whole region and
    # the worst-wearing physical row absorbs a fraction of the writes.
    assert rows_on >= 8
    assert hottest_on < hottest_off * 0.5
    # The amortized cost of gap moves stays bounded at psi=8.
    assert time_on <= time_off * 1.40
