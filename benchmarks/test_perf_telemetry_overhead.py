"""Null-tracer overhead guard.

The telemetry rewiring put one ``tracer.enabled`` attribute load into
``Simulator.step`` and into every instrumented component path.  This
benchmark pins that cost: a simulation with the default null tracer
must run within 5% of a seed-replica kernel whose ``step`` has no
tracer hook at all.

Wall-clock comparisons on shared CI machines are noisy, so the two
variants are timed interleaved (alternating, so drift hits both
equally), the score is the minimum over several repetitions, and a
failing first pass gets one retry with more repetitions.
"""

import heapq
import time

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import Simulator

#: Acceptance bound: traced-but-disabled runtime / seed runtime.
MAX_OVERHEAD = 1.05

#: Simulated read stream size per timing sample.
REQUESTS = 192


def _seed_step(self) -> None:
    """The seed's ``Simulator.step``: no tracer hook."""
    if not self._heap:
        raise RuntimeError("step() on an empty event heap")
    when, _, event = heapq.heappop(self._heap)
    self._now = when
    callbacks, event.callbacks = event.callbacks, []
    event._processed = True
    for callback in callbacks:
        callback(event)


def _drive() -> float:
    sim = Simulator()
    subsystem = PramSubsystem(sim)

    def driver():
        for index in range(REQUESTS):
            request = MemoryRequest(Op.READ, (index * 512) % (1 << 20),
                                    512)
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def _sample() -> float:
    start = time.perf_counter()
    _drive()
    return time.perf_counter() - start


def _measure(repetitions: int, monkeypatch_ctx) -> float:
    """Min-of-N interleaved ratio: null-tracer step / seed step."""
    current: list = []
    seed: list = []
    for _ in range(repetitions):
        current.append(_sample())
        with monkeypatch_ctx() as patch:
            patch.setattr(Simulator, "step", _seed_step)
            seed.append(_sample())
    return min(current) / min(seed)


def test_null_tracer_overhead_within_bound(monkeypatch):
    import pytest

    _sample()  # warm caches/allocator before timing
    ratio = _measure(7, pytest.MonkeyPatch.context)
    if ratio > MAX_OVERHEAD:  # one retry with more repetitions
        ratio = _measure(15, pytest.MonkeyPatch.context)
    assert ratio <= MAX_OVERHEAD, (
        f"null-tracer run is {ratio:.3f}x the seed kernel "
        f"(bound {MAX_OVERHEAD}x)")
