"""Figure 18: total-IPC time series under gemver (read-intensive)."""

from benchmarks.conftest import write_report
from repro.experiments import fig18_19_ipc


def test_fig18_ipc_read(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        fig18_19_ipc.run_figure18, args=(bench_config,),
        rounds=1, iterations=1)
    write_report(results_dir, "fig18_ipc_gemver",
                 fig18_19_ipc.report(result))
    mean_ipc = result["mean_ipc"]
    stalls = result["stall_fraction"]
    # Paper: page-fetching systems leave PEs idle (zero-IPC valleys);
    # DRAM-less sustains IPC via byte-granule access.  Bucketized
    # zero-detection is coarse, so allow slack on the idle fraction and
    # lean on the mean-IPC ordering.
    assert stalls["DRAM-less"] <= stalls["PAGE-buffer"] + 0.15
    # DRAM-less IPC beats PAGE-buffer (paper: +292%) and NOR (+42%).
    assert mean_ipc["DRAM-less"] > mean_ipc["PAGE-buffer"]
    assert mean_ipc["DRAM-less"] > mean_ipc["NOR-intf"]
    # And every integrated flash grade.
    for name in ("Integrated-SLC", "Integrated-MLC", "Integrated-TLC"):
        assert mean_ipc["DRAM-less"] > mean_ipc[name]
