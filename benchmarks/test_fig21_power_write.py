"""Figure 21: core power and total energy, first 16 KB of doitg."""

from benchmarks.conftest import write_report
from repro.experiments import fig20_21_power


def test_fig21_power_write(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        fig20_21_power.run_figure21, args=(bench_config,),
        rounds=1, iterations=1)

    write_report(results_dir, "fig21_power_doitg",
                 fig20_21_power.report(result))
    completion = result["completion_ns"]
    energy = result["energy_mj"]
    # Paper: NOR-interf takes ~4x longer than PAGE-buffer on the same
    # write-intensive task; DRAM-less completes 50-88% sooner than the
    # alternatives.
    assert completion["NOR-intf"] > completion["PAGE-buffer"] * 2.0
    for name in ("Integrated-SLC", "PAGE-buffer", "NOR-intf"):
        assert completion["DRAM-less"] < completion[name], name
    assert energy["DRAM-less"] == min(energy.values())
