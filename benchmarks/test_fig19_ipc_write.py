"""Figure 19: total-IPC time series under doitg (write-intensive)."""

from benchmarks.conftest import write_report
from repro.experiments import fig18_19_ipc


def test_fig19_ipc_write(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        fig18_19_ipc.run_figure19, args=(bench_config,),
        rounds=1, iterations=1)

    write_report(results_dir, "fig19_ipc_doitg",
                 fig18_19_ipc.report(result))
    mean_ipc = result["mean_ipc"]
    # Paper: under the write-intensive workload DRAM-less keeps the
    # highest total IPC (5.1x/10.3x/15x/1.9x over Integrated-SLC/MLC/
    # TLC/PAGE-buffer); NOR degrades hard (78% worse than DRAM-less)
    # because its legacy writes are an order slower.
    for name in ("Integrated-SLC", "Integrated-MLC", "Integrated-TLC",
                 "PAGE-buffer", "NOR-intf"):
        assert mean_ipc["DRAM-less"] > mean_ipc[name], name
    assert mean_ipc["NOR-intf"] < mean_ipc["DRAM-less"] * 0.6
    # Flash stalls grow with cell density.
    stalls = result["stall_fraction"]
    assert stalls["Integrated-TLC"] >= stalls["Integrated-SLC"] - 0.05
