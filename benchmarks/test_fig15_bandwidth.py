"""Figure 15: normalized data-processing throughput of all systems."""

from benchmarks.conftest import write_report
from repro.experiments import fig15_bandwidth


def test_fig15_bandwidth(benchmark, bench_config, full_matrix,
                         results_dir, bench_record):
    result = benchmark.pedantic(
        fig15_bandwidth.run,
        kwargs={"config": bench_config, "matrix": full_matrix},
        rounds=1, iterations=1)

    write_report(results_dir, "fig15_bandwidth",
                 fig15_bandwidth.report(result))
    means = result["means"]
    bench_record("fig15.dramless_vs_hetero",
                 result["dramless_vs_hetero"],
                 better="higher", unit="fraction")
    bench_record("fig15.dramless_vs_heterodirect",
                 result["dramless_vs_heterodirect"],
                 better="higher", unit="fraction")
    bench_record("fig15.dramless_mean_throughput", means["DRAM-less"],
                 better="higher", unit="normalized")
    # Headline shape claims (paper values in parentheses):
    # DRAM-less beats Hetero decisively (+93%).
    assert result["dramless_vs_hetero"] >= 0.5
    # DRAM-less beats the P2P-DMA systems (+47%).
    assert result["dramless_vs_heterodirect"] >= 0.15
    # Hardware automation beats firmware admission (+25%).
    assert result["dramless_vs_firmware"] >= 0.10
    # P2P DMA beats the stock host stack (+25%).
    assert result["heterodirect_vs_hetero"] >= 0.10
    # DRAM-less is the best evaluated system overall.
    assert means["DRAM-less"] == max(means.values())
    # Flash grades order: SLC > MLC > TLC.
    assert (means["Integrated-SLC"] > means["Integrated-MLC"]
            > means["Integrated-TLC"])
    # PAGE-buffer beats Integrated-SLC (paper: +78%).
    assert means["PAGE-buffer"] > means["Integrated-SLC"]
