"""Ablation: write pausing ([66]) vs plain scheduling.

The paper argues its multi-resource interleaving reduces the need for
write cancellation/pausing; this ablation quantifies what pausing adds
on a mixed read/write stream: read tail latency collapses, writes
stretch slightly.
"""

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.pram import PramGeometry
from repro.sim import Simulator

GEOMETRY = PramGeometry(channels=1, modules_per_channel=2,
                        partitions_per_bank=4, tiles_per_partition=1,
                        bitlines_per_tile=256, wordlines_per_tile=256)


def mixed_stream(write_pausing: bool):
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=GEOMETRY,
                              write_pausing=write_pausing)
    reads = []

    def writer():
        for i in range(12):
            yield sim.process(subsystem.write(
                i * 64, bytes([i + 1]) * 32))

    def reader():
        for i in range(24):
            yield sim.timeout(1_500.0)
            request = MemoryRequest(Op.READ, (i % 12) * 64 + 512, 32)
            reads.append(request)
            yield sim.process(subsystem.submit(request))

    sim.process(writer())
    sim.process(reader())
    sim.run()
    latencies = sorted(request.latency for request in reads)
    p99 = latencies[int(len(latencies) * 0.99) - 1]
    return sim.now, p99


def test_ablation_write_pausing(benchmark):
    result = benchmark.pedantic(
        lambda: {"off": mixed_stream(False), "on": mixed_stream(True)},
        rounds=1, iterations=1)
    total_off, p99_off = result["off"]
    total_on, p99_on = result["on"]
    # Pausing collapses read tail latency under concurrent programs...
    assert p99_on < p99_off * 0.5
    # ...at a bounded cost in overall completion time.
    assert total_on <= total_off * 1.25
