"""Table II: characterized PRAM parameters."""

from repro.experiments import tables


def test_table2_parameters(benchmark):
    params = benchmark.pedantic(tables.table2_pram_parameters,
                                rounds=1, iterations=1)
    assert params["RL_cycles"] == 6
    assert params["WL_cycles"] == 3
    assert params["tCK_ns"] == 2.5
    assert params["tRP_cycles"] == 3
    assert params["tRCD_ns"] == 80.0
    assert params["tWR_ns"] == 15.0
    assert params["RAB"] == 4
    assert params["RDB"] == 4
    assert params["RDB_bytes"] == 32
    assert params["channels"] == 2
    assert params["packages"] == 16
    assert params["partitions"] == 16
    assert params["write_us"] == (10.0, 18.0)
