"""Disabled-sanitizer overhead guard.

The race-detection rework touched the kernel's hottest paths:
``Event.succeed``/``fail`` and ``Process._step`` gained a guarded
``sim._sanitizer`` load, ``Resource.request``/``release`` hook their
grant hand-offs, ``run()`` dispatches on the tie-break mode, and the
batched same-timestamp drain asserts FIFO counter order.  With no
sanitizer installed (every production run), all of that must cost at
most 2% against a seed-replica kernel with none of the hooks.

Methodology matches the null-tracer guard: interleaved timing
(alternating variants so host drift hits both equally), min-of-N
score, one retry with more repetitions on a failing first pass.
"""

import heapq
import math
import time

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import Simulator
from repro.sim.event import Event
from repro.sim.process import Process
from repro.sim.resource import Request, Resource

#: Acceptance bound: hooked-but-disabled runtime / seed runtime.
MAX_OVERHEAD = 1.02

#: Simulated read stream size per timing sample.
REQUESTS = 192


# ----------------------------------------------------------------------
# Seed replicas: the kernel methods with every sanitizer hook removed
# ----------------------------------------------------------------------
def _seed_succeed(self, value=None):
    if self._triggered:
        raise RuntimeError(f"{self!r} has already been triggered")
    self._ok = True
    self._value = value
    self._triggered = True
    self.sim._schedule(0.0, self)
    return self


def _seed_fail(self, exception):
    if self._triggered:
        raise RuntimeError(f"{self!r} has already been triggered")
    if not isinstance(exception, BaseException):
        raise TypeError("fail() requires an exception instance")
    self._ok = False
    self._value = exception
    self._triggered = True
    self.sim._schedule(0.0, self)
    return self


def _seed_process_step(self, value, throw):
    import typing

    previous = self.sim._active
    self.sim._active = self
    try:
        if throw:
            target = self._generator.throw(
                typing.cast(BaseException, value))
        else:
            target = self._generator.send(value)
    except StopIteration as stop:
        self.succeed(stop.value)
        return
    except BaseException as exc:
        self.fail(exc)
        return
    finally:
        self.sim._active = previous
    if not isinstance(target, Event):
        message = TypeError(
            f"process {self.name!r} yielded {target!r}; "
            "processes may only yield Event instances")
        self._step(message, throw=True)
        return
    if target.processed:
        passthrough = Event(self.sim, name=f"{self.name}.passthrough")
        passthrough._ok = target.ok
        passthrough._value = target.value
        passthrough._triggered = True
        passthrough.callbacks.append(self._resume)
        self.sim._schedule(0.0, passthrough)
        self._waiting_on = passthrough
    else:
        target.callbacks.append(self._resume)
        self._waiting_on = target


def _seed_request(self):
    req = Request(self)
    if len(self._users) < self.capacity:
        self._users.add(req)
        req.succeed()
    else:
        self._queue.append(req)
    return req


def _seed_release(self, request):
    if request in self._users:
        self._users.remove(request)
    elif request in self._queue:
        self._queue.remove(request)
        return
    else:
        raise ValueError(f"{request!r} does not hold {self.name}")
    while self._queue and len(self._users) < self.capacity:
        waiter = self._queue.popleft()
        self._users.add(waiter)
        waiter.succeed()


def _seed_run(self, until=None):
    if until is not None and math.isnan(until):
        raise ValueError("cannot run until NaN")
    if until is not None and until < self._now:
        raise ValueError(
            f"cannot run until {until} ns: clock already at {self._now} ns")
    if self._tracing:
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
    else:
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                break
            self._now = when
            while heap and heap[0][0] == when:
                _, _, event = pop(heap)
                callbacks, event.callbacks = event.callbacks, []
                event._processed = True
                for callback in callbacks:
                    callback(event)
    if until is not None:
        self._now = max(self._now, until)


_SEED_PATCHES = (
    (Event, "succeed", _seed_succeed),
    (Event, "fail", _seed_fail),
    (Process, "_step", _seed_process_step),
    (Resource, "request", _seed_request),
    (Resource, "release", _seed_release),
    (Simulator, "run", _seed_run),
)


def _drive() -> float:
    sim = Simulator()
    subsystem = PramSubsystem(sim)

    def driver():
        for index in range(REQUESTS):
            request = MemoryRequest(Op.READ, (index * 512) % (1 << 20),
                                    512)
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def _sample() -> float:
    start = time.perf_counter()
    _drive()
    return time.perf_counter() - start


def _measure(repetitions: int, monkeypatch_ctx) -> float:
    """Min-of-N interleaved ratio: hooked kernel / seed kernel."""
    current: list = []
    seed: list = []
    for _ in range(repetitions):
        current.append(_sample())
        with monkeypatch_ctx() as patch:
            for target, name, replacement in _SEED_PATCHES:
                patch.setattr(target, name, replacement)
            seed.append(_sample())
    return min(current) / min(seed)


def test_seed_replicas_produce_identical_results(monkeypatch):
    baseline = _drive()
    for target, name, replacement in _SEED_PATCHES:
        monkeypatch.setattr(target, name, replacement)
    assert _drive() == baseline


def test_disabled_sanitizer_overhead_within_bound(monkeypatch):
    import pytest

    _sample()  # warm caches/allocator before timing
    ratio = _measure(7, pytest.MonkeyPatch.context)
    if ratio > MAX_OVERHEAD:  # one retry with more repetitions
        ratio = _measure(15, pytest.MonkeyPatch.context)
    assert ratio <= MAX_OVERHEAD, (
        f"hooked-but-disabled run is {ratio:.3f}x the seed kernel "
        f"(bound {MAX_OVERHEAD}x)")
