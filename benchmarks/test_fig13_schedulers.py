"""Figure 13: the four subsystem scheduler configurations."""

from benchmarks.conftest import write_report
from repro.experiments import fig13_schedulers


def test_fig13_schedulers(benchmark, bench_config, results_dir,
                          bench_record):
    result = benchmark.pedantic(
        fig13_schedulers.run, args=(bench_config,), rounds=1, iterations=1)
    write_report(results_dir, "fig13_schedulers",
                 fig13_schedulers.report(result))
    rows = {row["workload"]: row for row in result["rows"]}
    bench_record("fig13.max_interleaving_gain",
                 result["max_interleaving_gain"],
                 better="higher", unit="fraction")
    bench_record("fig13.mean_final_speedup",
                 sum(r["final"] for r in result["rows"])
                 / len(result["rows"]),
                 better="higher", unit="x")
    # Tail latency of the final policy (sketch merged across the
    # suite); the provenance block stamps the sketch layout so compare
    # never diffs percentiles from mismatched bucketing.
    bench_record("fig13.final_p50_ns", result["latency_p50"],
                 better="lower", unit="ns")
    bench_record("fig13.final_p99_ns", result["latency_p99"],
                 better="lower", unit="ns")
    bench_record("fig13.final_p999_ns", result["latency_p999"],
                 better="lower", unit="ns")
    # Paper: interleaving improves bandwidth by as high as 54% (trmm).
    assert result["max_interleaving_gain"] >= 0.30
    # The biggest interleaving winner is a read-leaning workload —
    # write-heavy ones are capped by overwrite latency (Figure 13).
    best_interleaver = max(result["rows"], key=lambda r: r["interleaving"])
    assert best_interleaver["write_ratio"] < 1.0 / 3.0
    # Final never loses to bare-metal.
    for row in result["rows"]:
        assert row["final"] >= 0.97
    # Selective erasing never hurts: the opportunistic pre-resets back
    # off when they would delay a real write.  (The paper's +57% on
    # write-bound workloads needs idle overlay-window time our
    # saturated replay does not have — see EXPERIMENTS.md.)
    for row in result["rows"]:
        assert row["selective-erasing"] >= 0.98, row["workload"]
    # Where there is slack (read-leaning streams), it pays.
    assert max(rows[w]["selective-erasing"]
               for w in ("gemver", "trisolv", "durbin", "dynpro")) >= 1.04
