"""Ablation: partition count (the multi-partition architecture).

Interleaving hides array access behind data transfer only when
requests land on different partitions.  Sweep partitions-per-bank and
measure a concurrent read stream under the FINAL policy.
"""

import dataclasses

from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.pram import PramGeometry
from repro.sim import Simulator

REQUESTS = 64
STREAMS = 4


def stream_time(partitions: int) -> float:
    sim = Simulator()
    geometry = dataclasses.replace(PramGeometry(),
                                   partitions_per_bank=partitions)
    subsystem = PramSubsystem(sim, geometry=geometry,
                              policy=SchedulerPolicy.FINAL)
    stride = (geometry.row_bytes * geometry.modules_per_channel
              * geometry.channels)  # one partition rotation

    def agent(offset):
        for index in range(REQUESTS // STREAMS):
            address = ((offset + index * STREAMS) * stride)
            yield sim.process(subsystem.read(address, 32))

    for offset in range(STREAMS):
        sim.process(agent(offset))
    sim.run()
    return sim.now


def test_ablation_partitions(benchmark):
    times = benchmark.pedantic(
        lambda: {n: stream_time(n) for n in (1, 4, 16)},
        rounds=1, iterations=1)
    # A single partition serializes every activate; 16 (the paper's
    # architecture) lets concurrent streams overlap.
    assert times[16] < times[1]
    assert times[4] <= times[1]
