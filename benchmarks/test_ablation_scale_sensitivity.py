"""Ablation: result stability across footprint scales.

The reproduction runs at scaled-down footprints; the paper's claims
are about *ratios*.  This bench verifies the headline DRAM-less vs
Hetero ratio is stable (within a factor band) across a 4x scale sweep,
i.e. the conclusions do not hinge on the chosen scale.
"""

from repro.accel import AcceleratorConfig
from repro.systems import SystemConfig, build_system
from repro.workloads import generate_traces, workload


def ratio_at_scale(scale: float, name: str = "gemver") -> float:
    config = SystemConfig(
        accelerator=AcceleratorConfig(l1_bytes=2048, l2_bytes=16384),
        dram_fraction=0.4)
    bundle = generate_traces(workload(name), agents=7, scale=scale,
                             seed=1)
    dramless = build_system("DRAM-less", config).run(bundle)
    hetero = build_system("Hetero", config).run(bundle)
    return dramless.bandwidth_mb_s / hetero.bandwidth_mb_s


def test_ablation_scale_sensitivity(benchmark):
    ratios = benchmark.pedantic(
        lambda: {scale: ratio_at_scale(scale)
                 for scale in (0.1, 0.25, 0.5)},
        rounds=1, iterations=1)
    # DRAM-less wins at every scale...
    for scale, ratio in ratios.items():
        assert ratio > 1.2, f"scale {scale}: ratio {ratio}"
    # ...and the ratio stays within a 2x band across the sweep.
    values = list(ratios.values())
    assert max(values) / min(values) < 2.0
