"""Disabled-hostprof overhead guard.

The host profiler threaded two costs into the kernel: ``run()`` gained
an ``elif self._hostprofiling`` mode test, and ``__init__`` gained an
ambient-provider lookup.  The per-event paths are untouched — the
profiled drain is a separate method and the schedule census swaps
``_schedule`` as an instance attribute only when a profiler is bound —
so with no profiler installed (every production run) the whole feature
must cost at most 5% against a seed-replica ``run()`` with no profiler
branch at all.

Methodology matches the other disabled-hook guards: interleaved timing
(alternating variants so host drift hits both equally), min-of-N
score, one retry with more repetitions on a failing first pass.
"""

import heapq
import math
import time

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import Simulator
from repro.sim.hostprof import use_hostprof
from repro.telemetry.hostprof import HostProfiler

#: Acceptance bound: hooked-but-disabled runtime / seed runtime.
MAX_OVERHEAD = 1.05

#: Simulated read stream size per timing sample.
REQUESTS = 192


# ----------------------------------------------------------------------
# Seed replica: run() with no host-profiling branch
# ----------------------------------------------------------------------
def _seed_run(self, until=None):
    if until is not None and math.isnan(until):
        raise ValueError("cannot run until NaN")
    if until is not None and until < self._now:
        raise ValueError(
            f"cannot run until {until} ns: clock already at {self._now} ns")
    sampler = self.sampler
    if self._tiebreak_rng is not None:
        self._run_shuffled(until)
    elif self._tracing or self._sanitizing or self._sampling:
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                break
            if sampler is not None:
                sampler.advance(when)
            self.step()
    else:
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                break
            self._now = when
            last_seq = -1
            while heap and heap[0][0] == when:
                _, seq, event = pop(heap)
                assert seq > last_seq, (
                    "same-timestamp drain broke FIFO schedule order")
                last_seq = seq
                callbacks, event.callbacks = event.callbacks, []
                event._processed = True
                for callback in callbacks:
                    callback(event)
    if until is not None:
        if sampler is not None and until > self._now:
            sampler.advance(until)
        self._now = max(self._now, until)


_SEED_PATCHES = (
    (Simulator, "run", _seed_run),
)


def _drive() -> float:
    sim = Simulator()
    subsystem = PramSubsystem(sim)

    def driver():
        for index in range(REQUESTS):
            request = MemoryRequest(Op.READ, (index * 512) % (1 << 20),
                                    512)
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def _sample() -> float:
    start = time.perf_counter()
    _drive()
    return time.perf_counter() - start


def _measure(repetitions: int, monkeypatch_ctx) -> float:
    """Min-of-N interleaved ratio: hooked kernel / seed kernel."""
    current: list = []
    seed: list = []
    for _ in range(repetitions):
        current.append(_sample())
        with monkeypatch_ctx() as patch:
            for target, name, replacement in _SEED_PATCHES:
                patch.setattr(target, name, replacement)
            seed.append(_sample())
    return min(current) / min(seed)


def test_seed_replica_produces_identical_results(monkeypatch):
    baseline = _drive()
    for target, name, replacement in _SEED_PATCHES:
        monkeypatch.setattr(target, name, replacement)
    assert _drive() == baseline


def test_profiled_run_matches_unprofiled_physics():
    """The profiled drain must observe exactly what the fast drain
    does: same simulated end time, one dispatch counted per event."""
    baseline = _drive()
    profiler = HostProfiler()
    with use_hostprof(profiler):
        profiled = _drive()
    assert profiled == baseline
    assert sum(profiler.dispatches.values()) > 0
    assert profiler.total_ns() > 0


def test_disabled_hostprof_overhead_within_bound(monkeypatch):
    import pytest

    _sample()  # warm caches/allocator before timing
    ratio = _measure(7, pytest.MonkeyPatch.context)
    if ratio > MAX_OVERHEAD:  # one retry with more repetitions
        ratio = _measure(15, pytest.MonkeyPatch.context)
    assert ratio <= MAX_OVERHEAD, (
        f"hooked-but-disabled run is {ratio:.3f}x the seed kernel "
        f"(bound {MAX_OVERHEAD}x)")
