"""Ablation: RAB/RDB phase skipping (Section III-B).

The hardware-automated controller skips the pre-active phase on a RAB
hit and both address phases on an RDB hit.  This bench disables the
optimization and measures a locality-heavy read stream.
"""

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import Simulator

ROWS = 3      # within the 4 RAB/RDB pairs
REPEATS = 16


def run_stream(phase_skipping: bool) -> float:
    sim = Simulator()
    subsystem = PramSubsystem(sim, phase_skipping=phase_skipping)
    requests = []
    # Hot set of rows re-read repeatedly.  Rows must differ in their
    # *upper* row bits to occupy distinct RAB/RDB pairs: stride one
    # row (16 KB) shifted past the 7 direct lower-row bits.
    row_stride = 16 * 1024 << 7
    for repeat in range(REPEATS):
        for row in range(ROWS):
            requests.append(MemoryRequest(Op.READ, row * row_stride, 32))

    def driver():
        for request in requests:
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def test_ablation_phase_skipping(benchmark):
    skipping = benchmark.pedantic(run_stream, args=(True,),
                                  rounds=1, iterations=1)
    full = run_stream(False)
    # RDB hits cut ~87.5 ns of ~145 ns per access: expect a clear win.
    assert skipping < full * 0.70
