"""Ablation: L2 request (block) size.

Section III-B: "the server initiates a memory request based on 512
bytes per channel" and prefetches with all RDBs.  Sweep the L2 block
size on a streaming workload to show 512 B is a sweet spot between
per-request overhead (small blocks) and fetch waste (large blocks
under irregular access).
"""

from repro.accel import AcceleratorConfig
from repro.systems import SystemConfig
from repro.systems.pram_accel import DramlessSystem
from repro.workloads import generate_traces, workload


def run_block_size(block_bytes: int, name: str = "jaco1D") -> float:
    config = SystemConfig(accelerator=AcceleratorConfig(
        l1_bytes=2048, l2_bytes=16384, block_bytes=block_bytes))
    bundle = generate_traces(workload(name), agents=7, scale=0.1, seed=1)
    return DramlessSystem(config).run(bundle).total_ns


def test_ablation_request_size(benchmark):
    times = benchmark.pedantic(
        lambda: {size: run_block_size(size) for size in (128, 512, 2048)},
        rounds=1, iterations=1)
    # Ablation finding: 512 B sits within 10% of the best size on a
    # streaming workload — request overhead and fetch waste roughly
    # balance — while 2 KB fetches are measurably worse.
    best = min(times.values())
    assert times[512] <= best * 1.10
    assert times[2048] >= times[512]
