"""Table I: evaluated-system configuration parameters."""

from benchmarks.conftest import write_report
from repro.experiments import tables


def test_table1_configuration(benchmark, results_dir):
    rows = benchmark.pedantic(tables.table1_configuration,
                              rounds=1, iterations=1)
    by_name = {row["system"]: row for row in rows}
    # Table I's key cells.
    assert by_name["Hetero"]["nvm_write_us"] == 800.0       # MLC flash
    assert by_name["Hetero-PRAM"]["nvm_read_us"] == 0.1
    assert by_name["Integrated-SLC"]["nvm_read_us"] == 25.0
    assert by_name["Integrated-TLC"]["nvm_write_us"] == 1250.0
    assert by_name["DRAM-less"]["internal_dram"] is False
    assert by_name["PAGE-buffer"]["internal_dram"] is True
    write_report(results_dir, "table1", tables.report())
