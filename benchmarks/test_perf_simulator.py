"""Simulator-performance benchmarks (wall-clock, not simulated time).

These measure the discrete-event kernel itself — useful for spotting
regressions in the engine that every experiment's runtime depends on.
"""

import gc
import time

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import Simulator, backend_decisions, clear_backend_decisions
from repro.sim.hostprof import use_hostprof
from repro.telemetry.hostprof import (
    HostProfiler,
    speedscope_document,
    validate_speedscope,
)


def drive_read_stream(requests: int = 512,
                      backend: "str | None" = None) -> float:
    """Simulate a closed read stream; returns the simulated end time."""
    sim = Simulator()
    subsystem = PramSubsystem(sim)
    stream = [
        MemoryRequest(Op.READ, (index * 512) % (1 << 20), 512)
        for index in range(requests)
    ]
    subsystem.run_stream(stream, mode="closed", backend=backend)
    return sim.now


def test_perf_subsystem_read_stream(benchmark, bench_record):
    simulated_ns = benchmark(drive_read_stream)
    assert simulated_ns > 0
    # Simulated (not wall-clock) completion time: deterministic, so a
    # movement across commits is a real change in the modeled memory
    # subsystem, not host noise.
    bench_record("perf.read_stream_simulated_ns", simulated_ns,
                 better="lower", unit="ns")


def test_perf_compiled_speedup(bench_record):
    """The compiled backend must beat the interpreter by >= 5x.

    The stream is the kernel's best case on purpose — the gate measures
    the compiled path's headroom, not average-case gains: 4 KiB closed
    reads decompose into row-wide chunk waves that vectorize across a
    whole channel, while the interpreted engine pays a heap event per
    phase of every chunk.  Wall clock is noisy on shared CI hosts, so
    the measurement is an interleaved min-of-N of ``process_time`` with
    the collector parked; the ratio (not the absolute times) is the
    gated quantity.
    """
    requests = 64

    def run(backend: str) -> float:
        sim = Simulator()
        subsystem = PramSubsystem(sim)
        stream = [
            MemoryRequest(Op.READ, (index * 4096) % (1 << 20), 4096)
            for index in range(requests)
        ]
        subsystem.run_stream(stream, mode="closed", backend=backend)
        return sim.now

    # Warm-up runs double as the identity + engagement check: identical
    # simulated end times, and the compiled kernel actually ran (a
    # silent fallback would "pass" the ratio at 1x otherwise).
    clear_backend_decisions()
    interpreted_now = run("interpreted")
    compiled_now = run("compiled")
    assert interpreted_now == compiled_now
    decision = backend_decisions()[-1]
    assert decision.used == "compiled", decision.reasons

    def timed(backend: str) -> float:
        gc.collect()
        enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.process_time()
            run(backend)
            return time.process_time() - start
        finally:
            if enabled:
                gc.enable()

    # Interleaved pairs: a host slowdown mid-test hits both backends
    # instead of biasing whichever ran last.
    interpreted_times = []
    compiled_times = []
    for _ in range(5):
        interpreted_times.append(timed("interpreted"))
        compiled_times.append(timed("compiled"))
    speedup = min(interpreted_times) / min(compiled_times)
    assert speedup >= 5.0, (
        f"compiled backend only {speedup:.2f}x faster "
        f"(interpreted {min(interpreted_times) * 1e3:.1f} ms, "
        f"compiled {min(compiled_times) * 1e3:.1f} ms)")
    bench_record("perf.compiled_speedup", speedup, better="higher",
                 unit="ratio")


def test_perf_hostprof_attribution(bench_record):
    """The profiler's buckets must tile measured ``run()`` wall clock.

    The attribution model is a continuous timeline — dispatch segments
    plus the kernel gaps between them — so the bucket sum should cover
    at least 95% of an external stopwatch around the same drains
    (the remainder is the hook's own clock reads).  Also gates the
    speedscope export's structural validity and feeds the advisory
    ``host_ns.*`` aggregates into the BENCH trajectory.
    """
    profiler = HostProfiler()
    with use_hostprof(profiler):
        sim = Simulator()
        subsystem = PramSubsystem(sim)

        def driver():
            for index in range(512):
                request = MemoryRequest(Op.READ,
                                        (index * 512) % (1 << 20), 512)
                yield sim.process(subsystem.submit(request))

        sim.process(driver())
        start = time.perf_counter_ns()
        sim.run()
        measured_ns = time.perf_counter_ns() - start
    fraction = profiler.attributed_fraction(measured_ns)
    assert fraction >= 0.95, (
        f"only {fraction:.1%} of {measured_ns} ns of run() wall clock "
        "attributed to named buckets")
    # Every bucket carries a real (component, ..., kind) name.
    assert all(all(field for field in key) for key in profiler.buckets)
    document = speedscope_document(profiler)
    assert validate_speedscope(document) == []
    for name, metric in profiler.bench_metrics().items():
        bench_record(name, metric.value, better=metric.better,
                     unit=metric.unit)
    bench_record("hostprof.attributed_fraction", fraction,
                 better="higher", unit="ratio")


def test_perf_event_kernel(benchmark):
    """Raw kernel throughput: ping-pong between two processes."""

    def ping_pong(rounds: int = 5_000) -> float:
        sim = Simulator()

        def pinger():
            for _ in range(rounds):
                yield sim.timeout(1.0)

        sim.process(pinger())
        sim.run()
        return sim.now

    assert benchmark(ping_pong) == 5_000.0
