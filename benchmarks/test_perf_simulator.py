"""Simulator-performance benchmarks (wall-clock, not simulated time).

These measure the discrete-event kernel itself — useful for spotting
regressions in the engine that every experiment's runtime depends on.
"""

import time

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import Simulator
from repro.sim.hostprof import use_hostprof
from repro.telemetry.hostprof import (
    HostProfiler,
    speedscope_document,
    validate_speedscope,
)


def drive_read_stream(requests: int = 512) -> float:
    """Simulate a read stream; returns the simulated end time."""
    sim = Simulator()
    subsystem = PramSubsystem(sim)

    def driver():
        for index in range(requests):
            request = MemoryRequest(Op.READ, (index * 512) % (1 << 20),
                                    512)
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def test_perf_subsystem_read_stream(benchmark, bench_record):
    simulated_ns = benchmark(drive_read_stream)
    assert simulated_ns > 0
    # Simulated (not wall-clock) completion time: deterministic, so a
    # movement across commits is a real change in the modeled memory
    # subsystem, not host noise.
    bench_record("perf.read_stream_simulated_ns", simulated_ns,
                 better="lower", unit="ns")


def test_perf_hostprof_attribution(bench_record):
    """The profiler's buckets must tile measured ``run()`` wall clock.

    The attribution model is a continuous timeline — dispatch segments
    plus the kernel gaps between them — so the bucket sum should cover
    at least 95% of an external stopwatch around the same drains
    (the remainder is the hook's own clock reads).  Also gates the
    speedscope export's structural validity and feeds the advisory
    ``host_ns.*`` aggregates into the BENCH trajectory.
    """
    profiler = HostProfiler()
    with use_hostprof(profiler):
        sim = Simulator()
        subsystem = PramSubsystem(sim)

        def driver():
            for index in range(512):
                request = MemoryRequest(Op.READ,
                                        (index * 512) % (1 << 20), 512)
                yield sim.process(subsystem.submit(request))

        sim.process(driver())
        start = time.perf_counter_ns()
        sim.run()
        measured_ns = time.perf_counter_ns() - start
    fraction = profiler.attributed_fraction(measured_ns)
    assert fraction >= 0.95, (
        f"only {fraction:.1%} of {measured_ns} ns of run() wall clock "
        "attributed to named buckets")
    # Every bucket carries a real (component, ..., kind) name.
    assert all(all(field for field in key) for key in profiler.buckets)
    document = speedscope_document(profiler)
    assert validate_speedscope(document) == []
    for name, metric in profiler.bench_metrics().items():
        bench_record(name, metric.value, better=metric.better,
                     unit=metric.unit)
    bench_record("hostprof.attributed_fraction", fraction,
                 better="higher", unit="ratio")


def test_perf_event_kernel(benchmark):
    """Raw kernel throughput: ping-pong between two processes."""

    def ping_pong(rounds: int = 5_000) -> float:
        sim = Simulator()

        def pinger():
            for _ in range(rounds):
                yield sim.timeout(1.0)

        sim.process(pinger())
        sim.run()
        return sim.now

    assert benchmark(ping_pong) == 5_000.0
