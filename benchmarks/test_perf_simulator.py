"""Simulator-performance benchmarks (wall-clock, not simulated time).

These measure the discrete-event kernel itself — useful for spotting
regressions in the engine that every experiment's runtime depends on.
"""

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import Simulator


def drive_read_stream(requests: int = 512) -> float:
    """Simulate a read stream; returns the simulated end time."""
    sim = Simulator()
    subsystem = PramSubsystem(sim)

    def driver():
        for index in range(requests):
            request = MemoryRequest(Op.READ, (index * 512) % (1 << 20),
                                    512)
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def test_perf_subsystem_read_stream(benchmark, bench_record):
    simulated_ns = benchmark(drive_read_stream)
    assert simulated_ns > 0
    # Simulated (not wall-clock) completion time: deterministic, so a
    # movement across commits is a real change in the modeled memory
    # subsystem, not host noise.
    bench_record("perf.read_stream_simulated_ns", simulated_ns,
                 better="lower", unit="ns")


def test_perf_event_kernel(benchmark):
    """Raw kernel throughput: ping-pong between two processes."""

    def ping_pong(rounds: int = 5_000) -> float:
        sim = Simulator()

        def pinger():
            for _ in range(rounds):
                yield sim.timeout(1.0)

        sim.process(pinger())
        sim.run()
        return sim.now

    assert benchmark(ping_pong) == 5_000.0
