"""No-service-layer overhead guard.

Adding the service front end put two things on the plain (no front
end) request path: the subsystem's in-flight counter is now maintained
unconditionally so ``backpressure()`` always has a live signal, and a
completed-with-device-error request sets its ``fault_permanent`` flag.
This benchmark pins that cost the same way the null-tracer guard pins
the ``Simulator.step`` hook: a drive through the current ``submit``
must stay within 5% of a seed-replica ``submit`` with no service
hooks at all.

Wall-clock comparisons on shared CI machines are noisy, so the two
variants are timed interleaved (alternating, so drift hits both
equally), the score is the minimum over several repetitions, and a
failing first pass gets one retry with more repetitions.
"""

import time
import types
import typing

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.controller.request import RequestStatus
from repro.pram.errors import PramError
from repro.sim import Simulator
from repro.sim.compiled import BackendDecision, record_decision

#: Acceptance bound: current submit / seed-replica submit runtime.
MAX_OVERHEAD = 1.05

#: Simulated requests per timing sample (reads and writes).
REQUESTS = 192


def _seed_submit(self, request: MemoryRequest) -> typing.Generator:
    """The seed's ``submit``: no backpressure or permanence hooks.

    Byte-for-byte the current
    :meth:`~repro.controller.controller.PramSubsystem.submit` except
    the in-flight counter moves only under ``_metrics_on`` (as before
    the service layer needed it live) and the ``fault_permanent`` flag
    is never set.
    """
    if self._backend_note_pending:
        self._backend_note_pending = False
        record_decision(BackendDecision(
            "compiled", "interpreted",
            ("per-request submit() path (the compiled kernel "
             "batches through run_stream)",)))
    request.submit_time = self.sim.now
    if self._metrics_on:
        self._inflight += 1
        self.queue_depth.record(self.sim.now, float(self._inflight))
        if self._inflight_tracker is not None:
            self._inflight_tracker.adjust(self.sim.now, 1.0)
    if self.firmware is not None:
        yield self.sim.process(self.firmware.admit())
    by_channel = self.planner.chunks_by_channel(request)
    pending = [
        self.sim.process(self.channels[ch].execute_chunks(chunks))
        for ch, chunks in sorted(by_channel.items())
    ]
    failure: typing.Optional[PramError] = None
    results: typing.Dict[typing.Any, typing.Any] = {}
    try:
        results = yield self.sim.all_of(pending)
    except PramError as exc:
        failure = exc
    request.complete_time = self.sim.now
    if failure is not None:
        request.degrade(RequestStatus.FAILED,
                        f"{type(failure).__name__}: {failure}")
    sketch = self.latency_sketches.get(request.op.value)
    if sketch is not None:
        sketch.add(request.latency)
    if self._metrics_on:
        self._inflight -= 1
        self.queue_depth.record(self.sim.now, float(self._inflight))
        if self._inflight_tracker is not None:
            self._inflight_tracker.adjust(self.sim.now, -1.0)
        self.request_latency.add(request.latency)
    status = request.status
    if status is not RequestStatus.OK:
        if status is RequestStatus.FAILED:
            self.requests_failed += 1
        elif status is RequestStatus.DEGRADED:
            self.requests_degraded += 1
        if self.faults is not None:
            if status is RequestStatus.FAILED:
                self.faults.requests_failed += 1
            elif status is RequestStatus.DEGRADED:
                self.faults.requests_degraded += 1
            else:
                self.faults.requests_corrected += 1
        if self._metrics_on:
            self._metrics.counter(
                f"{self._metrics_prefix}.requests."
                f"{status.value}").add()
    tracer = self.sim.tracer
    if tracer.enabled:
        span_args: typing.Dict[str, typing.Any] = {
            "address": request.address, "size": request.size,
            "req": request.request_id, "op": request.op.value,
        }
        if status is not RequestStatus.OK:
            span_args["status"] = status.value
        tracer.emit(f"{request.op.value} 0x{request.address:x}",
                    "requests", request.submit_time, self.sim.now,
                    asynchronous=True, **span_args)
    if failure is not None:
        request.result = (bytes(request.size)
                          if request.op is Op.READ else b"")
    else:
        pieces = [piece for proc in pending for piece in results[proc]]
        pieces.sort(key=lambda piece: piece[0])
        request.result = b"".join(data for _, data in pieces)
    self.requests_completed += 1
    if request.done is not None:
        request.done.succeed(request.result)
    return request.result


def _drive(seed_replica: bool) -> float:
    sim = Simulator()
    subsystem = PramSubsystem(sim)
    if seed_replica:
        subsystem.submit = types.MethodType(_seed_submit, subsystem)

    def driver():
        for index in range(REQUESTS):
            address = (index * 512) % (1 << 20)
            if index % 2:
                request = MemoryRequest(Op.WRITE, address, 512,
                                        data=b"\x5A" * 512)
            else:
                request = MemoryRequest(Op.READ, address, 512)
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def _sample(seed_replica: bool) -> float:
    start = time.perf_counter()
    _drive(seed_replica)
    return time.perf_counter() - start


def _measure(repetitions: int) -> float:
    """Min-of-N interleaved ratio: current submit / seed submit."""
    current: list = []
    seed: list = []
    for _ in range(repetitions):
        current.append(_sample(False))
        seed.append(_sample(True))
    return min(current) / min(seed)


def test_seed_replica_timing_matches_current_submit():
    assert _drive(False) == _drive(True)


def test_no_service_layer_overhead_within_bound():
    _sample(False)  # warm caches/allocator before timing
    ratio = _measure(7)
    if ratio > MAX_OVERHEAD:  # one retry with more repetitions
        ratio = _measure(15)
    assert ratio <= MAX_OVERHEAD, (
        f"plain submit path is {ratio:.3f}x the pre-service seed "
        f"(bound {MAX_OVERHEAD}x)")
