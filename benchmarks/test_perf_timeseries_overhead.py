"""Disabled-sampler overhead guard.

The timeseries rewiring added two costs to an *unsampled* run: one
``self._sampling`` check in ``Simulator.run``'s dispatch-mode choice
(per run, not per event — the batched fast drain stays untouched) and
one always-on ``LatencySketch.add`` per request completion in the
subsystem and channel controllers.  This benchmark pins the sum: a
stock unsampled simulation must run within 5% of a seed replica whose
sketch ``add`` is a no-op.

Wall-clock comparisons on shared CI machines are noisy, so the two
variants are timed interleaved (alternating, so drift hits both
equally), the score is the minimum over several repetitions, and a
failing first pass gets one retry with more repetitions.
"""

import time

from repro.controller import MemoryRequest, Op, PramSubsystem
from repro.sim import LatencySketch, Simulator
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import Sampler

#: Acceptance bound: stock unsampled runtime / seed runtime.
MAX_OVERHEAD = 1.05

#: Simulated read stream size per timing sample.
REQUESTS = 192


def _seed_add(self, value: float) -> None:
    """The seed's sketch hook: record nothing."""


def _drive(sampler=None) -> float:
    sim = Simulator(sampler=sampler)
    subsystem = PramSubsystem(sim)

    def driver():
        for index in range(REQUESTS):
            request = MemoryRequest(Op.READ, (index * 512) % (1 << 20),
                                    512)
            yield sim.process(subsystem.submit(request))

    sim.process(driver())
    sim.run()
    return sim.now


def _sample() -> float:
    start = time.perf_counter()
    _drive()
    return time.perf_counter() - start


def _measure(repetitions: int, monkeypatch_ctx) -> float:
    """Min-of-N interleaved ratio: stock run / no-op-sketch seed run."""
    current: list = []
    seed: list = []
    for _ in range(repetitions):
        current.append(_sample())
        with monkeypatch_ctx() as patch:
            patch.setattr(LatencySketch, "add", _seed_add)
            seed.append(_sample())
    return min(current) / min(seed)


def test_disabled_sampler_overhead_within_bound(monkeypatch):
    import pytest

    _sample()  # warm caches/allocator before timing
    ratio = _measure(7, pytest.MonkeyPatch.context)
    if ratio > MAX_OVERHEAD:  # one retry with more repetitions
        ratio = _measure(15, pytest.MonkeyPatch.context)
    assert ratio <= MAX_OVERHEAD, (
        f"unsampled run is {ratio:.3f}x the seed run "
        f"(bound {MAX_OVERHEAD}x)")
    # Sanity: a live sampler produces the same simulated clock (the
    # hook observes, never perturbs) while routing per-event.
    sampler = Sampler(MetricsRegistry(enabled=True), window_ns=500.0)
    assert _drive(sampler) == _drive()
