"""Figure 7: firmware-managed PRAM vs the oracle (hardware) controller."""

from benchmarks.conftest import write_report
from repro.experiments import fig07_firmware


def test_fig07_firmware(benchmark, bench_config, results_dir):
    result = benchmark.pedantic(
        fig07_firmware.run, args=(bench_config,), rounds=1, iterations=1)

    write_report(results_dir, "fig07_firmware",
                 fig07_firmware.report(result))
    # Paper: firmware degrades the system by up to 80% on
    # data-intensive workloads.  Shape: every workload degrades, and
    # the worst case is substantial.
    for row in result["rows"]:
        assert row["normalized_performance"] < 1.0
    assert result["max_degradation"] >= 0.35
