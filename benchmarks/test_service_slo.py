"""Service-layer SLO benchmark: the overload sweep at bench scale.

Feeds the headline robustness metrics into the BENCH trajectory —
goodput retention at 10x offered load, shed/timeout fractions, and
per-class p50/p99/p999 goodput latency — and asserts the
graceful-degradation acceptance bar: goodput under 10x overload stays
within 20% of the saturation plateau, and a rogue tenant cannot push
a compliant class past its latency SLO with per-tenant queues.
"""

from benchmarks.conftest import write_report
from repro.experiments import service_sweeps


def test_service_overload_slo(benchmark, bench_config, results_dir,
                              bench_record):
    result = benchmark.pedantic(
        service_sweeps.run_overload, args=(bench_config,), rounds=1,
        iterations=1)
    write_report(results_dir, "service_overload",
                 service_sweeps.report_overload(result))

    plateau = max(row["result"].goodput_rps
                  for row in result["rows"] if row["multiplier"] >= 1.0)
    worst = result["rows"][-1]["result"]
    retention = worst.goodput_rps / plateau if plateau > 0 else 0.0
    totals = worst.totals()
    offered = max(1.0, float(worst.offered))

    bench_record("service.sustainable_rate_rps", result["rate_max_rps"],
                 better="higher", unit="rps")
    bench_record("service.goodput_retention_10x", retention,
                 better="higher", unit="fraction")
    bench_record("service.shed_fraction_10x", totals["shed"] / offered,
                 better="neutral", unit="fraction")
    bench_record("service.timeout_fraction_10x",
                 totals["timeout"] / offered,
                 better="lower", unit="fraction")
    merged = worst.merged_sketch()
    if merged.count:
        for quantile, name in ((0.50, "p50"), (0.99, "p99"),
                               (0.999, "p999")):
            bench_record(f"service.goodput_{name}_ns",
                         merged.percentile(quantile),
                         better="lower", unit="ns")

    # Acceptance: graceful degradation, not congestion collapse.
    assert retention >= service_sweeps.COLLAPSE_THRESHOLD, (
        f"goodput at 10x fell to {retention:.0%} of the plateau")
    # The excess offered load is shed or expired, never silently lost.
    assert sum(totals.values()) == worst.offered


def test_service_tenant_isolation_slo(benchmark, bench_config,
                                      results_dir, bench_record):
    result = benchmark.pedantic(
        service_sweeps.run_isolation, args=(bench_config,), rounds=1,
        iterations=1)
    write_report(results_dir, "service_tenant_isolation",
                 service_sweeps.report_isolation(result))

    isolated = result["arms"][0]["result"]
    compliant = isolated.class_stats(compliant_only=True)
    slo_met = all(stats.meets_slo for stats in compliant.values())
    bench_record("service.isolation_slo_met", float(slo_met),
                 better="higher", unit="bool")
    for name, stats in compliant.items():
        if stats.sketch.count:
            bench_record(f"service.{name}_p99_ns", stats.p99_ns,
                         better="lower", unit="ns")
    # Acceptance: per-tenant queues keep every compliant class within
    # its latency SLO despite the rogue tenant.
    assert slo_met, service_sweeps.report_isolation(result)
