"""Ablation: PE store-buffer depth.

The agents' store buffers hide PRAM program latency until they fill.
Sweep the depth on a write-intensive workload (doitg).
"""

import dataclasses

from repro.accel import AcceleratorConfig
from repro.systems import SystemConfig
from repro.systems.pram_accel import DramlessSystem
from repro.workloads import generate_traces, workload


def run_depth(depth: int) -> float:
    config = SystemConfig(accelerator=AcceleratorConfig(
        l1_bytes=2048, l2_bytes=16384, store_buffer_depth=depth))
    bundle = generate_traces(workload("doitg"), agents=7, scale=0.1,
                             seed=1)
    return DramlessSystem(config).run(bundle).total_ns


def test_ablation_store_buffer(benchmark):
    times = benchmark.pedantic(
        lambda: {d: run_depth(d) for d in (1, 4, 16)},
        rounds=1, iterations=1)
    # Ablation finding: on a write-bound workload the PRAM subsystem's
    # program throughput is the bottleneck, so buffer depth barely
    # moves total time — the buffer's job is reordering *where* the
    # wait happens, not removing it.  All depths land within 10%.
    best, worst = min(times.values()), max(times.values())
    assert worst <= best * 1.10
