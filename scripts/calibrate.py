#!/usr/bin/env python
"""Quick calibration sweep: geomean normalized bandwidth per system.

Compares the model's shape against the paper's headline ratios:
Heterodirect/Hetero ~ 1.25, DRAM-less/Hetero ~ 1.93,
DRAM-less/Heterodirect ~ 1.47, DRAM-less/DRAM-less(fw) ~ 1.25,
DRAM-less/PAGE-buffer ~ 1.64.
"""

from __future__ import annotations

import math
import sys
import typing

from repro.accel import AcceleratorConfig
from repro.systems import SystemConfig, build_system
from repro.systems.base import ExecutionResult
from repro.workloads import generate_traces, workload

NAMES = ["Hetero", "Heterodirect", "Hetero-PRAM", "Heterodirect-PRAM",
         "NOR-intf", "Integrated-SLC", "Integrated-MLC", "Integrated-TLC",
         "PAGE-buffer", "DRAM-less (firmware)", "DRAM-less"]
SHORT = ["Het", "Hetd", "HetP", "HetdP", "NOR", "iSLC", "iMLC", "iTLC",
         "PAGE", "DLfw", "DL"]
WORKLOADS = ["gemver", "doitg", "trmm", "jaco1D", "adi", "durbin"]


def main() -> None:
    frac = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    cfg = SystemConfig(
        accelerator=AcceleratorConfig(l1_bytes=2048, l2_bytes=16384),
        dram_fraction=frac)
    geo: typing.Dict[str, typing.List[float]] = {}
    for name_wl in WORKLOADS:
        bundle = generate_traces(workload(name_wl), agents=7, scale=scale,
                                 seed=1)
        base: typing.Optional[ExecutionResult] = None
        row: typing.List[typing.Tuple[str, float]] = []
        for name, s in zip(NAMES, SHORT):
            result = build_system(name, cfg).run(bundle)
            if base is None:
                base = result
            value = result.bandwidth_mb_s / base.bandwidth_mb_s
            row.append((s, value))
            geo.setdefault(s, []).append(value)
        print(f"{name_wl:8s} " + " ".join(f"{s}={v:5.2f}" for s, v in row))
    means = {s: math.exp(sum(map(math.log, v)) / len(v))
             for s, v in geo.items()}
    print("geomean  " + " ".join(f"{s}={v:5.2f}" for s, v in means.items()))
    print(f"targets: Hetd/Het~1.25 (got {means['Hetd']:.2f}), "
          f"DL/Het~1.93 (got {means['DL']:.2f}), "
          f"DL/Hetd~1.47 (got {means['DL'] / means['Hetd']:.2f}), "
          f"DL/DLfw~1.25 (got {means['DL'] / means['DLfw']:.2f}), "
          f"DL/PAGE~1.64 (got {means['DL'] / means['PAGE']:.2f})")


if __name__ == "__main__":
    main()
