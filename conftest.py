"""Repository-root pytest configuration.

Registers the analysis plugin: the ``@pytest.mark.determinism`` marker
(run twice, diff kernel event traces) and the ``protocol_monitor``
fixture (fail on LPDDR2-NVM conformance violations).
"""

pytest_plugins = ("repro.analysis.pytest_plugin",)
