#!/usr/bin/env python
"""Quickstart: talk to the hardware-automated PRAM subsystem directly.

Builds the two-channel PRAM subsystem (Table II's geometry and timing),
writes data through the overlay-window program path, reads it back over
three-phase addressing, and shows what phase skipping and selective
erasing do to latency.

Run:  python examples/quickstart.py
"""

from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.sim import Simulator


def timed(sim, subsystem, request):
    """Submit one request; returns (latency_ns, data)."""
    proc = sim.process(subsystem.submit(request))
    sim.run()
    return request.latency, request.result


def main() -> None:
    sim = Simulator()
    subsystem = PramSubsystem(sim, policy=SchedulerPolicy.FINAL)
    print(f"PRAM subsystem: {subsystem.geometry.channels} channels x "
          f"{subsystem.geometry.modules_per_channel} modules x "
          f"{subsystem.geometry.partitions_per_bank} partitions "
          f"({subsystem.geometry.total_bytes / 2**30:.0f} GiB)")

    # -- a write goes through the overlay window + program buffer ------
    payload = bytes(range(64))
    write = MemoryRequest(Op.WRITE, address=0x1000, size=64, data=payload)
    latency, _ = timed(sim, subsystem, write)
    print(f"write 64 B (SET-only, pristine cells): {latency / 1e3:.2f} us")

    # -- a read runs the three-phase addressing protocol ---------------
    read = MemoryRequest(Op.READ, address=0x1000, size=64)
    latency, data = timed(sim, subsystem, read)
    assert data == payload, "read back what was written"
    print(f"read 64 B (pre-active + activate + read): {latency:.1f} ns")

    # -- a second read of the same rows hits the RDBs ------------------
    again = MemoryRequest(Op.READ, address=0x1000, size=64)
    latency, _ = timed(sim, subsystem, again)
    print(f"read again (RDB hit, both phases skipped): {latency:.1f} ns")

    # -- overwrites pay RESET+SET ... ----------------------------------
    overwrite = MemoryRequest(Op.WRITE, address=0x1000, size=64,
                              data=bytes(64))
    latency, _ = timed(sim, subsystem, overwrite)
    print(f"overwrite 64 B (RESET + SET): {latency / 1e3:.2f} us")

    # -- ... unless selective erasing pre-RESET the rows ----------------
    subsystem.register_write_hint(0x1000, 64)
    drain = sim.process(subsystem.drain_hints())
    sim.run()
    assert drain.ok
    hinted = MemoryRequest(Op.WRITE, address=0x1000, size=64,
                           data=payload)
    latency, _ = timed(sim, subsystem, hinted)
    print(f"overwrite after selective erase (SET-only): "
          f"{latency / 1e3:.2f} us")

    counts = subsystem.operation_counts()
    print(f"device ops: {counts['reads']} reads, {counts['programs']} "
          f"programs, {counts['resets']} pre-resets")


if __name__ == "__main__":
    main()
