#!/usr/bin/env python
"""Define your own workload and evaluate it on any system.

The library is not limited to the Polybench suite: any application can
be characterized as a :class:`~repro.workloads.WorkloadSpec` (footprint,
read/write mix, compute intensity, access regularity, kernel rounds)
and run on every Table I system.  This example models a streaming
key-value scan with a small aggregation output — the kind of analytics
kernel the paper's introduction motivates.

Run:  python examples/custom_workload.py
"""

from repro.accel import AcceleratorConfig
from repro.systems import SystemConfig, build_system
from repro.workloads import Category, WorkloadSpec, generate_traces

#: A scan-heavy analytics kernel: reads a large table once per pass,
#: emits a small aggregate, two passes (filter then aggregate).
KV_SCAN = WorkloadSpec(
    name="kvscan",
    full_name="Key-value table scan with aggregation",
    category=Category.MEMORY_INTENSIVE,
    input_kb=512,              # the table
    output_kb=32,              # the aggregates
    compute_ops_per_byte=1.5,  # predicate + hash per record
    reuse_factor=0.05,         # nearly pure streaming
    sequential=True,
    kernel_rounds=2,
)

SYSTEMS = ("Hetero", "Heterodirect", "Integrated-SLC", "PAGE-buffer",
           "DRAM-less")


def main() -> None:
    bundle = generate_traces(KV_SCAN, agents=7, scale=0.25, seed=7)
    config = SystemConfig(
        accelerator=AcceleratorConfig(l1_bytes=2048, l2_bytes=16384),
        dram_fraction=0.4)

    print(f"workload: {KV_SCAN.full_name}")
    print(f"  {bundle.input_bytes / 1024:.0f} KB scanned per round, "
          f"{bundle.round_count} rounds, write ratio "
          f"{KV_SCAN.write_ratio:.2f}")
    print(f"{'system':16s} {'time (ms)':>10s} {'MB/s':>8s} "
          f"{'energy (mJ)':>12s}")

    baseline = None
    for name in SYSTEMS:
        result = build_system(name, config).run(bundle)
        if baseline is None:
            baseline = result
        print(f"{name:16s} {result.total_ns / 1e6:10.3f} "
              f"{result.bandwidth_mb_s:8.1f} {result.energy_mj:12.3f}")

    print("\nBecause the table lives *in* the accelerator's PRAM, the "
          "DRAM-less scan\nskips the per-pass staging every host-"
          "coordinated system pays.")


if __name__ == "__main__":
    main()
