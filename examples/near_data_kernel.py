#!/usr/bin/env python
"""Near-data processing with the DRAM-less programming model.

Walks the full Figure 9b/10 flow by hand: pack a kernel image
(packData), push it over PCIe (pushData), let the server parse it
(unpackData) and boot agents through the power/sleep controller, and
watch the agents crunch data living directly in PRAM.

Run:  python examples/near_data_kernel.py
"""

from repro.accel import (
    Accelerator,
    ComputeOp,
    LoadOp,
    StoreOp,
    pack_data,
    unpack_data,
)
from repro.accel.kernel import KernelSegment, push_data
from repro.controller import PramSubsystem
from repro.host import PcieLink
from repro.sim import Simulator
from repro.systems.backends import PramBackend
from repro.energy import EnergyAccount

#: A tiny "vector scale" kernel: per 512-byte tile, load, compute with
#: DSP intrinsics, and store the result tile.
TILES_PER_AGENT = 16
INPUT_BASE = 0
OUTPUT_BASE = 1 << 20


def vector_scale_trace(agent: int):
    ops = []
    for tile in range(TILES_PER_AGENT):
        offset = (agent * TILES_PER_AGENT + tile) * 512
        ops.append(LoadOp(INPUT_BASE + offset, 32))
        ops.append(ComputeOp(512, dsp_intrinsics=True))
        ops.append(StoreOp(OUTPUT_BASE + offset, 512))
    return ops


def main() -> None:
    sim = Simulator()
    energy = EnergyAccount()
    subsystem = PramSubsystem(sim)
    backend = PramBackend(sim, energy, subsystem)
    accel = Accelerator(sim, backend)

    # Input data lives in PRAM already: no staging, it is the storage.
    total_input = accel.agent_count * TILES_PER_AGENT * 512
    backend.preload(INPUT_BASE, bytes(range(256)) * (total_input // 256))

    # --- packData: build the kernel image -----------------------------
    image_bytes = pack_data([
        KernelSegment("vector_scale", load_address=1 << 26,
                      entry_offset=0, payload=b"\x90" * 2048),
        KernelSegment("shared", load_address=(1 << 26) + 4096,
                      entry_offset=0, payload=b"\x90" * 512),
    ])
    image = unpack_data(image_bytes)
    print(f"kernel image: {image.names}, {image.total_bytes} B of code")

    # --- pushData: ship it over PCIe, then run everything --------------
    link = PcieLink(sim, energy=energy)

    def driver():
        yield sim.process(push_data(sim, link, image_bytes))
        parsed = yield from accel.server.load_image(
            image_bytes, output_regions=[(OUTPUT_BASE, total_input)])
        traces = [vector_scale_trace(agent)
                  for agent in range(accel.agent_count)]
        yield from accel.server.run_all(parsed, "vector_scale", traces)
        return accel.collect_stats(0.0)

    proc = sim.process(driver())
    sim.run()
    assert proc.ok, proc.value
    stats = proc.value

    print(f"agents: {accel.agent_count}, kernels launched: "
          f"{accel.server.kernels_launched}")
    print(f"elapsed: {stats.elapsed_ns / 1e3:.1f} us, "
          f"instructions: {stats.instructions}")
    print(f"aggregate IPC (mean): {stats.mean_aggregate_ipc:.2f}")
    print(f"compute vs stall: {stats.compute_ns / 1e3:.1f} us / "
          f"{stats.stall_ns / 1e3:.1f} us (summed over agents)")

    # Outputs are already persistent in PRAM: verify functionally.
    out = backend.inspect(OUTPUT_BASE, 16)
    print(f"first output bytes (agent fill patterns): {out.hex()}")
    print(f"energy so far: {energy.total_mj:.3f} mJ "
          f"({', '.join(f'{k}={v / 1e6:.3f}' for k, v in energy.by_category().items())})")


if __name__ == "__main__":
    main()
