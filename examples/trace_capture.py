#!/usr/bin/env python
"""Capture a Perfetto trace and a metrics summary from a traced run.

Installs an ambient :class:`repro.telemetry.Telemetry` session, drives
four reads at four different partitions of one PRAM module under the
interleaving scheduler (the Figure 12 scenario), then exports:

* ``trace_capture.json``  — open at https://ui.perfetto.dev: one
  "thread" per hardware lane (channel bus, each partition, in-flight
  requests).  Look for a ``read_burst`` slice on ``ch0.bus`` running
  *during* another partition's ``activate`` slice — that concurrency
  is the latency the interleaving scheduler hides.
* ``trace_capture.jsonl`` — JSON-lines span log; the ``command`` lines
  are LPDDR2-NVM command records the ``repro.analysis`` conformance
  checker can replay.
* a metrics summary table on stdout (phase skips, buffer hits,
  scheduler overlap).

Run:  python examples/trace_capture.py
"""

from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.pram import PramGeometry
from repro.sim import Simulator
from repro.telemetry import Telemetry

#: One channel, one module, four partitions — small enough that the
#: exported trace is readable slice by slice.
GEOMETRY = PramGeometry(channels=1, modules_per_channel=1,
                        partitions_per_bank=4, tiles_per_partition=1,
                        bitlines_per_tile=512, wordlines_per_tile=512)


def main() -> None:
    telemetry = Telemetry()
    with telemetry.activate():
        # Components bind the ambient tracer/metrics at construction,
        # so everything built here is traced end to end.
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=GEOMETRY,
                                  policy=SchedulerPolicy.INTERLEAVING)
        stride = GEOMETRY.row_bytes
        requests = [
            MemoryRequest(Op.READ, i * stride, GEOMETRY.row_bytes)
            for i in range(4)
        ]

        def driver():
            pending = [sim.process(subsystem.submit(r)) for r in requests]
            yield sim.all_of(pending)
            # Read the same rows again: every row is still latched in
            # its partition's RDB, so both array phases are skipped.
            again = [sim.process(subsystem.submit(
                MemoryRequest(Op.READ, i * stride, GEOMETRY.row_bytes)))
                for i in range(4)]
            yield sim.all_of(again)

        sim.process(driver())
        with telemetry.tracer.scope("trace-capture"):
            sim.run()

    telemetry.write_trace("trace_capture.json")
    telemetry.write_spanlog("trace_capture.jsonl")
    channel = subsystem.channels[0]
    print(f"captured {len(telemetry.tracer.spans)} spans, "
          f"{len(telemetry.tracer.commands)} protocol commands")
    print(f"burst/array overlap: {channel.overlap_ns:.1f} ns "
          f"(latency the interleaving scheduler hid)")
    print(f"RDB hits on the re-read wave: {channel.rdb_hits}")
    print()
    print(telemetry.summary("pram.*"))
    print()
    print("open trace_capture.json at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
