#!/usr/bin/env python
"""Compare accelerated systems on one Polybench workload (Figure 15/17).

Runs a workload (default: gemver) on a chosen set of Table I systems
and prints throughput normalized to Hetero plus total energy — a
single-workload slice of Figures 15 and 17.

Run:  python examples/system_comparison.py [workload] [scale]
"""

import sys

from repro.accel import AcceleratorConfig
from repro.systems import SystemConfig, build_system
from repro.workloads import generate_traces, workload

SYSTEMS = ("Hetero", "Heterodirect", "Hetero-PRAM", "Heterodirect-PRAM",
           "NOR-intf", "Integrated-SLC", "Integrated-MLC",
           "Integrated-TLC", "PAGE-buffer", "DRAM-less (firmware)",
           "DRAM-less")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gemver"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    spec = workload(name)
    bundle = generate_traces(spec, agents=7, scale=scale, seed=1)
    config = SystemConfig(
        accelerator=AcceleratorConfig(l1_bytes=2048, l2_bytes=16384),
        dram_fraction=0.5)

    print(f"workload: {spec.full_name} ({spec.category.value}, "
          f"write ratio {spec.write_ratio:.2f}, "
          f"{bundle.round_count} kernel rounds, "
          f"{bundle.total_bytes / 1024:.0f} KB processed)")
    print(f"{'system':22s} {'time (ms)':>10s} {'MB/s':>8s} "
          f"{'vs Hetero':>10s} {'energy (mJ)':>12s}")

    baseline = None
    for system_name in SYSTEMS:
        result = build_system(system_name, config).run(bundle)
        if baseline is None:
            baseline = result
        print(f"{system_name:22s} {result.total_ns / 1e6:10.3f} "
              f"{result.bandwidth_mb_s:8.1f} "
              f"{result.normalized_to(baseline):10.2f} "
              f"{result.energy_mj:12.3f}")


if __name__ == "__main__":
    main()
