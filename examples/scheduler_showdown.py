#!/usr/bin/env python
"""Scheduler showdown: the four PRAM subsystem policies of Figure 13.

Replays a mixed read/write request stream (7 concurrent agents, like
the accelerator's PEs) against the PRAM subsystem under bare-metal,
interleaving, selective-erasing, and final scheduling, and prints the
achieved bandwidth of each.

Run:  python examples/scheduler_showdown.py
"""

from repro.controller import PramSubsystem, SchedulerPolicy
from repro.sim import Simulator

AGENTS = 7
BLOCKS_PER_AGENT = 48
BLOCK = 512
OUTPUT_BASE = 1 << 22
WRITE_EVERY = 3  # one output write per three input reads


def agent_stream(sim, subsystem, agent, totals):
    base = agent * BLOCKS_PER_AGENT * BLOCK
    for index in range(BLOCKS_PER_AGENT):
        yield sim.process(subsystem.read(base + index * BLOCK, BLOCK))
        totals["bytes"] += BLOCK
        if index % WRITE_EVERY == 0:
            address = OUTPUT_BASE + base + index * BLOCK
            yield sim.process(subsystem.write(address, b"\xA5" * BLOCK))
            totals["bytes"] += BLOCK


def bandwidth(policy) -> float:
    sim = Simulator()
    subsystem = PramSubsystem(sim, policy=policy)
    # Preload inputs and mark the output region as previously written,
    # so writes are genuine overwrites (the selective-erase scenario).
    for agent in range(AGENTS):
        base = agent * BLOCKS_PER_AGENT * BLOCK
        subsystem.preload(base, bytes([agent + 1]) * (BLOCKS_PER_AGENT
                                                      * BLOCK))
        subsystem.preload(OUTPUT_BASE + base,
                          bytes([0xEE]) * (BLOCKS_PER_AGENT * BLOCK))
    subsystem.register_write_hint(OUTPUT_BASE,
                                  AGENTS * BLOCKS_PER_AGENT * BLOCK)
    totals = {"bytes": 0}

    def driver():
        drain = sim.process(subsystem.drain_hints())
        agents = [sim.process(agent_stream(sim, subsystem, a, totals))
                  for a in range(AGENTS)]
        yield sim.all_of(agents + [drain])

    proc = sim.process(driver())
    sim.run()
    assert proc.ok, proc.value
    return totals["bytes"] / sim.now * 1e3  # MB/s


def main() -> None:
    policies = (SchedulerPolicy.BARE_METAL, SchedulerPolicy.INTERLEAVING,
                SchedulerPolicy.SELECTIVE_ERASE, SchedulerPolicy.FINAL)
    results = {policy: bandwidth(policy) for policy in policies}
    baseline = results[SchedulerPolicy.BARE_METAL]
    print(f"{'policy':18s} {'MB/s':>9s} {'vs bare-metal':>14s}")
    for policy in policies:
        gain = results[policy] / baseline - 1.0
        print(f"{policy.value:18s} {results[policy]:9.1f} {gain:+13.1%}")
    print("\nFigure 13's story: interleaving overlaps array access with "
          "data transfer;\nselective erasing turns 18 us overwrites into "
          "10 us SET-only programs;\nFinal (the DRAM-less default) "
          "combines both.")


if __name__ == "__main__":
    main()
