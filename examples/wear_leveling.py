#!/usr/bin/env python
"""Start-gap wear leveling: spreading a hot row across the PRAM.

PRAM cells endure a bounded number of SET/RESET cycles.  Section VII
notes DRAM-less "can integrate traditional wear levellers ... such as
start-gap".  This example hammers one logical row and compares the
physical write distribution with the leveler off and on.

Run:  python examples/wear_leveling.py
"""

from repro.controller import PramSubsystem
from repro.pram import PramGeometry
from repro.sim import Simulator

# A deliberately tiny partition (16 rows) so full start-gap rotations
# complete within a short demo: the gap takes lines+1 moves to sweep
# the region once and shifts the hot line by one row per sweep.
GEOMETRY = PramGeometry(channels=1, modules_per_channel=1,
                        partitions_per_bank=2, tiles_per_partition=1,
                        bitlines_per_tile=256, wordlines_per_tile=16)
HOT_WRITES = 600
GAP_INTERVAL = 2  # aggressive, to make migration visible quickly


def hammer(wear_leveling: bool):
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=GEOMETRY,
                              wear_leveling=wear_leveling,
                              gap_write_interval=GAP_INTERVAL)

    def driver():
        for i in range(HOT_WRITES):
            payload = bytes([i % 255 + 1]) * 32
            yield sim.process(subsystem.write(0, payload))
        data = yield from subsystem.read(0, 32)
        assert data == bytes([(HOT_WRITES - 1) % 255 + 1]) * 32

    sim.process(driver())
    sim.run()

    tracker = subsystem.modules[0][0].cell_tracker(0)
    per_row = {}
    for (row, _word), count in tracker._write_counts.items():
        per_row[row] = per_row.get(row, 0) + count
    moves = sum(channel.gap_moves for channel in subsystem.channels)
    return sim.now, per_row, moves


def main() -> None:
    for enabled, label in ((False, "wear leveling OFF"),
                           (True, f"wear leveling ON (psi={GAP_INTERVAL})")):
        elapsed, per_row, moves = hammer(enabled)
        hottest = max(per_row.values())
        print(f"{label}:")
        print(f"  {HOT_WRITES} programs to one logical row in "
              f"{elapsed / 1e6:.2f} ms ({moves} gap moves)")
        print(f"  physical rows touched: {len(per_row)}, "
              f"hottest row absorbed: {hottest} word-programs")
        lifetime_gain = (HOT_WRITES * 8) / hottest
        print(f"  worst-case wear vs unleveled: {1 / lifetime_gain:.1%} "
              f"(~{lifetime_gain:.1f}x lifetime for this pattern)\n")


if __name__ == "__main__":
    main()
