"""Multi-partition PRAM device model (Section II of the paper).

This package is a functional + timing model of the 3x nm engineering
samples the paper wires to its FPGA:

* :mod:`~repro.pram.constants` — Table II timing parameters and the
  bank/partition/tile geometry of Section II-A;
* :mod:`~repro.pram.address` — flat-byte-address ⇄ (channel, module,
  partition, row, column) decomposition, including the upper/lower row
  split required by three-phase addressing;
* :mod:`~repro.pram.cell` — word-granularity SET/RESET state so the
  pristine-vs-programmed write-latency asymmetry (and therefore
  selective erasing) is observable;
* :mod:`~repro.pram.row_buffer` — the RAB/RDB multi-row-buffer file;
* :mod:`~repro.pram.overlay_window` — the overlay-window register set
  and program buffer used for all writes;
* :mod:`~repro.pram.module` — a PRAM chip: the LPDDR2-NVM three-phase
  addressing state machine with per-partition busy tracking;
* :mod:`~repro.pram.timing` — pure latency computations for each phase.

The model stores real bytes: reads return what writes stored, so the
whole stack above it is testable end to end.
"""

from repro.pram.address import AddressMap, PramAddress
from repro.pram.cell import CellState, WordStateTracker
from repro.pram.constants import (
    PRAM_ERASE_LATENCY_NS,
    PRAM_READ_LATENCY_NS,
    PRAM_RESET_ONLY_LATENCY_NS,
    PRAM_WRITE_OVERWRITE_NS,
    PRAM_WRITE_PRISTINE_NS,
    PramGeometry,
    PramTimingParams,
)
from repro.pram.errors import (
    AddressError,
    BufferMissError,
    PartitionBusyError,
    PramError,
    ProtocolError,
)
from repro.pram.module import PramModule
from repro.pram.overlay_window import OverlayWindow
from repro.pram.row_buffer import RowBufferSet
from repro.pram.timing import TimingModel

__all__ = [
    "AddressError",
    "AddressMap",
    "BufferMissError",
    "CellState",
    "OverlayWindow",
    "PRAM_ERASE_LATENCY_NS",
    "PRAM_READ_LATENCY_NS",
    "PRAM_RESET_ONLY_LATENCY_NS",
    "PRAM_WRITE_OVERWRITE_NS",
    "PRAM_WRITE_PRISTINE_NS",
    "PartitionBusyError",
    "PramAddress",
    "PramError",
    "PramGeometry",
    "PramModule",
    "PramTimingParams",
    "ProtocolError",
    "RowBufferSet",
    "TimingModel",
    "WordStateTracker",
]
