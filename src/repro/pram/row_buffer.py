"""The multi-row-buffer file: paired RABs and RDBs (Section II-A).

Each buffer identification number selects a logical pair: the row
address buffer (RAB) holds the upper row address delivered during the
pre-active phase; the row data buffer (RDB) holds the 256-bit row the
activate phase fetched.  The controller consults this state to decide
which addressing phases it can skip.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass
class RowBufferPair:
    """One RAB/RDB pair."""

    buffer_id: int
    upper_row: int | None = None       # RAB contents
    rab_valid: bool = False
    partition: int | None = None       # RDB tag
    row: int | None = None             # RDB tag
    data: bytes | None = None          # RDB contents
    rdb_valid: bool = False
    last_use: int = 0                            # LRU stamp


class RowBufferSet:
    """All RAB/RDB pairs of one PRAM module, with LRU victim choice."""

    def __init__(self, count: int, row_bytes: int) -> None:
        if count < 1:
            raise ValueError(f"need at least one buffer pair, got {count}")
        self.row_bytes = row_bytes
        self._pairs = [RowBufferPair(buffer_id=i) for i in range(count)]
        self._clock = 0
        self.rab_hits = 0
        self.rdb_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pairs)

    def pair(self, buffer_id: int) -> RowBufferPair:
        """The pair selected by a BA signal."""
        if not 0 <= buffer_id < len(self._pairs):
            raise ValueError(
                f"buffer id {buffer_id} out of range [0, {len(self._pairs)})"
            )
        return self._pairs[buffer_id]

    def _touch(self, pair: RowBufferPair) -> None:
        self._clock += 1
        pair.last_use = self._clock

    # ------------------------------------------------------------------
    # Lookup used for phase skipping
    # ------------------------------------------------------------------
    def find_rdb(self, partition: int, row: int,
                 exclude: typing.AbstractSet[int] = frozenset()
                 ) -> RowBufferPair | None:
        """Pair whose RDB holds ``row`` of ``partition``, if any.

        A hit lets the controller skip both pre-active and activate.
        Pairs whose id is in ``exclude`` (in use by an in-flight
        access) are never returned.
        """
        for pair in self._pairs:
            if (pair.rdb_valid and pair.partition == partition
                    and pair.row == row and pair.buffer_id not in exclude):
                self.rdb_hits += 1
                self._touch(pair)
                return pair
        return None

    def find_rab(self, upper_row: int,
                 exclude: typing.AbstractSet[int] = frozenset()
                 ) -> RowBufferPair | None:
        """Pair whose RAB already holds ``upper_row``, if any.

        A hit lets the controller skip the pre-active phase.  Pairs
        whose id is in ``exclude`` are never returned.
        """
        for pair in self._pairs:
            if (pair.rab_valid and pair.upper_row == upper_row
                    and pair.buffer_id not in exclude):
                self.rab_hits += 1
                self._touch(pair)
                return pair
        return None

    def victim(self) -> RowBufferPair:
        """Least-recently-used pair, for allocation on a miss."""
        self.misses += 1
        pair = min(self._pairs, key=lambda p: p.last_use)
        self._touch(pair)
        return pair

    # ------------------------------------------------------------------
    # Mutation from the module's phase handlers
    # ------------------------------------------------------------------
    def load_rab(self, buffer_id: int, upper_row: int) -> None:
        """Pre-active: store an upper row address into one RAB."""
        pair = self.pair(buffer_id)
        pair.upper_row = upper_row
        pair.rab_valid = True
        # The old RDB contents no longer match the RAB tag.
        pair.rdb_valid = False
        pair.data = None
        pair.partition = None
        pair.row = None
        self._touch(pair)

    def load_rdb(self, buffer_id: int, partition: int, row: int,
                 data: bytes) -> None:
        """Activate: latch a fetched row into the paired RDB."""
        if len(data) != self.row_bytes:
            raise ValueError(
                f"RDB load must be exactly {self.row_bytes} bytes, "
                f"got {len(data)}"
            )
        pair = self.pair(buffer_id)
        pair.partition = partition
        pair.row = row
        pair.data = data
        pair.rdb_valid = True
        self._touch(pair)

    def invalidate_row(self, partition: int, row: int) -> None:
        """Drop any RDB copy of ``row`` (a program made it stale)."""
        for pair in self._pairs:
            if (pair.rdb_valid and pair.partition == partition
                    and pair.row == row):
                pair.rdb_valid = False
                pair.data = None

    def invalidate_all(self) -> None:
        """Boot-time state: nothing cached."""
        for pair in self._pairs:
            pair.rab_valid = False
            pair.rdb_valid = False
            pair.upper_row = None
            pair.data = None
            pair.partition = None
            pair.row = None
