"""Exception hierarchy for the PRAM device model."""


class PramError(Exception):
    """Base class for every PRAM device-model error."""


class AddressError(PramError):
    """An address is outside the device geometry or misaligned."""


class ProtocolError(PramError):
    """A three-phase-addressing command arrived in an illegal order."""


class BufferMissError(PramError):
    """A read/write phase referenced a row buffer with no valid data."""


class PartitionBusyError(PramError):
    """An array operation targeted a partition still busy programming."""
