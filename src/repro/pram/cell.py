"""Word-granularity cell-state tracking.

The write-latency asymmetry at the heart of selective erasing comes
from the physics in Figure 2: a program is RESET (short pulse, melt to
amorphous "0") followed by SET (long pulse, crystallize to "1").  A
word whose cells are all in the pristine RESET state only needs the SET
pass, which is what makes pre-RESETting profitable.

State is tracked per *word* (the program unit) and stored sparsely —
the modelled device is 32 GiB and workloads touch a sliver of it.
"""

from __future__ import annotations

import enum
import typing


class CellState(enum.Enum):
    """Aggregate state of one program-unit word."""

    PRISTINE = "pristine"      # all cells RESET; SET-only program suffices
    PROGRAMMED = "programmed"  # holds data; overwrite needs RESET + SET


class WordStateTracker:
    """Tracks :class:`CellState` and write endurance per word.

    Keys are ``(row, word_index)`` within one partition; the partition
    model owns one tracker each.  Untouched words are pristine (the
    factory state).
    """

    def __init__(self, words_per_row: int) -> None:
        if words_per_row < 1:
            raise ValueError(f"words_per_row must be >= 1, got {words_per_row}")
        self.words_per_row = words_per_row
        self._programmed: typing.Set[typing.Tuple[int, int]] = set()
        self._write_counts: typing.Dict[typing.Tuple[int, int], int] = {}
        self.total_set_passes = 0
        self.total_reset_passes = 0

    def state(self, row: int, word: int) -> CellState:
        """Current state of one word."""
        self._check(word)
        if (row, word) in self._programmed:
            return CellState.PROGRAMMED
        return CellState.PRISTINE

    def writes_to(self, row: int, word: int) -> int:
        """How many program passes this word has absorbed (endurance)."""
        self._check(word)
        return self._write_counts.get((row, word), 0)

    def needs_reset(self, row: int, words: typing.Iterable[int]) -> bool:
        """True if any of ``words`` in ``row`` is programmed.

        A program covering such a word must run the RESET pass first,
        i.e. it pays the full overwrite latency.
        """
        return any((row, word) in self._programmed for word in words)

    def program(self, row: int, words: typing.Iterable[int]) -> bool:
        """Program ``words``; returns True if a RESET pass was needed."""
        words = list(words)
        for word in words:
            self._check(word)
        reset_needed = self.needs_reset(row, words)
        for word in words:
            key = (row, word)
            self._programmed.add(key)
            self._write_counts[key] = self._write_counts.get(key, 0) + 1
        self.total_set_passes += len(words)
        if reset_needed:
            self.total_reset_passes += len(words)
        return reset_needed

    def set_pass(self, row: int, words: typing.Iterable[int]) -> None:
        """SET-only pulse over already-RESET cells (program retry).

        The program-and-verify retry path re-issues just the failed
        words' SET pass (mirroring selective erasing's asymmetry), so
        it consumes endurance and marks the words programmed without
        a RESET pass.
        """
        for word in words:
            self._check(word)
            key = (row, word)
            self._programmed.add(key)
            self._write_counts[key] = self._write_counts.get(key, 0) + 1
            self.total_set_passes += 1

    def reset(self, row: int, words: typing.Iterable[int]) -> None:
        """RESET ``words`` back to pristine (selective erasing primitive).

        Counts against endurance like any other pulse.
        """
        for word in words:
            self._check(word)
            key = (row, word)
            self._programmed.discard(key)
            self._write_counts[key] = self._write_counts.get(key, 0) + 1
            self.total_reset_passes += 1

    def erase_rows(self, rows: typing.Iterable[int]) -> None:
        """Bulk erase: every word in ``rows`` returns to pristine."""
        rows = set(rows)
        for key in [k for k in self._programmed if k[0] in rows]:
            self._programmed.discard(key)

    @property
    def programmed_words(self) -> int:
        """Number of words currently holding data."""
        return len(self._programmed)

    def max_writes(self) -> int:
        """Worst-case endurance consumption across all words."""
        return max(self._write_counts.values(), default=0)

    def _check(self, word: int) -> None:
        if not 0 <= word < self.words_per_row:
            raise ValueError(
                f"word {word} out of range [0, {self.words_per_row})"
            )
