"""One PRAM chip: the LPDDR2-NVM three-phase-addressing state machine.

The module is a *timed functional model*: every operation takes the
current simulated time ``now``, mutates device state, and returns the
time at which the operation finishes.  Simulation processes then sleep
until that finish time.  Partition busy windows are tracked inside the
module so overlapping schedules (the interleaving scheduler) and
blocking ones (bare-metal) exercise the same device.

Data is real: reads return the bytes earlier programs stored, with
unwritten rows reading as zeros (the pristine RESET state).
"""

from __future__ import annotations

import typing

from repro.faults.ecc import apply_bit_flips
from repro.faults.plan import FaultState
from repro.pram import overlay_window as ow
from repro.pram.cell import WordStateTracker
from repro.pram.constants import PramGeometry, PramTimingParams
from repro.pram.errors import AddressError, BufferMissError, ProtocolError
from repro.pram.row_buffer import RowBufferSet
from repro.pram.timing import TimingModel
from repro.telemetry.tracer import current_tracer


class PramModule:
    """A single multi-partition PRAM package."""

    def __init__(self, geometry: PramGeometry = PramGeometry(),
                 params: PramTimingParams = PramTimingParams(),
                 channel_id: int = 0, module_id: int = 0,
                 faults: FaultState | None = None) -> None:
        self.geometry = geometry
        self.params = params
        self.timing = TimingModel(params, geometry)
        self.channel_id = channel_id
        self.module_id = module_id
        # The module has no simulator reference (operations are timed
        # functionally), so it binds the ambient tracer at construction
        # to place program/reset/erase spans on its partition tracks.
        self._tracer = current_tracer()
        self.buffers = RowBufferSet(geometry.rdb_count, geometry.row_bytes)
        self.window = ow.OverlayWindow()
        # Shared blank row for never-written locations: bytes are
        # immutable, so one allocation serves every miss on the
        # per-chunk read path.
        self._blank_row = bytes(geometry.row_bytes)
        self._storage: typing.Dict[typing.Tuple[int, int], bytes] = {}
        self._cells = [WordStateTracker(geometry.words_per_row)
                       for _ in range(geometry.partitions_per_bank)]
        self._partition_busy_until = [0.0] * geometry.partitions_per_bank
        # When each row was last programmed (simulated ns); consumers
        # of write hints use this to skip rows rewritten after the
        # hint was registered.
        self._last_program: typing.Dict[typing.Tuple[int, int], float] = {}
        # Write-pausing support ([66]): per-partition in-flight program
        # end times and remaining time of paused programs.
        self._program_end: typing.Dict[int, float] = {}
        self._paused_remaining: typing.Dict[int, float] = {}
        self.pauses = 0
        # Optional fault injection (repro.faults): the device records
        # the faults it suffered so the controller can verify/retry via
        # take_read_fault()/take_program_failures().  None costs one
        # attribute check per entry point.
        self._faults = faults
        self._read_fault: typing.Tuple[int, ...] = ()
        self._program_failures: typing.List[typing.Tuple[int, int]] = []
        # Operation counters for the energy model and diagnostics.
        self.reads = 0
        self.programs = 0
        self.resets = 0
        self.erases = 0
        self.retry_programs = 0

    # ------------------------------------------------------------------
    # Partition busy bookkeeping
    # ------------------------------------------------------------------
    def partition_ready_at(self, partition: int) -> float:
        """Earliest time an array operation can start on ``partition``."""
        self._check_partition(partition)
        return self._partition_busy_until[partition]

    def program_in_flight(self, partition: int, now: float) -> bool:
        """Is an array program still running on ``partition``?"""
        self._check_partition(partition)
        return (self._program_end.get(partition, float("-inf")) > now)

    def pause_program(self, partition: int, now: float,
                      resume_penalty_ns: float) -> bool:
        """Pause an in-flight program so a read can cut in ([66]).

        Frees the partition immediately; the remaining program time
        (plus the resume penalty) must be re-applied with
        :meth:`resume_program` once the read has been issued.  Returns
        False (no-op) when nothing is programming.
        """
        if not self.program_in_flight(partition, now):
            return False
        remaining = self._partition_busy_until[partition] - now
        self._paused_remaining[partition] = remaining + resume_penalty_ns
        self._partition_busy_until[partition] = now
        self._program_end[partition] = now
        self.pauses += 1
        return True

    def resume_program(self, partition: int, now: float) -> float:
        """Resume a paused program; returns its new completion time."""
        self._check_partition(partition)
        remaining = self._paused_remaining.pop(partition, 0.0)
        if remaining <= 0:
            return self._partition_busy_until[partition]
        finish = self._occupy(partition, now, remaining)
        self._program_end[partition] = finish
        return finish

    def _occupy(self, partition: int, start: float, duration: float) -> float:
        faults = self._faults
        if faults is not None and faults.stalls_on:
            # Injected stuck-busy window: the partition holds its busy
            # state longer than the timing model says it should.
            duration += faults.partition_stall(
                self.channel_id, self.module_id, partition)
        begin = max(start, self._partition_busy_until[partition])
        finish = begin + duration
        self._partition_busy_until[partition] = finish
        return finish

    # ------------------------------------------------------------------
    # Three-phase addressing
    # ------------------------------------------------------------------
    def pre_active(self, now: float, buffer_id: int,
                   upper_row: int) -> float:
        """Phase 1: latch ``upper_row`` into the selected RAB."""
        if upper_row < 0 or upper_row >= (
                1 << max(1, self.geometry.upper_row_bits)):
            raise AddressError(f"upper row {upper_row} out of range")
        self.buffers.load_rab(buffer_id, upper_row)
        return now + self.timing.pre_active()

    def activate(self, now: float, buffer_id: int, partition: int,
                 lower_row: int) -> float:
        """Phase 2: compose the row address, sense the row into the RDB.

        The composed address is checked against the overlay-window
        range (Section V-A); window-mapped rows never touch the array.
        """
        self._check_partition(partition)
        pair = self.buffers.pair(buffer_id)
        if not pair.rab_valid:
            raise ProtocolError(
                f"activate on buffer {buffer_id} before any pre-active"
            )
        row = self._compose_row(pair.upper_row, lower_row)
        finish = self._occupy(partition, now, self.timing.activate())
        data = self._read_row(partition, row)
        self.buffers.load_rdb(buffer_id, partition, row, data)
        return finish

    def read_burst(self, now: float, buffer_id: int, column: int,
                   size: int) -> typing.Tuple[float, bytes]:
        """Phase 3 (read): stream ``size`` bytes out of the RDB."""
        pair = self.buffers.pair(buffer_id)
        if not pair.rdb_valid or pair.data is None:
            raise BufferMissError(
                f"read burst on buffer {buffer_id} with no valid RDB"
            )
        if column < 0 or column + size > self.geometry.row_bytes:
            raise AddressError(
                f"burst [{column}, {column + size}) exceeds the "
                f"{self.geometry.row_bytes}-byte row buffer"
            )
        self.reads += 1
        finish = now + self.timing.read_preamble() + self.timing.burst(size)
        data = pair.data[column:column + size]
        faults = self._faults
        if faults is not None and faults.read_faults_on:
            bits = faults.read_flip_bits(
                self.channel_id, self.module_id,
                pair.partition if pair.partition is not None else -1,
                pair.row if pair.row is not None else -1, size)
            if bits:
                data = apply_bit_flips(data, bits)
                self._read_fault = bits
        return finish, data

    # ------------------------------------------------------------------
    # Compiled-backend state halves (repro.sim.compiled)
    # ------------------------------------------------------------------
    # The compiled kernel computes the read-phase *schedule* in batch
    # (timing tables, no per-event dispatch) and then applies the same
    # device-state transitions the timed entry points above would have
    # made, in the same order.  Each method below is the state half of
    # exactly one timed operation; validation and counters match so a
    # compiled run leaves the module byte-identical to an interpreted
    # one.

    def latch_rab(self, buffer_id: int, upper_row: int) -> None:
        """State half of :meth:`pre_active`."""
        if upper_row < 0 or upper_row >= (
                1 << max(1, self.geometry.upper_row_bits)):
            raise AddressError(f"upper row {upper_row} out of range")
        self.buffers.load_rab(buffer_id, upper_row)

    def latch_rdb(self, buffer_id: int, partition: int, lower_row: int,
                  busy_until: float) -> None:
        """State half of :meth:`activate`.

        The caller supplies the precomputed partition-busy horizon
        (``max(start, partition_ready_at) + tRCD``) instead of going
        through :meth:`_occupy`; injected stalls are a fallback
        condition for the compiled backend, never priced here.
        """
        self._check_partition(partition)
        buffers = self.buffers
        pair = buffers.pair(buffer_id)
        if not pair.rab_valid:
            raise ProtocolError(
                f"activate on buffer {buffer_id} before any pre-active"
            )
        row = self._compose_row(pair.upper_row, lower_row)
        self._partition_busy_until[partition] = busy_until
        # load_rdb() unrolled onto the pair we already fetched; the
        # length check is vacuous here because _read_row always
        # returns exactly one row.
        pair.partition = partition
        pair.row = row
        pair.data = self._read_row(partition, row)
        pair.rdb_valid = True
        buffers._touch(pair)

    def stream_rdb(self, buffer_id: int, column: int, size: int) -> bytes:
        """State half of :meth:`read_burst` (fault-free configurations)."""
        pair = self.buffers.pair(buffer_id)
        if not pair.rdb_valid or pair.data is None:
            raise BufferMissError(
                f"read burst on buffer {buffer_id} with no valid RDB"
            )
        if column < 0 or column + size > self.geometry.row_bytes:
            raise AddressError(
                f"burst [{column}, {column + size}) exceeds the "
                f"{self.geometry.row_bytes}-byte row buffer"
            )
        self.reads += 1
        return pair.data[column:column + size]

    # ------------------------------------------------------------------
    # Write path: overlay window + program buffer
    # ------------------------------------------------------------------
    def stage_program(self, now: float, partition: int, row: int,
                      column: int, data: bytes,
                      command: int = ow.CMD_PROGRAM) -> float:
        """Fill the overlay-window registers and program buffer.

        Models the translator's register-write sequence (Section V-B):
        command code, target address, burst size, then the payload burst
        into the program buffer.  Returns when staging completes; call
        :meth:`execute_program` afterwards to launch the array program.
        """
        self._check_partition(partition)
        if row < 0 or row >= self.geometry.rows_per_partition:
            raise AddressError(f"row {row} out of range")
        if column < 0 or column + len(data) > self.window.program_buffer_bytes:
            raise AddressError("payload exceeds the program buffer")
        if not data:
            raise ProtocolError("empty program payload")
        self.window.write_register(ow.REG_COMMAND, command)
        self.window.write_register(
            ow.REG_ADDRESS,
            (partition * self.geometry.rows_per_partition + row)
            * self.geometry.row_bytes + column,
        )
        self.window.write_register(ow.REG_MULTIPURPOSE, len(data))
        self.window.write_buffer(0, data)
        return (now + self.timing.activate() + self.timing.write_preamble()
                + self.timing.burst(len(data)))

    def execute_program(self, now: float,
                        req: int | None = None) -> float:
        """Poke the execute register: program staged data to the array.

        Returns the completion time.  The target partition is busy for
        the whole array program; the overlay window frees at the same
        instant (status register back to idle).  ``req`` tags the
        emitted span with the owning memory request for latency
        attribution; background work (pre-resets, gap moves) leaves it
        unset.
        """
        self.window.write_register(ow.REG_EXECUTE, 1)
        command, flat, size, payload = self.window.launch()
        partition, row, column = self._split_window_address(flat)
        # Failures belong to exactly one program: stale records from
        # background work (pre-resets, gap moves) must not alias into
        # the next request's verify pass.
        self._program_failures = []
        if command in (ow.CMD_PROGRAM, ow.CMD_RETRY_PROGRAM):
            rows_touched = (column + max(size, 1) + self.geometry.row_bytes
                            - 1) // self.geometry.row_bytes
            for offset in range(rows_touched):
                self._last_program[(partition, row + offset)] = now
        if command == ow.CMD_ERASE:
            duration = self.timing.array_erase()
            finish = self._occupy(partition, now, duration)
            self._erase_partition(partition)
            self.erases += 1
            span_name = "erase"
        elif command == ow.CMD_SELECTIVE_ERASE:
            duration = self._apply_reset(partition, row, column, size)
            finish = self._occupy(partition, now, duration)
            self.resets += 1
            span_name = "pre_reset"
        elif command == ow.CMD_RETRY_PROGRAM:
            duration = self._apply_program(partition, row, column, payload,
                                           set_only=True)
            finish = self._occupy(partition, now, duration)
            self.retry_programs += 1
            span_name = "retry_program"
        else:
            duration = self._apply_program(partition, row, column, payload)
            finish = self._occupy(partition, now, duration)
            self.programs += 1
            span_name = "program"
        self._program_end[partition] = finish
        tracer = self._tracer
        if tracer.enabled:
            args: typing.Dict[str, typing.Any] = {"row": row}
            if req is not None:
                args["req"] = req
            tracer.emit(
                span_name,
                f"ch{self.channel_id}.m{self.module_id}.p{partition}",
                max(now, finish - duration), finish, **args)
        finish += self.timing.write_recovery()
        self.window.complete()
        return finish

    # ------------------------------------------------------------------
    # Planning helpers for schedulers (no state change)
    # ------------------------------------------------------------------
    def program_needs_reset(self, partition: int, row: int, column: int,
                            size: int) -> bool:
        """Would a program of [column, column+size) pay the RESET pass?"""
        self._check_partition(partition)
        for target_row, words in self._words_touched(row, column, size):
            if self._cells[partition].needs_reset(target_row, words):
                return True
        return False

    def last_program_time(self, partition: int, row: int) -> float:
        """When the row was last programmed (-inf if never)."""
        self._check_partition(partition)
        return self._last_program.get((partition, row), float("-inf"))

    def cell_tracker(self, partition: int) -> WordStateTracker:
        """Cell-state tracker of one partition (tests, wear studies)."""
        self._check_partition(partition)
        return self._cells[partition]

    def take_read_fault(self) -> typing.Tuple[int, ...]:
        """Consume the flipped-bit record of the last read burst.

        The controller calls this synchronously after
        :meth:`read_burst` (no yield in between), so concurrent chunks
        on one module can never observe each other's record.
        """
        bits, self._read_fault = self._read_fault, ()
        return bits

    def take_program_failures(self) -> typing.List[typing.Tuple[int, int]]:
        """Consume the (row, word) SET failures of the last program.

        This is the device's program-and-verify status: a non-empty
        list means the named words still hold their pre-program bytes
        and need a retry (or row retirement).
        """
        failures, self._program_failures = self._program_failures, []
        return failures

    def peek(self, partition: int, row: int) -> bytes:
        """Direct functional read of one row (testing/verification)."""
        self._check_partition(partition)
        return self._read_row(partition, row)

    def poke(self, partition: int, row: int, data: bytes) -> None:
        """Zero-time backing-store initialization (data pre-placement).

        Mirrors the paper's experimental setup step that initializes
        input data in persistent storage before runs.  Marks the
        touched words programmed so later overwrites price correctly.
        """
        self._check_partition(partition)
        if len(data) != self.geometry.row_bytes:
            raise AddressError(
                f"poke must cover the whole {self.geometry.row_bytes}-byte row"
            )
        self._storage[(partition, row)] = bytes(data)
        self._cells[partition].program(row, range(self.geometry.words_per_row))
        self.buffers.invalidate_row(partition, row)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.geometry.partitions_per_bank:
            raise AddressError(
                f"partition {partition} out of range "
                f"[0, {self.geometry.partitions_per_bank})"
            )

    def _compose_row(self, upper: int | None, lower: int) -> int:
        if upper is None:
            raise ProtocolError("RAB holds no upper row address")
        if lower < 0 or lower >= (1 << self.geometry.lower_row_bits):
            raise AddressError(f"lower row {lower} out of range")
        row = (upper << self.geometry.lower_row_bits) | lower
        if row >= self.geometry.rows_per_partition:
            raise AddressError(f"composed row {row} beyond partition")
        return row

    def _read_row(self, partition: int, row: int) -> bytes:
        if row < 0 or row >= self.geometry.rows_per_partition:
            raise AddressError(f"row {row} out of range")
        return self._storage.get((partition, row), self._blank_row)

    def _split_window_address(self, flat: int) -> typing.Tuple[int, int, int]:
        column = flat % self.geometry.row_bytes
        rest = flat // self.geometry.row_bytes
        row = rest % self.geometry.rows_per_partition
        partition = rest // self.geometry.rows_per_partition
        self._check_partition(partition)
        return partition, row, column

    def _words_touched(self, row: int, column: int, size: int) -> typing.List[
            typing.Tuple[int, typing.List[int]]]:
        """(row, word indices) pairs a program starting at (row, column)
        of ``size`` bytes will touch; programs may spill into later rows."""
        geo = self.geometry
        result = []
        offset = column
        remaining = size
        current_row = row
        while remaining > 0:
            chunk = min(geo.row_bytes - offset, remaining)
            first_word = offset // geo.word_bytes
            last_word = (offset + chunk - 1) // geo.word_bytes
            result.append((current_row, list(range(first_word, last_word + 1))))
            remaining -= chunk
            offset = 0
            current_row += 1
            if current_row > geo.rows_per_partition:
                raise AddressError("program spills past the partition")
        return result

    def _apply_program(self, partition: int, row: int, column: int,
                       payload: bytes, set_only: bool = False) -> float:
        duration = 0.0
        tracker = self._cells[partition]
        faults = self._faults
        cursor = 0
        for target_row, words in self._words_touched(row, column, len(payload)):
            start = column if target_row == row else 0
            chunk = min(self.geometry.row_bytes - start, len(payload) - cursor)
            if set_only:
                # Program-and-verify retry: the failed words' cells are
                # re-SET without a RESET pass (the selective-erasing
                # asymmetry applied to recovery).
                tracker.set_pass(target_row, words)
                duration += self.timing.array_program(False)
            else:
                needs_reset = tracker.program(target_row, words)
                duration += self.timing.array_program(needs_reset)
            existing = self._read_row(partition, target_row)
            updated = bytearray(existing)
            updated[start:start + chunk] = payload[cursor:cursor + chunk]
            if faults is not None and faults.program_faults_on:
                failed = faults.program_word_failures_for(
                    self.channel_id, self.module_id, partition, target_row,
                    words,
                    lambda w, r=target_row: tracker.writes_to(r, w))
                if failed:
                    # Failed SET passes leave the word's cells (and
                    # bytes) exactly as they were before the pulse.
                    word_bytes = self.geometry.word_bytes
                    for word in failed:
                        lo = word * word_bytes
                        updated[lo:lo + word_bytes] = existing[
                            lo:lo + word_bytes]
                    self._program_failures.extend(
                        (target_row, word) for word in failed)
            self._storage[(partition, target_row)] = bytes(updated)
            self.buffers.invalidate_row(partition, target_row)
            cursor += chunk
        return duration

    def _apply_reset(self, partition: int, row: int, column: int,
                     size: int) -> float:
        duration = 0.0
        tracker = self._cells[partition]
        for target_row, words in self._words_touched(row, column, size):
            start = column if target_row == row else 0
            chunk = min(self.geometry.row_bytes - start, size)
            tracker.reset(target_row, words)
            duration += self.timing.array_reset_only()
            existing = bytearray(self._read_row(partition, target_row))
            existing[start:start + chunk] = bytes(chunk)
            self._storage[(partition, target_row)] = bytes(existing)
            self.buffers.invalidate_row(partition, target_row)
            size -= chunk
        return duration

    def _erase_partition(self, partition: int) -> None:
        tracker = self._cells[partition]
        rows = [row for (part, row) in self._storage if part == partition]
        tracker.erase_rows(rows)
        for row in rows:
            del self._storage[(partition, row)]
            self.buffers.invalidate_row(partition, row)
