"""Address decomposition for the PRAM subsystem.

Flat byte addresses (what the accelerator's MCU issues) stripe across
the device hierarchy to match Section III-B's layout — "the server
initiates a memory request based on 512 bytes per channel (32 bytes per
bank)"::

    flat = ((((row * partitions + partition) * channels + channel)
             * modules + module) * row_bytes) + column

so with the default geometry the stripe units are: 32 B per module
(bank), 512 B per channel, 1 KiB per partition rotation, 16 KiB per
row.  A 512-byte request therefore touches all 16 modules of one
channel at 32 bytes each, and successive requests rotate through the
partitions — the layout multi-resource aware interleaving exploits.

Three-phase addressing splits the row index into an upper part (stored
in a RAB during pre-active) and a lower part (delivered directly with
the activate command).
"""

from __future__ import annotations

import typing

from repro.pram.constants import PramGeometry
from repro.pram.errors import AddressError


class PramAddress(typing.NamedTuple):
    """A fully decomposed PRAM location.

    A named tuple rather than a dataclass: one is built per row chunk
    on the hot decompose path, and tuple construction is several times
    cheaper than frozen-dataclass ``__setattr__``.  Field order gives
    the same lexicographic comparison the old ``order=True`` dataclass
    had.
    """

    channel: int
    module: int
    partition: int
    row: int
    column: int  # byte offset within the row

    def row_key(self) -> typing.Tuple[int, int, int, int]:
        """Hashable identity of the row this address falls in."""
        return (self.channel, self.module, self.partition, self.row)


class AddressMap:
    """Bidirectional flat-address ⇄ :class:`PramAddress` mapping."""

    def __init__(self, geometry: PramGeometry | None = None) -> None:
        self.geometry = geometry or PramGeometry()
        # Derived strides are immutable once the geometry is fixed; the
        # decompose path is hot enough (one call per 32-byte chunk) that
        # re-deriving them through the geometry properties shows up in
        # profiles.
        geo = self.geometry
        self._row_bytes = geo.row_bytes
        self._modules = geo.modules_per_channel
        self._channels = geo.channels
        self._partitions = geo.partitions_per_bank
        self._rows = geo.rows_per_partition
        self._total_bytes = geo.total_bytes
        self._lower_bits = geo.lower_row_bits
        self._lower_mask = (1 << geo.lower_row_bits) - 1

    def decompose(self, flat: int) -> PramAddress:
        """Split a flat byte address into device coordinates."""
        if flat < 0:
            raise AddressError(f"negative address: {flat}")
        if flat >= self._total_bytes:
            raise AddressError(
                f"address {flat:#x} beyond capacity {self._total_bytes:#x}"
            )
        column = flat % self._row_bytes
        rest = flat // self._row_bytes
        module = rest % self._modules
        rest //= self._modules
        channel = rest % self._channels
        rest //= self._channels
        partition = rest % self._partitions
        row = rest // self._partitions
        return PramAddress(channel, module, partition, row, column)

    def compose(self, address: PramAddress) -> int:
        """Inverse of :meth:`decompose`."""
        geo = self.geometry
        self._validate(address)
        rest = address.row
        rest = rest * geo.partitions_per_bank + address.partition
        rest = rest * geo.channels + address.channel
        rest = rest * geo.modules_per_channel + address.module
        return rest * geo.row_bytes + address.column

    def split_row(self, row: int) -> typing.Tuple[int, int]:
        """Split a row index into (upper, lower) three-phase parts."""
        if not 0 <= row < self._rows:
            raise AddressError(f"row {row} out of range")
        return row >> self._lower_bits, row & self._lower_mask

    def join_row(self, upper: int, lower: int) -> int:
        """Recompose a row index from its (upper, lower) parts."""
        geo = self.geometry
        if lower < 0 or lower >= (1 << geo.lower_row_bits):
            raise AddressError(f"lower row part {lower} out of range")
        if upper < 0:
            raise AddressError(f"negative upper row part: {upper}")
        row = (upper << geo.lower_row_bits) | lower
        if row >= geo.rows_per_partition:
            raise AddressError(
                f"recomposed row {row} beyond partition "
                f"({geo.rows_per_partition} rows)"
            )
        return row

    def iter_rows(self, flat: int, size: int) -> typing.Iterator[
            typing.Tuple[PramAddress, int, int]]:
        """Yield (row-aligned address, offset-into-request, chunk bytes)
        triples covering ``[flat, flat + size)``.

        Requests larger than one 32-byte row are the norm (the server
        issues 512 B per channel); the controller turns each chunk into
        one three-phase access.
        """
        if size < 0:
            raise AddressError(f"negative size: {size}")
        row_bytes = self._row_bytes
        cursor = flat
        produced = 0
        while produced < size:
            address = self.decompose(cursor)
            chunk = min(row_bytes - address.column, size - produced)
            yield address, produced, chunk
            produced += chunk
            cursor += chunk

    def _validate(self, address: PramAddress) -> None:
        geo = self.geometry
        checks = (
            ("channel", address.channel, geo.channels),
            ("module", address.module, geo.modules_per_channel),
            ("partition", address.partition, geo.partitions_per_bank),
            ("row", address.row, geo.rows_per_partition),
            ("column", address.column, geo.row_bytes),
        )
        for name, value, bound in checks:
            if not 0 <= value < bound:
                raise AddressError(
                    f"{name}={value} out of range [0, {bound})"
                )
