"""Address decomposition for the PRAM subsystem.

Flat byte addresses (what the accelerator's MCU issues) stripe across
the device hierarchy to match Section III-B's layout — "the server
initiates a memory request based on 512 bytes per channel (32 bytes per
bank)"::

    flat = ((((row * partitions + partition) * channels + channel)
             * modules + module) * row_bytes) + column

so with the default geometry the stripe units are: 32 B per module
(bank), 512 B per channel, 1 KiB per partition rotation, 16 KiB per
row.  A 512-byte request therefore touches all 16 modules of one
channel at 32 bytes each, and successive requests rotate through the
partitions — the layout multi-resource aware interleaving exploits.

Three-phase addressing splits the row index into an upper part (stored
in a RAB during pre-active) and a lower part (delivered directly with
the activate command).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pram.constants import PramGeometry
from repro.pram.errors import AddressError


@dataclasses.dataclass(frozen=True, order=True)
class PramAddress:
    """A fully decomposed PRAM location."""

    channel: int
    module: int
    partition: int
    row: int
    column: int  # byte offset within the row

    def row_key(self) -> typing.Tuple[int, int, int, int]:
        """Hashable identity of the row this address falls in."""
        return (self.channel, self.module, self.partition, self.row)


class AddressMap:
    """Bidirectional flat-address ⇄ :class:`PramAddress` mapping."""

    def __init__(self, geometry: PramGeometry | None = None) -> None:
        self.geometry = geometry or PramGeometry()

    def decompose(self, flat: int) -> PramAddress:
        """Split a flat byte address into device coordinates."""
        geo = self.geometry
        if flat < 0:
            raise AddressError(f"negative address: {flat}")
        if flat >= geo.total_bytes:
            raise AddressError(
                f"address {flat:#x} beyond capacity {geo.total_bytes:#x}"
            )
        column = flat % geo.row_bytes
        rest = flat // geo.row_bytes
        module = rest % geo.modules_per_channel
        rest //= geo.modules_per_channel
        channel = rest % geo.channels
        rest //= geo.channels
        partition = rest % geo.partitions_per_bank
        row = rest // geo.partitions_per_bank
        return PramAddress(channel, module, partition, row, column)

    def compose(self, address: PramAddress) -> int:
        """Inverse of :meth:`decompose`."""
        geo = self.geometry
        self._validate(address)
        rest = address.row
        rest = rest * geo.partitions_per_bank + address.partition
        rest = rest * geo.channels + address.channel
        rest = rest * geo.modules_per_channel + address.module
        return rest * geo.row_bytes + address.column

    def split_row(self, row: int) -> typing.Tuple[int, int]:
        """Split a row index into (upper, lower) three-phase parts."""
        geo = self.geometry
        if not 0 <= row < geo.rows_per_partition:
            raise AddressError(f"row {row} out of range")
        mask = (1 << geo.lower_row_bits) - 1
        return row >> geo.lower_row_bits, row & mask

    def join_row(self, upper: int, lower: int) -> int:
        """Recompose a row index from its (upper, lower) parts."""
        geo = self.geometry
        if lower < 0 or lower >= (1 << geo.lower_row_bits):
            raise AddressError(f"lower row part {lower} out of range")
        if upper < 0:
            raise AddressError(f"negative upper row part: {upper}")
        row = (upper << geo.lower_row_bits) | lower
        if row >= geo.rows_per_partition:
            raise AddressError(
                f"recomposed row {row} beyond partition "
                f"({geo.rows_per_partition} rows)"
            )
        return row

    def iter_rows(self, flat: int, size: int) -> typing.Iterator[
            typing.Tuple[PramAddress, int, int]]:
        """Yield (row-aligned address, offset-into-request, chunk bytes)
        triples covering ``[flat, flat + size)``.

        Requests larger than one 32-byte row are the norm (the server
        issues 512 B per channel); the controller turns each chunk into
        one three-phase access.
        """
        if size < 0:
            raise AddressError(f"negative size: {size}")
        geo = self.geometry
        cursor = flat
        produced = 0
        while produced < size:
            address = self.decompose(cursor)
            chunk = min(geo.row_bytes - address.column, size - produced)
            yield address, produced, chunk
            produced += chunk
            cursor += chunk

    def _validate(self, address: PramAddress) -> None:
        geo = self.geometry
        checks = (
            ("channel", address.channel, geo.channels),
            ("module", address.module, geo.modules_per_channel),
            ("partition", address.partition, geo.partitions_per_bank),
            ("row", address.row, geo.rows_per_partition),
            ("column", address.column, geo.row_bytes),
        )
        for name, value, bound in checks:
            if not 0 <= value < bound:
                raise AddressError(
                    f"{name}={value} out of range [0, {bound})"
                )
