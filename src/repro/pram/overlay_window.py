"""Overlay window and program buffer (Section II-B, Figure 4).

Writes never touch the storage array directly: the external controller
maps the overlay window somewhere in the module's address space (the
OWBA), fills the window's registers — command code, target address,
burst size — streams the payload into the program buffer, and pokes the
execute register.  The module then programs the buffered data into the
designated partition on its own, exposing progress via the status
register.

Register offsets follow Section V-B:

====================  ========  =======================================
register              offset    purpose
====================  ========  =======================================
command code          +0x80     memory operation type (e.g. program)
data address          +0x8B     target row address for the program
multi-purpose         +0x93     burst size in bytes
execute               +0xC0     writing 1 launches the program
status                +0xC8     0 = idle, 1 = busy programming
program buffer        +0x800    payload staging area
====================  ========  =======================================
"""

from __future__ import annotations

import typing

from repro.pram.errors import ProtocolError

#: Register offsets within the overlay window.
REG_COMMAND = 0x80
REG_ADDRESS = 0x8B
REG_MULTIPURPOSE = 0x93
REG_EXECUTE = 0xC0
REG_STATUS = 0xC8
PROGRAM_BUFFER_OFFSET = 0x800

#: Command codes accepted by the command register.
CMD_PROGRAM = 0x41
CMD_SELECTIVE_ERASE = 0x42  # program of all-zero words (RESET-only)
CMD_ERASE = 0x43            # bulk partition-range erase
CMD_RETRY_PROGRAM = 0x44    # SET-only re-program of verify-failed words

#: Size of the meta-information block at the window base (Figure 4).
META_BYTES = 128


class OverlayWindow:
    """Register file + program buffer of one PRAM module."""

    def __init__(self, program_buffer_bytes: int = 512) -> None:
        if program_buffer_bytes < 1:
            raise ValueError("program buffer must have positive size")
        self.base_address = 0  # OWBA; relocatable via set_base
        self.program_buffer_bytes = program_buffer_bytes
        self._registers: typing.Dict[int, int] = {
            REG_COMMAND: 0,
            REG_ADDRESS: 0,
            REG_MULTIPURPOSE: 0,
            REG_EXECUTE: 0,
            REG_STATUS: 0,
        }
        self._buffer = bytearray(program_buffer_bytes)
        self._buffer_filled = 0

    # ------------------------------------------------------------------
    # Address-space mapping
    # ------------------------------------------------------------------
    def set_base(self, address: int) -> None:
        """Relocate the window (configure the OWBA)."""
        if address < 0:
            raise ValueError(f"negative OWBA: {address}")
        self.base_address = address

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside the mapped window."""
        span = PROGRAM_BUFFER_OFFSET + self.program_buffer_bytes
        return self.base_address <= address < self.base_address + span

    # ------------------------------------------------------------------
    # Register access (addresses are window-relative offsets)
    # ------------------------------------------------------------------
    def write_register(self, offset: int, value: int) -> None:
        """Store ``value`` into the register at ``offset``."""
        if offset not in self._registers:
            raise ProtocolError(f"no register at offset {offset:#x}")
        if offset == REG_STATUS:
            raise ProtocolError("status register is read-only")
        self._registers[offset] = value

    def read_register(self, offset: int) -> int:
        """Read the register at ``offset``."""
        if offset not in self._registers:
            raise ProtocolError(f"no register at offset {offset:#x}")
        return self._registers[offset]

    # ------------------------------------------------------------------
    # Program buffer
    # ------------------------------------------------------------------
    def write_buffer(self, offset: int, data: bytes) -> None:
        """Stage payload bytes at ``offset`` within the program buffer."""
        if offset < 0 or offset + len(data) > self.program_buffer_bytes:
            raise ProtocolError(
                f"program-buffer write [{offset}, {offset + len(data)}) "
                f"exceeds {self.program_buffer_bytes} bytes"
            )
        self._buffer[offset:offset + len(data)] = data
        self._buffer_filled = max(self._buffer_filled, offset + len(data))

    def read_buffer(self, offset: int, size: int) -> bytes:
        """Read back staged payload (diagnostics)."""
        if offset < 0 or offset + size > self.program_buffer_bytes:
            raise ProtocolError("program-buffer read out of bounds")
        return bytes(self._buffer[offset:offset + size])

    # ------------------------------------------------------------------
    # Execution handshake (driven by the module)
    # ------------------------------------------------------------------
    def launch(self) -> typing.Tuple[int, int, int, bytes]:
        """Validate registers and hand the staged program to the module.

        Returns ``(command, target_row_address, size, payload)`` and
        flips the status register to busy.  The module calls
        :meth:`complete` when the array program finishes.
        """
        command = self._registers[REG_COMMAND]
        if command not in (CMD_PROGRAM, CMD_SELECTIVE_ERASE, CMD_ERASE,
                           CMD_RETRY_PROGRAM):
            raise ProtocolError(f"unknown command code {command:#x}")
        if self._registers[REG_EXECUTE] != 1:
            raise ProtocolError("execute register not set")
        if self._registers[REG_STATUS] == 1:
            raise ProtocolError("module is already programming")
        size = self._registers[REG_MULTIPURPOSE]
        if command != CMD_ERASE:
            if size < 1 or size > self.program_buffer_bytes:
                raise ProtocolError(
                    f"burst size {size} outside program buffer "
                    f"(1..{self.program_buffer_bytes})"
                )
        self._registers[REG_STATUS] = 1
        self._registers[REG_EXECUTE] = 0
        payload = bytes(self._buffer[:size]) if command != CMD_ERASE else b""
        return command, self._registers[REG_ADDRESS], size, payload

    def complete(self) -> None:
        """Mark the in-flight program finished (status back to idle)."""
        if self._registers[REG_STATUS] != 1:
            raise ProtocolError("complete() with no program in flight")
        self._registers[REG_STATUS] = 0
        self._buffer_filled = 0

    @property
    def busy(self) -> bool:
        """True while a launched program has not completed."""
        return self._registers[REG_STATUS] == 1
