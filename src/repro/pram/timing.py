"""Pure latency computations for LPDDR2-NVM operations (Figure 11).

Every function returns nanoseconds.  Keeping timing separate from
device state lets the controller reason about schedules (interleaving
windows, phase-skip savings) without mutating anything.
"""

from __future__ import annotations

import math

from repro.pram.constants import PramGeometry, PramTimingParams


class TimingModel:
    """Latency calculator bound to one parameter/geometry set."""

    def __init__(self, params: PramTimingParams = PramTimingParams(),
                 geometry: PramGeometry = PramGeometry()) -> None:
        self.params = params
        self.geometry = geometry

    # ------------------------------------------------------------------
    # Individual phases (Figure 11 timing diagrams)
    # ------------------------------------------------------------------
    def pre_active(self) -> float:
        """Pre-active phase: update a RAB within tRP."""
        return self.params.trp_ns

    def activate(self) -> float:
        """Activate phase: compose the row address, fetch into the RDB.

        tRCD covers address composition, the overlay-window range check,
        and sensing the row out of the array (Section V-A).
        """
        return self.params.trcd_ns

    def read_preamble(self) -> float:
        """Read preamble: RL plus strobe output access time (tDQSCK)."""
        return self.params.rl_ns + self.params.tdqsck_ns

    def write_preamble(self) -> float:
        """Write preamble: WL plus strobe setup (tDQSS)."""
        return self.params.wl_ns + self.params.tdqss_ns

    def burst(self, size_bytes: int) -> float:
        """Data burst time for ``size_bytes`` over the 16-bit DQ bus.

        One burst of the configured length moves ``2 * burst_length``
        bytes (DDR, 16-bit dq); larger transfers chain bursts.
        """
        if size_bytes <= 0:
            raise ValueError(f"burst size must be positive, got {size_bytes}")
        bytes_per_burst = 2 * self.params.burst_length
        bursts = math.ceil(size_bytes / bytes_per_burst)
        return bursts * self.params.tburst_ns

    def write_recovery(self) -> float:
        """tWR: guarantee the program buffer drained to the array."""
        return self.params.twr_ns

    # ------------------------------------------------------------------
    # Array (storage-core) operations
    # ------------------------------------------------------------------
    def array_program(self, needs_reset: bool) -> float:
        """Cell program time: SET-only if pristine, RESET+SET otherwise."""
        if needs_reset:
            return self.params.write_overwrite_ns
        return self.params.write_pristine_ns

    def array_reset_only(self) -> float:
        """All-zero program (the selective-erasing primitive)."""
        return self.params.reset_only_ns

    def array_erase(self) -> float:
        """Bulk erase of a partition range (~60 ms)."""
        return self.params.erase_ns

    # ------------------------------------------------------------------
    # Composite request latencies, used by schedulers for planning
    # ------------------------------------------------------------------
    def read_row(self, size_bytes: int, skip_pre_active: bool = False,
                 skip_activate: bool = False) -> float:
        """Full read of ``size_bytes`` from one row, with phase skips."""
        total = 0.0
        if not skip_pre_active:
            total += self.pre_active()
        if not skip_activate:
            total += self.activate()
        return total + self.read_preamble() + self.burst(size_bytes)

    def write_row(self, size_bytes: int, needs_reset: bool,
                  skip_pre_active: bool = False) -> float:
        """Full write of ``size_bytes`` through the program buffer.

        Register pokes + payload burst + launch + array program + tWR.
        The activate phase for a write resolves into the overlay window,
        so only the pre-active can be skipped.
        """
        total = 0.0
        if not skip_pre_active:
            total += self.pre_active()
        total += self.activate()
        total += self.write_preamble() + self.burst(size_bytes)
        total += self.array_program(needs_reset)
        return total + self.write_recovery()

    def transfer_only(self, size_bytes: int) -> float:
        """Time on the DQ bus alone — what interleaving tries to hide
        the next request's array access behind."""
        return self.read_preamble() + self.burst(size_bytes)
