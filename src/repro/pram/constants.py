"""Table II parameters and the Section II-A geometry.

All times are nanoseconds; the LPDDR2-NVM interface clock (tCK) is
2.5 ns, i.e. the 400 MHz the paper's PHY runs at.  Latencies that
Table II expresses in cycles are converted through tCK.
"""

from __future__ import annotations

import dataclasses
import functools

#: LPDDR2-NVM interface clock period at 400 MHz (Table II: tCK = 2.5 ns).
TCK_NS = 2.5

#: Array program latency when every target word is pristine, i.e. only
#: the SET pass is needed (Table II: "PRAM write 10 us", lower bound).
PRAM_WRITE_PRISTINE_NS = 10_000.0

#: Array program latency for an overwrite: RESET pass then SET pass
#: (Table II / Section VI: overwrites require an extra 8 us).
PRAM_WRITE_OVERWRITE_NS = 18_000.0

#: Latency of programming an all-zero word, which is a RESET-only pulse
#: train — the primitive selective erasing issues in advance.  RESET
#: pulses are much shorter than SET (Figure 2b), so the RESET pass is
#: the overwrite latency minus the pristine (SET-only) program.
PRAM_RESET_ONLY_LATENCY_NS = PRAM_WRITE_OVERWRITE_NS - PRAM_WRITE_PRISTINE_NS

#: Whole-partition erase latency (Section V-A: "around 60 ms, which is
#: 3K times longer than that of an overwrite").
PRAM_ERASE_LATENCY_NS = 60_000_000.0

#: End-to-end read latency quoted in Section VI ("around 100 ns,
#: including three-phase addressing"); used as a sanity anchor by tests.
PRAM_READ_LATENCY_NS = 100.0


@dataclasses.dataclass(frozen=True)
class PramTimingParams:
    """LPDDR2-NVM timing parameters (Table II).

    Attributes expressed in cycles are multiplied by :attr:`tck_ns`
    through the ``*_ns`` properties.
    """

    read_latency_cycles: int = 6       # RL
    write_latency_cycles: int = 3      # WL
    tck_ns: float = TCK_NS             # tCK
    trp_cycles: int = 3                # tRP (pre-active)
    trcd_ns: float = 80.0              # tRCD (activate)
    tdqsck_ns: float = 2.5             # tDQSCK (min of 2.5-5.5 range)
    tdqss_ns: float = 0.75             # tDQSS (min of 0.75-1.25 range)
    twr_ns: float = 15.0               # tWRA write recovery
    burst_length: int = 16             # BL16: tBURST = 16 cycles
    write_pristine_ns: float = PRAM_WRITE_PRISTINE_NS
    write_overwrite_ns: float = PRAM_WRITE_OVERWRITE_NS
    reset_only_ns: float = PRAM_RESET_ONLY_LATENCY_NS
    erase_ns: float = PRAM_ERASE_LATENCY_NS

    def __post_init__(self) -> None:
        if self.burst_length not in (4, 8, 16):
            raise ValueError(
                f"burst length must be BL4/BL8/BL16, got {self.burst_length}"
            )
        if self.tck_ns <= 0:
            raise ValueError(f"tCK must be positive, got {self.tck_ns}")

    @property
    def rl_ns(self) -> float:
        """Read latency (RL) in nanoseconds."""
        return self.read_latency_cycles * self.tck_ns

    @property
    def wl_ns(self) -> float:
        """Write latency (WL) in nanoseconds."""
        return self.write_latency_cycles * self.tck_ns

    @property
    def trp_ns(self) -> float:
        """Pre-active (RAB update) time in nanoseconds."""
        return self.trp_cycles * self.tck_ns

    @property
    def tburst_ns(self) -> float:
        """Data burst time: burst_length cycles (Table II: 4/8/16)."""
        return self.burst_length * self.tck_ns


@dataclasses.dataclass(frozen=True)
class PramGeometry:
    """Physical organization of the PRAM subsystem (Section II-A).

    A *module* (chip/package) holds one bank of ``partitions_per_bank``
    partitions.  Each partition has 64 resistive tiles of 2048 bitlines
    by 4096 wordlines, which the bank's sense amplifiers expose as
    32-byte (256-bit) rows through the RDBs.
    """

    channels: int = 2
    modules_per_channel: int = 16
    partitions_per_bank: int = 16
    tiles_per_partition: int = 64
    bitlines_per_tile: int = 2048
    wordlines_per_tile: int = 4096
    row_bytes: int = 32        # 256-bit bank-level parallel I/O
    word_bytes: int = 4        # program unit (word) for cell-state tracking
    rab_count: int = 4         # Table II: RAB = 4
    rdb_count: int = 4         # Table II: 4 RDBs of 32 B
    lower_row_bits: int = 7    # row bits delivered directly per activate

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 1:
                raise ValueError(f"{field.name} must be >= 1")
        if self.row_bytes % self.word_bytes:
            raise ValueError("row_bytes must be a multiple of word_bytes")

    @functools.cached_property
    def partition_bytes(self) -> int:
        """Capacity of one partition."""
        bits = (self.tiles_per_partition * self.bitlines_per_tile
                * self.wordlines_per_tile)
        return bits // 8

    @functools.cached_property
    def rows_per_partition(self) -> int:
        """Number of 32-byte rows in one partition."""
        return self.partition_bytes // self.row_bytes

    @functools.cached_property
    def module_bytes(self) -> int:
        """Capacity of one module (one bank)."""
        return self.partition_bytes * self.partitions_per_bank

    @functools.cached_property
    def channel_bytes(self) -> int:
        """Capacity of one channel."""
        return self.module_bytes * self.modules_per_channel

    @functools.cached_property
    def total_bytes(self) -> int:
        """Capacity of the whole subsystem."""
        return self.channel_bytes * self.channels

    @functools.cached_property
    def words_per_row(self) -> int:
        """Program units per row."""
        return self.row_bytes // self.word_bytes

    @functools.cached_property
    def row_address_bits(self) -> int:
        """Bits needed to address a row within a partition."""
        return max(1, (self.rows_per_partition - 1).bit_length())

    @functools.cached_property
    def upper_row_bits(self) -> int:
        """Row bits carried via a RAB during the pre-active phase."""
        return max(0, self.row_address_bits - self.lower_row_bits)
