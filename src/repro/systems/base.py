"""Shared machinery for system configurations.

Every system run builds a fresh :class:`~repro.sim.Simulator`, wires
components, preloads the workload's input into the persistent storage
(the paper's common-practice setup step), then drives four phases:

1. **prepare** — host-side data staging (only the heterogeneous
   systems pay this; integrated/PRAM systems hold data already);
2. **offload** — kernel image over PCIe to the accelerator;
3. **execute** — the accelerator runs the per-agent traces;
4. **writeback** — buffered outputs drain to persistent media.

The resulting :class:`ExecutionResult` carries everything the figures
need: wall time, a Figure 16-style time decomposition, a Figure
17-style energy account, bandwidth, and the IPC/power series.
"""

from __future__ import annotations

import abc
import dataclasses
import typing

from repro.accel import Accelerator, AcceleratorConfig, AcceleratorStats
from repro.accel.mcu import MemoryBackend
from repro.energy import EnergyAccount, EnergyModel
from repro.faults.plan import FaultConfig
from repro.host import PcieLink
from repro.sim import Breakdown, Simulator, TimeSeries
from repro.workloads.trace import TraceBundle

#: Deterministic content pattern for input preloading.
def input_pattern(address: int, size: int) -> bytes:
    """Reproducible non-zero input bytes for a region."""
    return bytes(((address + i) * 31 + 7) % 251 + 1 for i in range(size))


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Run-wide knobs shared by all systems."""

    accelerator: AcceleratorConfig = AcceleratorConfig()
    #: Fraction of the workload footprint the accelerator-side DRAM of
    #: heterogeneous systems can hold.  The paper's inflated workloads
    #: still fit the 1 GB device DRAM, so the default is 1.0 — the
    #: heterogeneous penalty is per-kernel-round staging, not
    #: thrashing.  Lower it to study capacity pressure.
    dram_fraction: float = 1.0
    energy_model: EnergyModel = EnergyModel()
    #: Optional fault-injection plan (repro.faults); only the PRAM
    #: systems honour it — DRAM/SSD media are modelled fault-free.
    faults: FaultConfig | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.dram_fraction <= 1.0:
            raise ValueError(
                f"dram_fraction must be in (0, 1], got {self.dram_fraction}"
            )


@dataclasses.dataclass
class ExecutionResult:
    """Everything one (system, workload) run produced."""

    system: str
    workload: str
    total_ns: float
    phase_ns: typing.Dict[str, float]
    time_breakdown: Breakdown
    energy: EnergyAccount
    bytes_processed: int
    accel_stats: AcceleratorStats
    aggregate_ipc: TimeSeries
    core_power: TimeSeries
    extras: typing.Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def bandwidth_mb_s(self) -> float:
        """Data-processing throughput in MB/s (Figure 15's metric)."""
        if self.total_ns <= 0:
            return 0.0
        return self.bytes_processed / self.total_ns * 1e3

    @property
    def energy_mj(self) -> float:
        """Total energy in millijoules (Figure 17's metric)."""
        return self.energy.total_mj

    def normalized_to(self, baseline: "ExecutionResult") -> float:
        """Throughput relative to a baseline run (Figure 15's y-axis)."""
        if baseline.bandwidth_mb_s <= 0:
            raise ValueError("baseline has zero bandwidth")
        return self.bandwidth_mb_s / baseline.bandwidth_mb_s


class AcceleratedSystem(abc.ABC):
    """One row of Table I, runnable against any workload bundle."""

    #: Canonical display name (Table I column header).
    name: str = "abstract"
    #: Table I "Internal DRAM" row: charged as background power.
    has_internal_dram: bool = True
    #: Table I "Heterogeneous" row: storage is outside the accelerator.
    heterogeneous: bool = False
    #: Conventional kernel scheduling: the host coordinates every
    #: kernel round (offload + data movement per execution).  DRAM-less
    #: overrides this — its server PE schedules rounds internally
    #: (Section IV), so only the first round pays the offload.
    host_coordinated: bool = True

    def __init__(self, config: SystemConfig = SystemConfig()) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build(self, sim: Simulator, energy: EnergyAccount,
               bundle: TraceBundle) -> MemoryBackend:
        """Construct this system's data path and return the backend."""

    def _prepare(self, sim: Simulator, backend: MemoryBackend,
                 bundle: TraceBundle) -> typing.Generator:
        """Host-side data staging; default: data is already in place."""
        return
        yield  # pragma: no cover

    def _writeback(self, sim: Simulator, backend: MemoryBackend,
                   bundle: TraceBundle) -> typing.Generator:
        """Drain outputs to persistent media; default: backend flush."""
        yield from backend.flush()

    def _final_persist(self, sim: Simulator, backend: MemoryBackend,
                       bundle: TraceBundle) -> typing.Generator:
        """Make the final outputs durable (end of the whole run).

        DRAM-less outputs are persistent the moment they program; the
        heterogeneous systems override this to flush the SSD's volatile
        cache to its medium so every system ends in an equivalent
        durability state.
        """
        return
        yield  # pragma: no cover

    def _finalize_energy(self, energy: EnergyAccount,
                         total_ns: float) -> None:
        """Charge run-length-proportional background energy."""
        model = energy.model
        if self.has_internal_dram:
            energy.charge_power("dram", model.accel_dram_background_w,
                                total_ns)

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self, bundle: TraceBundle) -> ExecutionResult:
        """Execute ``bundle`` on this system; returns the full result."""
        sim = Simulator()
        energy = EnergyAccount(self.config.energy_model,
                               name=f"{self.name}.energy")
        backend = self._build(sim, energy, bundle)
        self._preload_inputs(backend, bundle)
        accel = Accelerator(sim, backend, self.config.accelerator)
        offload_link = PcieLink(sim, energy=energy, name="pcie.offload")
        phase_ns: typing.Dict[str, float] = {}
        outcome: typing.Dict[str, typing.Any] = {}

        def add_phase(phase: str, amount: float) -> None:
            phase_ns[phase] = phase_ns.get(phase, 0.0) + amount

        def driver() -> typing.Generator:
            execute_start: float | None = None
            for round_index, traces in enumerate(bundle.rounds):
                coordinated = self.host_coordinated or round_index == 0

                if coordinated:
                    mark = sim.now
                    yield from self._prepare(sim, backend, bundle)
                    add_phase("prepare", sim.now - mark)

                    # Kernel offload over PCIe (Figure 9b step 2); the
                    # server-side image load is inside accel.execute.
                    mark = sim.now
                    yield sim.process(offload_link.transfer(
                        self.config.accelerator.image_bytes))
                    add_phase("offload", sim.now - mark)

                mark = sim.now
                if execute_start is None:
                    execute_start = mark
                yield from accel.execute(
                    traces,
                    kernel_name=bundle.spec.name,
                    output_regions=[bundle.output_region],
                    flush_backend=False,
                    collect=False)
                add_phase("execute", sim.now - mark)

                if coordinated:
                    mark = sim.now
                    yield from self._writeback(sim, backend, bundle)
                    add_phase("writeback", sim.now - mark)
            # DRAM-less style runs: one final writeback (a no-op for
            # persistent media) after the internally-scheduled rounds.
            if not self.host_coordinated:
                mark = sim.now
                yield from self._writeback(sim, backend, bundle)
                add_phase("writeback", sim.now - mark)
            mark = sim.now
            yield from self._final_persist(sim, backend, bundle)
            add_phase("writeback", sim.now - mark)
            outcome["stats"] = accel.collect_stats(
                execute_start if execute_start is not None else sim.now)
            outcome["end_ns"] = sim.now

        process = sim.process(driver())
        # run() drains stragglers (e.g. background pre-resets that no
        # longer matter); the run's wall clock is the driver's end.
        # Spans recorded during the run group under one scope per
        # (system, workload), i.e. one Perfetto process each.
        with sim.tracer.scope(f"{self.name}:{bundle.spec.name}"):
            sim.run()
        if not process.ok:
            raise typing.cast(BaseException, process.value)

        total_ns = typing.cast(float, outcome["end_ns"])
        stats = outcome["stats"]
        self._charge_pe_energy(energy, stats)
        self._finalize_energy(energy, total_ns)
        return ExecutionResult(
            system=self.name,
            workload=bundle.spec.name,
            total_ns=total_ns,
            phase_ns=dict(phase_ns),
            time_breakdown=self._decompose_time(phase_ns, stats),
            energy=energy,
            bytes_processed=bundle.total_bytes,
            accel_stats=stats,
            aggregate_ipc=stats.aggregate_ipc,
            core_power=accel.power_series(self.config.energy_model),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _preload_inputs(self, backend: MemoryBackend,
                        bundle: TraceBundle) -> None:
        address, size = bundle.input_region
        chunk = 64 * 1024
        cursor = 0
        while cursor < size:
            span = min(chunk, size - cursor)
            backend.preload(address + cursor,
                            input_pattern(address + cursor, span))
            cursor += span

    def _charge_pe_energy(self, energy: EnergyAccount,
                          stats: AcceleratorStats) -> None:
        from repro.accel.pe import STATE_ACTIVE, STATE_IDLE, STATE_SLEEP

        model = energy.model
        for residency in stats.pe_residency:
            energy.charge_power("pe_compute", model.pe_active_w,
                                residency.get(STATE_ACTIVE, 0.0))
            energy.charge_power("pe_idle", model.pe_idle_w,
                                residency.get(STATE_IDLE, 0.0))
            energy.charge_power("pe_idle", model.pe_sleep_w,
                                residency.get(STATE_SLEEP, 0.0))

    def _decompose_time(self, phase_ns: typing.Dict[str, float],
                        stats: AcceleratorStats) -> Breakdown:
        """Figure 16-style decomposition of the wall clock.

        The execute phase splits into computation and stalls using the
        agents' aggregate compute/stall shares.
        """
        breakdown = Breakdown("time")
        breakdown.add("data_preparation", phase_ns.get("prepare", 0.0))
        breakdown.add("kernel_offload", phase_ns.get("offload", 0.0))
        execute = phase_ns.get("execute", 0.0)
        busy = stats.compute_ns + stats.stall_ns
        if busy > 0:
            compute_share = stats.compute_ns / busy
            memory_share = ((stats.stall_ns - stats.store_stall_ns)
                            / busy)
            store_share = stats.store_stall_ns / busy
        else:  # pragma: no cover - empty traces
            compute_share = memory_share = store_share = 0.0
        breakdown.add("computation", execute * compute_share)
        breakdown.add("memory_stall", execute * memory_share)
        breakdown.add("store_stall", execute * store_share)
        breakdown.add("output_writeback", phase_ns.get("writeback", 0.0))
        return breakdown
