"""MemoryBackend implementations for every data path of Table I."""

from __future__ import annotations

import typing

from repro.controller import PramSubsystem
from repro.energy import EnergyAccount
from repro.sim import Resource, Simulator
from repro.storage.dram import DramBuffer
from repro.storage.nor_pram import NorPram
from repro.storage.ssd import SSD_COMMAND_NS

#: The block size backends operate at (matches the L2 request unit).
BLOCK_BYTES = 512


class DramBackend:
    """All data resident in accelerator DRAM (the Ideal system)."""

    def __init__(self, sim: Simulator, energy: EnergyAccount,
                 capacity_bytes: int = 1 << 34) -> None:
        self.sim = sim
        self.energy = energy
        self.dram = DramBuffer(sim, capacity_bytes, BLOCK_BYTES,
                               name="accel.dram")
        self._data: typing.Dict[int, bytes] = {}

    def read_block(self, address: int, size: int) -> typing.Generator:
        yield from self.dram.access(size)
        self._charge(size)
        return self.inspect(address, size)

    def write_block(self, address: int, data: bytes) -> typing.Generator:
        yield from self.dram.access(len(data))
        self._charge(len(data))
        self.preload(address, data)

    def flush(self) -> typing.Generator:
        return
        yield  # pragma: no cover

    def announce_writes(self, address: int, size: int) -> None:
        pass  # DRAM has no write asymmetry to prepare for

    def preload(self, address: int, data: bytes) -> None:
        for offset in range(len(data)):
            self._data[address + offset] = data[offset:offset + 1]

    def inspect(self, address: int, size: int) -> bytes:
        return b"".join(self._data.get(address + i, b"\x00")
                        for i in range(size))

    def _charge(self, size: int) -> None:
        self.energy.charge_bytes(
            "dram", self.energy.model.accel_dram_pj_per_byte, size)


class HostSsdBackend:
    """Accelerator DRAM slice in front of an external SSD (Hetero-*).

    The DRAM holds ``capacity_bytes`` of blocks; misses fetch through
    ``mover`` — either the full host storage stack or a P2P DMA engine.
    Dirty evictions and the final flush push output blocks back out
    over the same path.
    """

    #: Fault readahead: a miss pulls this many blocks (the OS/driver
    #: readahead window on the file the kernel is streaming).
    READAHEAD_BLOCKS = 8

    def __init__(self, sim: Simulator, energy: EnergyAccount, mover,
                 capacity_bytes: int) -> None:
        self.sim = sim
        self.energy = energy
        self.mover = mover
        self.dram = DramBuffer(sim, capacity_bytes, BLOCK_BYTES,
                               name="accel.dram")
        self._payloads: typing.Dict[int, bytes] = {}
        self.ssd_reads = 0
        self.ssd_writes = 0

    # ------------------------------------------------------------------
    def read_block(self, address: int, size: int) -> typing.Generator:
        block = address // BLOCK_BYTES
        base = block * BLOCK_BYTES
        if self.dram.lookup(block):
            yield from self._dram_access(size)
            payload = self._payloads.get(block)
            if payload is None:
                payload = self.mover.ssd.inspect(base, BLOCK_BYTES)
            return payload[address - base:address - base + size]
        # Miss: fault the block in with readahead.
        first = block - block % self.READAHEAD_BLOCKS
        extent = self.READAHEAD_BLOCKS * BLOCK_BYTES
        data = yield from self.mover.load_to_accelerator(
            first * BLOCK_BYTES, extent)
        self.ssd_reads += 1
        yield from self._dram_access(extent)
        for i in range(self.READAHEAD_BLOCKS):
            self._payloads[first + i] = data[i * BLOCK_BYTES:
                                             (i + 1) * BLOCK_BYTES]
            yield from self._install(first + i, dirty=False)
        offset = address - first * BLOCK_BYTES
        return data[offset:offset + size]

    def write_block(self, address: int, data: bytes) -> typing.Generator:
        block = address // BLOCK_BYTES
        base = block * BLOCK_BYTES
        yield from self._dram_access(len(data))
        existing = bytearray(self._payloads.get(block, bytes(BLOCK_BYTES)))
        existing[address - base:address - base + len(data)] = data
        self._payloads[block] = bytes(existing)
        self.dram.lookup(block)  # refresh if resident
        yield from self._install(block, dirty=True)

    def flush(self) -> typing.Generator:
        """Write dirty blocks back to the SSD in bulk extents.

        The host writes results "in an inverse order of the data
        loading procedure" — large sequential file writes, so
        contiguous dirty blocks coalesce into up-to-64 KB transfers
        instead of paying the software stack per block.
        """
        extent_blocks = (64 * 1024) // BLOCK_BYTES
        dirty = sorted(self.dram.dirty_blocks())
        run: typing.List[int] = []
        for block in dirty:
            if run and (block != run[-1] + 1
                        or len(run) >= extent_blocks):
                yield from self._flush_extent(run)
                run = []
            run.append(block)
        if run:
            yield from self._flush_extent(run)
        # The SSD's own 1 GB DRAM buffer acks the writes; its media
        # programs happen off the critical path (no fsync per kernel).

    def _flush_extent(self, blocks: typing.List[int]) -> typing.Generator:
        payload = b"".join(
            self._payloads.get(block, bytes(BLOCK_BYTES))
            for block in blocks)
        yield from self.mover.store_from_accelerator(
            blocks[0] * BLOCK_BYTES, payload)
        self.ssd_writes += 1
        for block in blocks:
            self.dram.drop(block)
            self._payloads.pop(block, None)

    def announce_writes(self, address: int, size: int) -> None:
        pass  # the DRAM front absorbs writes; nothing to prepare

    def preload(self, address: int, data: bytes) -> None:
        self.mover.ssd.preload(address, data)

    def inspect(self, address: int, size: int) -> bytes:
        block = address // BLOCK_BYTES
        base = block * BLOCK_BYTES
        payload = self._payloads.get(block)
        if payload is not None and base <= address and (
                address + size <= base + BLOCK_BYTES):
            return payload[address - base:address - base + size]
        return self.mover.ssd.inspect(address, size)

    # ------------------------------------------------------------------
    def stage_input(self, address: int, size: int) -> typing.Generator:
        """Process body: pre-stage as much input as the DRAM slice holds.

        Models Figure 5a's preparation phase — the host pushes data to
        the accelerator DRAM before kernels launch, in large file-read
        chunks (64 KB here).
        """
        resident_limit = self.dram.capacity_blocks * BLOCK_BYTES
        to_stage = min(size, resident_limit)
        chunk = 64 * 1024
        cursor = 0
        while cursor < to_stage:
            span = min(chunk, to_stage - cursor)
            yield from self.mover.load_to_accelerator(address + cursor, span)
            self.ssd_reads += 1
            first = (address + cursor) // BLOCK_BYTES
            last = (address + cursor + span - 1) // BLOCK_BYTES
            for block in range(first, last + 1):
                yield from self._install(block, dirty=False)
            cursor += span

    # ------------------------------------------------------------------
    def _dram_access(self, size: int) -> typing.Generator:
        yield from self.dram.access(size)
        self.energy.charge_bytes(
            "dram", self.energy.model.accel_dram_pj_per_byte, size)

    def _install(self, block: int, dirty: bool) -> typing.Generator:
        evicted = self.dram.insert(block, dirty=dirty)
        if evicted is not None:
            victim, victim_dirty = evicted
            payload = self._payloads.pop(victim, bytes(BLOCK_BYTES))
            if victim_dirty:
                yield from self.mover.store_from_accelerator(
                    victim * BLOCK_BYTES, payload)
                self.ssd_writes += 1


class SsdAdapterBackend:
    """Flash SSD mounted *inside* the accelerator (Integrated-*).

    The SSD's own DRAM buffer and page-granular FTL do the work; the
    adapter only forwards blocks.  Sub-page writes pay the device's
    read-modify-write, the pollution effect the paper highlights.
    """

    def __init__(self, sim: Simulator, energy: EnergyAccount, ssd) -> None:
        self.sim = sim
        self.energy = energy
        self.ssd = ssd

    def read_block(self, address: int, size: int) -> typing.Generator:
        data = yield from self.ssd.read(address, size)
        return data

    def write_block(self, address: int, data: bytes) -> typing.Generator:
        yield from self.ssd.write(address, data)

    def flush(self) -> typing.Generator:
        yield from self.ssd.flush()

    def invalidate_buffer(self) -> None:
        """Per-kernel-round buffer teardown (after a flush)."""
        self.ssd.invalidate_buffer()

    def announce_writes(self, address: int, size: int) -> None:
        pass  # flash FTLs take no overwrite hints

    def preload(self, address: int, data: bytes) -> None:
        self.ssd.preload(address, data)

    def inspect(self, address: int, size: int) -> bytes:
        return self.ssd.inspect(address, size)


class PageBufferBackend:
    """3x nm PRAM behind a page interface with a DRAM buffer (PAGE-buffer).

    Every miss moves a whole 16 KB page: chips serve the page in
    parallel (32 chips x 512 B each), so page reads are fast, but byte
    granularity is lost — small reads still drag full pages through the
    DRAM buffer, and page writes serialize 16 chunk programs per chip.
    """

    PAGE_BYTES = 16 * 1024
    CHIPS = 32
    CHUNK = 32  # PRAM bank-level I/O width

    #: Accelerator-side page-fault handling per page move: block-layer
    #: command processing plus buffer management.
    PAGE_COMMAND_NS = 10_000.0

    def __init__(self, sim: Simulator, energy: EnergyAccount,
                 buffer_bytes: int = 1 << 30,
                 read_chunk_ns: float = 100.0,
                 write_chunk_ns: float = 18_000.0) -> None:
        self.sim = sim
        self.energy = energy
        self.buffer = DramBuffer(sim, buffer_bytes, self.PAGE_BYTES,
                                 name="pagebuf.dram")
        self.port = Resource(sim, capacity=1, name="pagebuf.port")
        self.read_chunk_ns = read_chunk_ns
        self.write_chunk_ns = write_chunk_ns
        self._data: typing.Dict[int, bytes] = {}   # page -> payload
        self.pages_read = 0
        self.pages_written = 0

    # One page = CHIPS slices of (PAGE/CHIPS) bytes; each chip moves
    # its slice CHUNK bytes at a time, serially.
    def _page_read_ns(self) -> float:
        chunks_per_chip = self.PAGE_BYTES // self.CHIPS // self.CHUNK
        return self.PAGE_COMMAND_NS + chunks_per_chip * self.read_chunk_ns

    def _page_write_ns(self) -> float:
        chunks_per_chip = self.PAGE_BYTES // self.CHIPS // self.CHUNK
        return self.PAGE_COMMAND_NS + chunks_per_chip * self.write_chunk_ns

    def read_block(self, address: int, size: int) -> typing.Generator:
        page = address // self.PAGE_BYTES
        yield from self._ensure_resident(page)
        yield from self.buffer.access(size)
        self.energy.charge_bytes(
            "dram", self.energy.model.accel_dram_pj_per_byte, size)
        payload = self._data.get(page, bytes(self.PAGE_BYTES))
        offset = address - page * self.PAGE_BYTES
        return payload[offset:offset + size]

    def write_block(self, address: int, data: bytes) -> typing.Generator:
        page = address // self.PAGE_BYTES
        # Byte granularity is unavailable: the page must be resident
        # (read-modify-write) before the buffer absorbs the write.
        yield from self._ensure_resident(page)
        yield from self.buffer.access(len(data))
        self.energy.charge_bytes(
            "dram", self.energy.model.accel_dram_pj_per_byte, len(data))
        payload = bytearray(self._data.get(page, bytes(self.PAGE_BYTES)))
        offset = address - page * self.PAGE_BYTES
        payload[offset:offset + len(data)] = data
        self._data[page] = bytes(payload)
        self.buffer.insert(page, dirty=True)

    def flush(self) -> typing.Generator:
        for page in self.buffer.dirty_blocks():
            yield from self._program_page(page)
            self.buffer.drop(page)

    def invalidate_buffer(self) -> None:
        """Per-kernel-round buffer teardown (after a flush).

        The page payloads in ``_data`` are the medium's contents and
        stay; only DRAM residency is dropped.
        """
        self.buffer.clear_residency()

    def announce_writes(self, address: int, size: int) -> None:
        pass  # the page interface hides the medium from hints

    def preload(self, address: int, data: bytes) -> None:
        cursor = 0
        while cursor < len(data):
            page = (address + cursor) // self.PAGE_BYTES
            offset = (address + cursor) % self.PAGE_BYTES
            span = min(self.PAGE_BYTES - offset, len(data) - cursor)
            payload = bytearray(self._data.get(page,
                                               bytes(self.PAGE_BYTES)))
            payload[offset:offset + span] = data[cursor:cursor + span]
            self._data[page] = bytes(payload)
            cursor += span

    def inspect(self, address: int, size: int) -> bytes:
        out = bytearray()
        cursor = 0
        while cursor < size:
            page = (address + cursor) // self.PAGE_BYTES
            offset = (address + cursor) % self.PAGE_BYTES
            span = min(self.PAGE_BYTES - offset, size - cursor)
            payload = self._data.get(page, bytes(self.PAGE_BYTES))
            out += payload[offset:offset + span]
            cursor += span
        return bytes(out)

    # ------------------------------------------------------------------
    def _ensure_resident(self, page: int) -> typing.Generator:
        if self.buffer.lookup(page):
            return
        yield from self._fetch_page(page)
        evicted = self.buffer.insert(page, dirty=False)
        if evicted is not None and evicted[1]:
            yield from self._program_page(evicted[0])

    def _fetch_page(self, page: int) -> typing.Generator:
        duration = self._page_read_ns()
        yield self.sim.process(self.port.use(duration))
        self.pages_read += 1
        self.energy.charge_bytes(
            "pram", self.energy.model.pram_read_pj_per_byte,
            self.PAGE_BYTES)
        # The page interface drives the same PRAM chips through a
        # controller of its own.
        self.energy.charge_power(
            "controller", self.energy.model.fpga_controller_w, duration)

    def _program_page(self, page: int) -> typing.Generator:
        duration = self._page_write_ns()
        yield self.sim.process(self.port.use(duration))
        self.pages_written += 1
        self.energy.charge_bytes(
            "pram", self.energy.model.pram_set_pj_per_byte,
            self.PAGE_BYTES)
        self.energy.charge_power(
            "controller", self.energy.model.fpga_controller_w, duration)


class NorBackend:
    """Direct byte access over the NOR-interface PRAM (NOR-intf)."""

    def __init__(self, sim: Simulator, energy: EnergyAccount,
                 nor: NorPram | None = None) -> None:
        self.sim = sim
        self.energy = energy
        self.nor = nor if nor is not None else NorPram(sim, energy=energy)

    def read_block(self, address: int, size: int) -> typing.Generator:
        data = yield from self.nor.read(address, size)
        return data

    def write_block(self, address: int, data: bytes) -> typing.Generator:
        yield from self.nor.write(address, data)

    def flush(self) -> typing.Generator:
        return
        yield  # pragma: no cover

    def announce_writes(self, address: int, size: int) -> None:
        pass  # the legacy interface offers no pre-reset command

    def preload(self, address: int, data: bytes) -> None:
        self.nor.preload(address, data)

    def inspect(self, address: int, size: int) -> bytes:
        return self.nor.inspect(address, size)


class PramBackend:
    """The DRAM-less data path: the hardware-automated PRAM subsystem.

    ``announce_writes`` feeds the selective-erasing hint store and
    kicks off a background drain so pre-RESETs overlap with compute.
    """

    def __init__(self, sim: Simulator, energy: EnergyAccount,
                 subsystem: PramSubsystem) -> None:
        self.sim = sim
        self.energy = energy
        self.subsystem = subsystem

    def read_block(self, address: int, size: int) -> typing.Generator:
        data = yield from self.subsystem.read(address, size)
        self.energy.charge_bytes(
            "pram", self.energy.model.pram_read_pj_per_byte, size)
        return data

    def write_block(self, address: int, data: bytes) -> typing.Generator:
        yield from self.subsystem.write(address, data)
        self.energy.charge_bytes(
            "pram", self.energy.model.pram_set_pj_per_byte, len(data))
        # Controller (FPGA) power is charged once over the whole run by
        # DramlessSystem._finalize_energy — per-request charging would
        # double count overlapping accesses.

    def flush(self) -> typing.Generator:
        return  # PRAM writes are persistent on completion
        yield  # pragma: no cover

    def announce_writes(self, address: int, size: int) -> None:
        self.subsystem.register_write_hint(address, size)
        self.sim.process(self.subsystem.drain_hints(),
                         name="selective-erase")

    def preload(self, address: int, data: bytes) -> None:
        self.subsystem.preload(address, data)

    def inspect(self, address: int, size: int) -> bytes:
        return self.subsystem.inspect(address, size)
