"""Heterogeneous systems: accelerator + external SSD (Figure 5a).

Four variants per Table I: flash SSD vs PRAM SSD, crossed with
host-stack mediation vs peer-to-peer DMA, plus the Ideal system used
by Figure 1's motivation study.
"""

from __future__ import annotations

import typing

from repro.energy import EnergyAccount
from repro.host import HostCpu, PcieLink, PeerToPeerDma, StorageSoftwareStack
from repro.sim import Simulator
from repro.storage import EmulatedSsd, FlashCellType, PramSsd
from repro.systems.backends import BLOCK_BYTES, DramBackend, HostSsdBackend
from repro.systems.base import AcceleratedSystem, SystemConfig
from repro.workloads.trace import TraceBundle


class IdealSystem(AcceleratedSystem):
    """Unlimited accelerator memory, all data resident (Figure 1)."""

    name = "Ideal"
    has_internal_dram = True

    def _build(self, sim: Simulator, energy: EnergyAccount,
               bundle: TraceBundle) -> DramBackend:
        return DramBackend(sim, energy)


class HeteroSystem(AcceleratedSystem):
    """Accelerator + external SSD, with a capacity-limited DRAM slice.

    ``pram_ssd`` selects the Optane-like device; ``p2p`` selects the
    zero-copy DMA path (the "direct" variants).
    """

    heterogeneous = True
    has_internal_dram = True

    def __init__(self, config: SystemConfig = SystemConfig(),
                 pram_ssd: bool = False, p2p: bool = False) -> None:
        super().__init__(config)
        self.pram_ssd = pram_ssd
        self.p2p = p2p
        self.name = _hetero_name(pram_ssd, p2p)
        self.cpu: HostCpu | None = None

    def _build(self, sim: Simulator, energy: EnergyAccount,
               bundle: TraceBundle) -> HostSsdBackend:
        self.cpu = HostCpu(sim, energy=energy)
        ssd_link = PcieLink(sim, energy=energy, name="pcie.ssd")
        accel_link = PcieLink(sim, energy=energy, name="pcie.accel")
        if self.pram_ssd:
            ssd = PramSsd(sim, energy=energy)
        else:
            # The flash reference device is an MLC NVMe SSD [16].
            ssd = EmulatedSsd(sim, cell_type=FlashCellType.MLC,
                              energy=energy)
        if self.p2p:
            mover = PeerToPeerDma(sim, self.cpu, ssd, ssd_link)
        else:
            mover = StorageSoftwareStack(sim, self.cpu, ssd, ssd_link,
                                         accel_link)
        footprint = bundle.input_bytes + bundle.output_bytes
        capacity = max(
            BLOCK_BYTES,
            int(footprint * self.config.dram_fraction))
        return HostSsdBackend(sim, energy, mover, capacity_bytes=capacity)

    def _prepare(self, sim: Simulator, backend: HostSsdBackend,
                 bundle: TraceBundle) -> typing.Generator:
        """Stage as much input as the DRAM slice holds (Figure 5a (a))."""
        address, size = bundle.input_region
        yield from backend.stage_input(address, size)

    # Durability note: no final media flush is modelled.  The
    # reference flash device (an Intel 750-class NVMe SSD) has
    # power-loss-protected write caching, so writes acknowledged by
    # the device's DRAM are already durable — equivalent to
    # DRAM-less's persistent-on-program PRAM.


class IdealHeteroSystem(HeteroSystem):
    """Figure 1's idealized environment.

    The same accelerator+SSD hardware as Hetero, but with "enough
    memory space to accommodate all data within the accelerator": data
    stages once (not per kernel round), every round runs out of the
    resident DRAM, and outputs write back once at the end.
    """

    host_coordinated = False

    def __init__(self, config: SystemConfig = SystemConfig()) -> None:
        super().__init__(config)
        self.name = "Ideal-resident"

    def _build(self, sim: Simulator, energy: EnergyAccount,
               bundle: TraceBundle) -> HostSsdBackend:
        backend = super()._build(sim, energy, bundle)
        # Enough memory for the whole footprint regardless of the
        # configured fraction.
        footprint = bundle.input_bytes + bundle.output_bytes
        backend.dram.capacity_blocks = max(
            backend.dram.capacity_blocks,
            footprint // BLOCK_BYTES + 1)
        return backend


def _hetero_name(pram_ssd: bool, p2p: bool) -> str:
    base = "Heterodirect" if p2p else "Hetero"
    return f"{base}-PRAM" if pram_ssd else base
