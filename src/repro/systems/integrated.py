"""Aggressive integrations: flash SSDs inside the accelerator.

Integrated-SLC/MLC/TLC put the flash medium (plus its 1 GB DRAM
buffer) behind the MCU directly — no PCIe hop, no host stack — but
every access still moves 16 KB pages, and sub-page output writes pay
read-modify-write (the active-SSD pollution effect of Section VI-C).
"""

from __future__ import annotations

from repro.energy import EnergyAccount
from repro.sim import Simulator
from repro.storage import EmulatedSsd, FlashCellType
from repro.systems.backends import SsdAdapterBackend
from repro.systems.base import AcceleratedSystem, SystemConfig
from repro.workloads.trace import TraceBundle


class IntegratedSystem(AcceleratedSystem):
    """Flash + DRAM buffer mounted inside the accelerator."""

    heterogeneous = False
    has_internal_dram = True

    def __init__(self, config: SystemConfig = SystemConfig(),
                 cell_type: FlashCellType = FlashCellType.SLC) -> None:
        super().__init__(config)
        self.cell_type = cell_type
        self.name = f"Integrated-{cell_type.label.upper()}"

    def _build(self, sim: Simulator, energy: EnergyAccount,
               bundle: TraceBundle) -> SsdAdapterBackend:
        ssd = EmulatedSsd(sim, cell_type=self.cell_type, energy=energy,
                          name=f"integrated.{self.cell_type.label}")
        return SsdAdapterBackend(sim, energy, ssd)

    def _writeback(self, sim: Simulator, backend: SsdAdapterBackend,
                   bundle: TraceBundle):
        """Per-round: flush outputs, then tear the buffer down.

        Conventional kernel management re-prepares device data for
        every kernel execution, so the DRAM buffer does not persist
        across rounds (the repeated whole-page fetches of Figure 18).
        """
        yield from backend.flush()
        backend.invalidate_buffer()
