"""System configurations: the ten accelerated systems of Table I.

Every system couples the same accelerator model with a different
memory/storage path (a :class:`~repro.accel.mcu.MemoryBackend`):

==================  ================================================
system              data path behind the MCU
==================  ================================================
Ideal               unlimited accelerator DRAM, data resident
Hetero              accel DRAM slice + flash SSD via the host stack
Heterodirect        accel DRAM slice + flash SSD via P2P DMA
Hetero-PRAM         accel DRAM slice + PRAM SSD via the host stack
Heterodirect-PRAM   accel DRAM slice + PRAM SSD via P2P DMA
Integrated-SLC      SLC flash + DRAM buffer inside the accelerator
Integrated-MLC      MLC flash + DRAM buffer inside the accelerator
Integrated-TLC      TLC flash + DRAM buffer inside the accelerator
NOR-intf            9x nm NOR-interface PRAM, byte access, no DRAM
PAGE-buffer         3x nm PRAM behind a page interface + DRAM buffer
DRAM-less           hardware-automated PRAM subsystem (the paper)
DRAM-less (fw)      same PRAM subsystem behind traditional firmware
==================  ================================================
"""

from repro.systems.base import AcceleratedSystem, ExecutionResult, SystemConfig
from repro.systems.backends import (
    DramBackend,
    HostSsdBackend,
    NorBackend,
    PageBufferBackend,
    PramBackend,
    SsdAdapterBackend,
)
from repro.systems.registry import SYSTEM_NAMES, build_system

__all__ = [
    "AcceleratedSystem",
    "DramBackend",
    "ExecutionResult",
    "HostSsdBackend",
    "NorBackend",
    "PageBufferBackend",
    "PramBackend",
    "SYSTEM_NAMES",
    "SsdAdapterBackend",
    "SystemConfig",
    "build_system",
]
