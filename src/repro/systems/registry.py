"""Build any evaluated system by its Table I name."""

from __future__ import annotations

import typing

from repro.controller import SchedulerPolicy
from repro.storage import FlashCellType
from repro.systems.base import AcceleratedSystem, SystemConfig
from repro.systems.hetero import HeteroSystem, IdealHeteroSystem, IdealSystem
from repro.systems.integrated import IntegratedSystem
from repro.systems.pram_accel import (
    DramlessSystem,
    NorSystem,
    PageBufferSystem,
)

#: The ten systems of Figures 15-17, in the paper's plotting order,
#: plus the Ideal reference and the firmware ablation.
SYSTEM_NAMES: typing.Tuple[str, ...] = (
    "Hetero",
    "Heterodirect",
    "Hetero-PRAM",
    "Heterodirect-PRAM",
    "NOR-intf",
    "Integrated-SLC",
    "Integrated-MLC",
    "Integrated-TLC",
    "PAGE-buffer",
    "DRAM-less (firmware)",
    "DRAM-less",
)

_BUILDERS: typing.Dict[str, typing.Callable[
    [SystemConfig], AcceleratedSystem]] = {
    "Ideal": lambda cfg: IdealSystem(cfg),
    "Ideal-resident": lambda cfg: IdealHeteroSystem(cfg),
    "Hetero": lambda cfg: HeteroSystem(cfg),
    "Heterodirect": lambda cfg: HeteroSystem(cfg, p2p=True),
    "Hetero-PRAM": lambda cfg: HeteroSystem(cfg, pram_ssd=True),
    "Heterodirect-PRAM": lambda cfg: HeteroSystem(cfg, pram_ssd=True,
                                                  p2p=True),
    "NOR-intf": lambda cfg: NorSystem(cfg),
    "Integrated-SLC": lambda cfg: IntegratedSystem(
        cfg, cell_type=FlashCellType.SLC),
    "Integrated-MLC": lambda cfg: IntegratedSystem(
        cfg, cell_type=FlashCellType.MLC),
    "Integrated-TLC": lambda cfg: IntegratedSystem(
        cfg, cell_type=FlashCellType.TLC),
    "PAGE-buffer": lambda cfg: PageBufferSystem(cfg),
    "DRAM-less": lambda cfg: DramlessSystem(cfg),
    "DRAM-less (firmware)": lambda cfg: DramlessSystem(cfg, firmware=True),
}


def build_system(name: str,
                 config: SystemConfig | None = None
                 ) -> AcceleratedSystem:
    """Instantiate a system by name ("Ideal" and Table I's ten + fw)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise KeyError(f"unknown system {name!r}; known: {known}") from None
    return builder(config if config is not None else SystemConfig())
