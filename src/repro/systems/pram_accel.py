"""PRAM-based accelerators: NOR-intf, PAGE-buffer, and DRAM-less.

These three (plus DRAM-less (firmware)) integrate PRAM into the
coprocessor with different interfaces:

* **NOR-intf** — 9x nm parallel PRAM over a serial NOR interface:
  byte-addressable, no DRAM, but word-serialized and slow;
* **PAGE-buffer** — the same 3x nm samples as DRAM-less, but accessed
  at page granularity through an internal DRAM buffer;
* **DRAM-less** — the paper's system: the hardware-automated PRAM
  subsystem with multi-resource aware interleaving and selective
  erasing;
* **DRAM-less (firmware)** — identical hardware, but every request is
  admitted by traditional SSD firmware on a 3-core 500 MHz CPU.
"""

from __future__ import annotations

import typing

from repro.controller import PramSubsystem, SchedulerPolicy
from repro.controller.firmware import FirmwareModel
from repro.energy import EnergyAccount
from repro.pram import PramGeometry, PramTimingParams
from repro.sim import Simulator
from repro.systems.backends import NorBackend, PageBufferBackend, PramBackend
from repro.systems.base import AcceleratedSystem, SystemConfig
from repro.workloads.trace import TraceBundle


class NorSystem(AcceleratedSystem):
    """Byte-addressable legacy PRAM, no DRAM buffer (NOR-intf)."""

    name = "NOR-intf"
    heterogeneous = False
    has_internal_dram = False

    def _build(self, sim: Simulator, energy: EnergyAccount,
               bundle: TraceBundle) -> NorBackend:
        return NorBackend(sim, energy)


class PageBufferSystem(AcceleratedSystem):
    """3x nm PRAM behind a page interface + DRAM buffer (PAGE-buffer)."""

    name = "PAGE-buffer"
    heterogeneous = False
    has_internal_dram = True

    def _build(self, sim: Simulator, energy: EnergyAccount,
               bundle: TraceBundle) -> PageBufferBackend:
        return PageBufferBackend(sim, energy)

    def _writeback(self, sim: Simulator, backend: PageBufferBackend,
                   bundle: TraceBundle):
        """Per-round flush + buffer teardown (conventional scheduling)."""
        yield from backend.flush()
        backend.invalidate_buffer()


class DramlessSystem(AcceleratedSystem):
    """The paper's system: hardware-automated PRAM subsystem."""

    heterogeneous = False
    has_internal_dram = False
    # The server PE schedules kernel rounds internally (Section IV):
    # only the first round pays host offload, and there is no per-round
    # data staging or writeback.
    host_coordinated = False

    def __init__(self, config: SystemConfig = SystemConfig(),
                 policy: SchedulerPolicy = SchedulerPolicy.FINAL,
                 firmware: bool = False,
                 firmware_cores: int = 3,
                 firmware_instructions: int | None = None,
                 geometry: PramGeometry = PramGeometry(),
                 params: PramTimingParams = PramTimingParams()) -> None:
        super().__init__(config)
        self.policy = policy
        self.firmware = firmware
        self.firmware_cores = firmware_cores
        self.firmware_instructions = firmware_instructions
        self.geometry = geometry
        self.params = params
        self.name = "DRAM-less (firmware)" if firmware else "DRAM-less"
        self._firmware_model: FirmwareModel | None = None

    def _build(self, sim: Simulator, energy: EnergyAccount,
               bundle: TraceBundle) -> PramBackend:
        if self.firmware:
            kwargs = {"cores": self.firmware_cores}
            if self.firmware_instructions is not None:
                kwargs["instructions_per_request"] = (
                    self.firmware_instructions)
            self._firmware_model = FirmwareModel(sim, **kwargs)
        else:
            self._firmware_model = None
        subsystem = PramSubsystem(
            sim, geometry=self.geometry, params=self.params,
            policy=self.policy, firmware=self._firmware_model,
            faults=self.config.faults)
        return PramBackend(sim, energy, subsystem)

    def _finalize_energy(self, energy: EnergyAccount,
                         total_ns: float) -> None:
        super()._finalize_energy(energy, total_ns)
        model = energy.model
        energy.charge_power("pram", model.pram_idle_w, total_ns)
        # The 28 nm FPGA controller is powered for the whole run.
        energy.charge_power("controller", model.fpga_controller_w,
                            total_ns)
        if self._firmware_model is not None:
            busy = (self._firmware_model.requests_processed
                    * self._firmware_model.request_cost_ns)
            energy.charge_power("controller", model.firmware_cpu_w, busy)
