"""Host CPU cost model: syscalls, context switches, memory copies."""

from __future__ import annotations

import dataclasses
import typing

from repro.energy import EnergyAccount
from repro.sim import Resource, Simulator


@dataclasses.dataclass(frozen=True)
class HostCpuCosts:
    """Fixed host-side overheads, nanoseconds.

    The figures are conventional Linux-on-x86 magnitudes; what matters
    for the reproduction is that a storage round trip costs tens of
    microseconds of CPU time while the device itself needs far less.
    """

    syscall_ns: float = 1_500.0           # user->kernel->user, no work
    context_switch_ns: float = 4_000.0    # blocking I/O reschedule
    interrupt_ns: float = 2_000.0         # device completion IRQ + wakeup
    copy_bandwidth: float = 10.0          # memcpy bytes/ns (~10 GB/s)
    deserialize_per_byte_ns: float = 0.15  # file-to-object conversion


class HostCpu:
    """A host CPU executing storage-stack work on behalf of the accelerator.

    One core serves the I/O path (the paper's workloads drive a single
    submission thread); time spent here is charged as ``host`` energy
    at package power.
    """

    def __init__(self, sim: Simulator,
                 costs: HostCpuCosts = HostCpuCosts(),
                 energy: EnergyAccount | None = None) -> None:
        self.sim = sim
        self.costs = costs
        self.energy = energy
        self.core = Resource(sim, capacity=1, name="host.core")
        self.busy_ns = 0.0
        self.syscalls = 0
        self.context_switches = 0
        self.copies = 0
        self.bytes_copied = 0

    # ------------------------------------------------------------------
    # Timed work items (process bodies)
    # ------------------------------------------------------------------
    def run(self, duration: float) -> typing.Generator:
        """Occupy the core for ``duration`` ns and charge energy."""
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        yield self.sim.process(self.core.use(duration))
        self.busy_ns += duration
        if self.energy is not None:
            self.energy.charge_power(
                "host", self.energy.model.host_cpu_active_w, duration)

    def syscall(self) -> typing.Generator:
        """One system-call entry/exit."""
        self.syscalls += 1
        yield from self.run(self.costs.syscall_ns)

    def context_switch(self) -> typing.Generator:
        """One blocking-I/O reschedule."""
        self.context_switches += 1
        yield from self.run(self.costs.context_switch_ns)

    def handle_interrupt(self) -> typing.Generator:
        """Completion interrupt servicing."""
        yield from self.run(self.costs.interrupt_ns)

    def copy(self, size: int) -> typing.Generator:
        """One host-DRAM-to-host-DRAM copy of ``size`` bytes."""
        if size < 0:
            raise ValueError(f"negative copy size: {size}")
        self.copies += 1
        self.bytes_copied += size
        yield from self.run(size / self.costs.copy_bandwidth)
        if self.energy is not None:
            self.energy.charge_bytes(
                "host_dram", self.energy.model.host_dram_pj_per_byte, size)

    def deserialize(self, size: int) -> typing.Generator:
        """File-representation to object-representation conversion.

        The Morpheus-style overhead: turning low-level file bytes into
        the in-memory objects the accelerator consumes.
        """
        if size < 0:
            raise ValueError(f"negative size: {size}")
        yield from self.run(size * self.costs.deserialize_per_byte_ns)
