"""Host-side models: CPU costs, PCIe, the storage software stack, P2P DMA.

These models produce the "software intervention" and "redundant data
copy" overheads Figures 1 and 15-17 attribute to conventional
accelerated systems: every SSD access from the accelerator bounces
through syscalls, user/kernel mode switches, and host-DRAM copies.
"""

from repro.host.cpu import HostCpu, HostCpuCosts
from repro.host.p2p_dma import PeerToPeerDma
from repro.host.pcie import PcieLink
from repro.host.software_stack import StorageSoftwareStack

__all__ = [
    "HostCpu",
    "HostCpuCosts",
    "PcieLink",
    "PeerToPeerDma",
    "StorageSoftwareStack",
]
