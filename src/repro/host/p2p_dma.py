"""Peer-to-peer DMA between the SSD and the accelerator.

The "Heterodirect" baselines (Morpheus/NVMMU-style): data moves
SSD -> PCIe -> accelerator directly, skipping host DRAM copies and
deserialization.  The host still arms each transfer (a lightweight
driver call) but is out of the data path.
"""

from __future__ import annotations

import typing

from repro.host.cpu import HostCpu
from repro.host.pcie import PcieLink
from repro.sim import Simulator

#: Host driver work to arm one P2P descriptor, ns: the submission
#: syscall plus NVMMU/Morpheus-style mapping lookup.  The data path is
#: zero-copy but the control path still runs on the host.
P2P_SETUP_NS = 5_000.0


class PeerToPeerDma:
    """Zero-copy SSD <-> accelerator transfers."""

    def __init__(self, sim: Simulator, cpu: HostCpu, ssd,
                 link: PcieLink) -> None:
        self.sim = sim
        self.cpu = cpu
        self.ssd = ssd
        self.link = link
        self.transfers = 0

    def load_to_accelerator(self, address: int,
                            size: int) -> typing.Generator:
        """SSD -> accelerator over one PCIe path; returns the data."""
        self.transfers += 1
        start = self.sim.now
        yield from self.cpu.run(P2P_SETUP_NS)      # arm the descriptor
        data = yield from self.ssd.read(address, size)
        yield from self.link.transfer(size)
        yield from self.cpu.handle_interrupt()      # completion IRQ
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit("p2p_load", "p2p", start, self.sim.now,
                        address=address, bytes=size)
        return data

    def store_from_accelerator(self, address: int,
                               data: bytes) -> typing.Generator:
        """Accelerator -> SSD over one PCIe path."""
        self.transfers += 1
        start = self.sim.now
        yield from self.cpu.run(P2P_SETUP_NS)
        yield from self.link.transfer(len(data))
        yield from self.ssd.write(address, data)
        yield from self.cpu.handle_interrupt()
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit("p2p_store", "p2p", start, self.sim.now,
                        address=address, bytes=len(data))
