"""The host storage software stack (filesystem + block layer + driver).

This is the path Figure 5a draws: an accelerator-side data need becomes
a file read on the host — syscall, filesystem work, a DMA from the SSD
into the page cache, a copy into the user buffer, deserialization, a
copy into the pinned DMA buffer, and finally a PCIe transfer to the
accelerator.  Writes run the inverse order.
"""

from __future__ import annotations

import typing

from repro.host.cpu import HostCpu
from repro.host.pcie import PcieLink
from repro.sim import Simulator

#: Filesystem + block-layer CPU work per I/O request, ns (lookup,
#: page-cache management, bio assembly, driver submission).
FILESYSTEM_REQUEST_NS = 5_000.0


class StorageSoftwareStack:
    """Host-mediated data movement between an SSD and the accelerator."""

    def __init__(self, sim: Simulator, cpu: HostCpu, ssd,
                 ssd_link: PcieLink, accel_link: PcieLink) -> None:
        self.sim = sim
        self.cpu = cpu
        self.ssd = ssd
        self.ssd_link = ssd_link
        self.accel_link = accel_link
        self.requests = 0

    # ------------------------------------------------------------------
    # The two directions of Figure 5a's protocol
    # ------------------------------------------------------------------
    def load_to_accelerator(self, address: int,
                            size: int) -> typing.Generator:
        """SSD -> host DRAM -> accelerator DRAM, with all software costs.

        Returns the data read.
        """
        self.requests += 1
        yield from self.cpu.syscall()
        yield from self.cpu.run(FILESYSTEM_REQUEST_NS)
        yield from self.cpu.context_switch()       # block on the I/O
        data = yield from self.ssd.read(address, size)
        yield from self.ssd_link.transfer(size)     # SSD DMA to page cache
        yield from self.cpu.handle_interrupt()
        yield from self.cpu.copy(size)              # page cache -> user
        yield from self.cpu.deserialize(size)       # file -> objects
        yield from self.cpu.copy(size)              # user -> pinned buffer
        yield from self.cpu.syscall()               # submit to accelerator
        yield from self.accel_link.transfer(size)   # host -> accelerator
        return data

    def store_from_accelerator(self, address: int,
                               data: bytes) -> typing.Generator:
        """Accelerator DRAM -> host DRAM -> SSD (inverse of loading)."""
        self.requests += 1
        size = len(data)
        yield from self.accel_link.transfer(size)   # accelerator -> host
        yield from self.cpu.handle_interrupt()
        yield from self.cpu.copy(size)              # pinned -> user
        yield from self.cpu.deserialize(size)       # objects -> file bytes
        yield from self.cpu.syscall()
        yield from self.cpu.run(FILESYSTEM_REQUEST_NS)
        yield from self.cpu.copy(size)              # user -> page cache
        yield from self.cpu.context_switch()
        yield from self.ssd_link.transfer(size)
        yield from self.ssd.write(address, data)
        yield from self.cpu.handle_interrupt()
