"""PCIe interconnect model.

Each device sits on its own slot (the paper's testbed attaches the
accelerator and the SSD through two different PCIe slots); a transfer
between two devices, or between a device and host DRAM, crosses one
link.  Gen3 x4-class effective bandwidth with a microsecond-scale
round-trip latency.
"""

from __future__ import annotations

import typing

from repro.energy import EnergyAccount
from repro.sim import Channel, Simulator
from repro.telemetry.metrics import current_metrics

#: Effective payload bandwidth, bytes/ns (Gen3 x4 after overhead).
PCIE_BANDWIDTH = 3.2

#: One-way transaction latency, ns.
PCIE_LATENCY_NS = 900.0


class PcieLink:
    """One PCIe slot's link, with byte/energy accounting."""

    def __init__(self, sim: Simulator,
                 bandwidth: float = PCIE_BANDWIDTH,
                 latency_ns: float = PCIE_LATENCY_NS,
                 energy: EnergyAccount | None = None,
                 name: str = "pcie") -> None:
        self.sim = sim
        self.name = name
        self.channel = Channel(sim, bandwidth, latency_ns, name=name)
        self.energy = energy
        self.transfers = 0
        metrics = current_metrics()
        if metrics.enabled:
            self._m_bytes = metrics.counter(
                f"{metrics.component_prefix(f'host.{name}')}.bytes")
        else:
            self._m_bytes = None

    def transfer(self, size: int,
                 request_id: int | None = None) -> typing.Generator:
        """Process body: move ``size`` bytes across the link.

        ``request_id`` tags the emitted span with the memory request the
        transfer serves, so latency attribution can charge PCIe time to
        that request.
        """
        start = self.sim.now
        yield self.sim.process(self.channel.transfer(size))
        self.transfers += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            if request_id is not None:
                tracer.emit("transfer", self.name, start, self.sim.now,
                            bytes=size, req=request_id)
            else:
                tracer.emit("transfer", self.name, start, self.sim.now,
                            bytes=size)
        if self._m_bytes is not None:
            self._m_bytes.add(size)
        if self.energy is not None:
            self.energy.charge_bytes(
                "pcie", self.energy.model.pcie_pj_per_byte, size)
            self.energy.charge("pcie", self.energy.model.pcie_request_nj)

    @property
    def bytes_transferred(self) -> float:
        """Total payload bytes moved over this link."""
        return self.channel.bytes_transferred
