"""Static and dynamic invariant checking for the DRAM-less reproduction.

Three pillars, each usable on its own:

* :mod:`repro.analysis.lint` — an AST lint pass with simulator-specific
  rules (``SIM001``–``SIM005``) that catch the cheap-to-ship,
  expensive-to-debug bug classes of a hand-rolled discrete-event
  kernel: nondeterminism, illegal yields, negative latencies, shared
  mutable defaults, and unguarded cross-``yield`` state mutation.
* :mod:`repro.analysis.conformance` — an explicit state machine for the
  LPDDR2-NVM three-phase addressing protocol (pre-active → activate →
  read/write) that validates controller command sequences, including
  the legality of RAB/RDB phase skips.  Works offline over recorded
  traces and as an opt-in runtime assertion layer inside
  :mod:`repro.controller`.
* :mod:`repro.analysis.determinism` — a harness that runs a workload
  twice and diffs the kernel's event traces, also exposed as the
  ``@pytest.mark.determinism`` marker via
  :mod:`repro.analysis.pytest_plugin`.

Command line: ``python -m repro.analysis [paths ...]`` lints a source
tree, ``python -m repro.analysis --trace FILE`` replays a recorded
command trace through the conformance checker.
"""

from repro.analysis.conformance import (
    Command,
    CommandRecord,
    ProtocolChecker,
    ProtocolViolationError,
    Violation,
    check_trace,
    load_trace,
    save_trace,
)
from repro.analysis.determinism import (
    DeterminismError,
    assert_deterministic,
    capture_trace,
    diff_traces,
    trace_of,
)
from repro.analysis.lint import LintViolation, lint_file, lint_paths, lint_source

__all__ = [
    "Command",
    "CommandRecord",
    "DeterminismError",
    "LintViolation",
    "ProtocolChecker",
    "ProtocolViolationError",
    "Violation",
    "assert_deterministic",
    "capture_trace",
    "check_trace",
    "diff_traces",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_trace",
    "save_trace",
    "trace_of",
]
