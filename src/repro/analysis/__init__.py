"""Static and dynamic invariant checking for the DRAM-less reproduction.

Four pillars, each usable on its own:

* :mod:`repro.analysis.lint` — an AST lint pass with simulator-specific
  rules (``SIM001``–``SIM007``) that catch the cheap-to-ship,
  expensive-to-debug bug classes of a hand-rolled discrete-event
  kernel: nondeterminism, illegal yields, negative latencies, shared
  mutable defaults, and unguarded cross-``yield`` / same-timestamp
  state mutation (including interprocedural races through helper
  methods).
* :mod:`repro.analysis.conformance` — an explicit state machine for the
  LPDDR2-NVM three-phase addressing protocol (pre-active → activate →
  read/write) that validates controller command sequences, including
  the legality of RAB/RDB phase skips.  Works offline over recorded
  traces and as an opt-in runtime assertion layer inside
  :mod:`repro.controller`.
* :mod:`repro.analysis.determinism` — a harness that runs a workload
  twice and diffs the kernel's event traces, also exposed as the
  ``@pytest.mark.determinism`` marker via
  :mod:`repro.analysis.pytest_plugin`.
* :mod:`repro.analysis.racecheck` — a dynamic happens-before sanitizer
  for same-timestamp races (W/W and R/W conflicts whose outcome the
  kernel tie-break order decides) and the tie-break shuffle oracle
  that certifies workloads as tie-break independent, stamping the
  certificate into BENCH provenance.

Command line: ``python -m repro.analysis [paths ...]`` lints a source
tree (``--format github``/``sarif`` for CI annotation), ``--trace
FILE`` replays a recorded command trace through the conformance
checker, and ``--shuffle EXPERIMENT[,...]`` runs the shuffle oracle.
"""

from repro.analysis.conformance import (
    Command,
    CommandRecord,
    ProtocolChecker,
    ProtocolViolationError,
    Violation,
    check_trace,
    load_trace,
    save_trace,
)
from repro.analysis.determinism import (
    DeterminismError,
    assert_deterministic,
    capture_trace,
    diff_traces,
    trace_of,
)
from repro.analysis.lint import LintViolation, lint_file, lint_paths, lint_source
from repro.analysis.racecheck import (
    Access,
    AccessSite,
    HbEdge,
    RaceReport,
    RaceSanitizer,
    TieBreakCertificate,
    TieBreakMismatch,
    canonical_fingerprint,
    certify_tiebreak_independence,
    format_races,
    sanitize,
)

__all__ = [
    "Access",
    "AccessSite",
    "Command",
    "CommandRecord",
    "DeterminismError",
    "HbEdge",
    "LintViolation",
    "ProtocolChecker",
    "ProtocolViolationError",
    "RaceReport",
    "RaceSanitizer",
    "TieBreakCertificate",
    "TieBreakMismatch",
    "Violation",
    "assert_deterministic",
    "canonical_fingerprint",
    "capture_trace",
    "certify_tiebreak_independence",
    "check_trace",
    "diff_traces",
    "format_races",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_trace",
    "sanitize",
    "save_trace",
    "trace_of",
]
