"""AST lint pass with simulator-specific rules.

The discrete-event kernel in :mod:`repro.sim` gives device models a lot
of rope: any generator can become a process, any float can become a
latency, and any shared attribute can be mutated between two ``yield``
points.  These rules mechanically check the conventions the codebase
relies on:

``SIM001``
    No wall-clock or ambient randomness inside device models.
    Importing ``time`` or ``datetime``, or calling module-level
    ``random`` functions (``random.random()``, ``random.shuffle()``,
    ...) makes simulations irreproducible.  Seeded generator instances
    (``random.Random(seed)``) are the sanctioned escape hatch.

``SIM002``
    Process generators may only yield :class:`~repro.sim.event.Event`
    subclasses.  A generator counts as a process body when any of its
    yields is a kernel event-factory call (``sim.timeout(...)``,
    ``sim.process(...)``, ``resource.request()``, ...).  In such a
    generator, yields of literals, arithmetic, comparisons, or bare
    ``yield`` are certain ``TypeError``\\ s at run time — the kernel
    rejects non-Event yields — so they are flagged statically.  Plain
    data generators (``yield row, offset, size``) are exempt.

``SIM003``
    Negative or non-numeric latencies passed to ``timeout()`` /
    ``_schedule()``.  A negative delay would travel backwards in time;
    a string or ``None`` is a unit error caught only deep in the heap.

``SIM004``
    Mutable default arguments (literals or ``list()`` / ``dict()`` /
    ``set()`` / ``bytearray()`` / ``collections.deque()`` calls).
    Defaults are evaluated once; device models sharing one hidden list
    across instances is a classic aliasing bug.

``SIM005``
    Heuristic race detector for DES processes: a generator that reads
    ``self.<attr>`` into a local, yields (other processes run), and
    then writes that stale local back into the same ``self.<attr>``
    without having acquired a :class:`~repro.sim.resource.Resource`
    (no ``.request()``/``.use()`` in the function) loses concurrent
    updates.  Mutating ``global`` state from a process generator is
    flagged unconditionally.  Atomic read-modify-writes
    (``self.count += 1``) never span a yield and are exempt.

    The check is interprocedural within a class: a snapshot taken
    through a helper (``x = self._load()`` where ``_load`` reads
    ``self.level``) and a write-back through a helper
    (``self._store(x)`` where ``_store`` assigns ``self.level``) are
    traced through non-generator method calls, as are Resource
    acquisitions performed inside helpers.

``SIM006``
    Unguarded shared-write family: two (or more) process-generator
    methods of one class plainly assign the same ``self.<attr>`` and
    none of them — directly or through a helper — acquires a Resource.
    When both processes run at the same simulated timestamp, the
    kernel's tie-break order decides the final value.  Augmented
    assignments (``self.n += 1``) are exempt: they are atomic within a
    task and accumulate commutatively.

``SIM007``
    Same-instant fan-out: a loop (or comprehension) with no
    intervening ``yield`` spawning ``sim.process(self.<m>(...))``
    where ``<m>`` is a generator method that plainly writes shared
    attributes without acquiring a Resource.  Every spawned process
    bootstraps at the *same* simulated instant, so their first
    segments race on the tie-break order.  Yielding inside the loop
    (staggered spawns) or guarding the writes exempts it.

A trailing ``# noqa: SIMxxx`` comment suppresses a rule on that line.
The dynamic counterpart to SIM005–SIM007 is
:mod:`repro.analysis.racecheck`, which observes actual kernel runs.
"""

from __future__ import annotations

import ast
import dataclasses
import re
import typing
from pathlib import Path

#: Modules whose mere import into simulation code breaks determinism
#: or reproducibility (wall clock, host entropy).
_WALLCLOCK_MODULES = frozenset({"time", "datetime"})

#: The one attribute of :mod:`random` device models may touch: seeded
#: generator construction.
_ALLOWED_RANDOM_ATTRS = frozenset({"Random"})

#: Constructor calls that produce a fresh mutable object — evaluated
#: once when used as a default argument.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
_MUTABLE_QUALIFIED_CALLS = frozenset({"deque", "defaultdict", "OrderedDict"})

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclasses.dataclass(frozen=True)
class LintViolation:
    """One rule hit at one source location."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _noqa_codes(source_line: str) -> typing.FrozenSet[str] | None:
    """Codes suppressed on this line; empty frozenset = suppress all."""
    match = _NOQA_RE.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(code.strip().upper() for code in codes.split(","))


class _Collector:
    """Accumulates violations, honouring per-line ``# noqa`` comments."""

    def __init__(self, path: str, source_lines: typing.Sequence[str]) -> None:
        self.path = path
        self._lines = source_lines
        self.violations: typing.List[LintViolation] = []

    def add(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self._lines):
            suppressed = _noqa_codes(self._lines[line - 1])
            if suppressed is not None and (
                    not suppressed or code in suppressed):
                return
        self.violations.append(LintViolation(self.path, line, code, message))


def _own_nodes(func: ast.AST) -> typing.Iterator[ast.AST]:
    """Nodes of ``func`` excluding nested function/lambda bodies."""
    stack: typing.List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    """Does this function definition contain a yield of its own?"""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _own_nodes(func))


# ----------------------------------------------------------------------
# Individual rules
# ----------------------------------------------------------------------
def _check_sim001(tree: ast.Module, out: _Collector) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _WALLCLOCK_MODULES:
                    out.add(node, "SIM001",
                            f"import of wall-clock module {root!r} breaks "
                            "simulation determinism")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _WALLCLOCK_MODULES:
                out.add(node, "SIM001",
                        f"import from wall-clock module {root!r} breaks "
                        "simulation determinism")
            elif root == "random":
                names = ", ".join(alias.name for alias in node.names)
                out.add(node, "SIM001",
                        f"'from random import {names}' uses the shared "
                        "unseeded generator; construct random.Random(seed)")
        elif isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr not in _ALLOWED_RANDOM_ATTRS):
                out.add(node, "SIM001",
                        f"random.{node.attr} draws from the shared unseeded "
                        "generator; use a seeded random.Random instance")


#: Kernel factory methods whose results are Events; a generator that
#: yields one of these calls is (heuristically) a process body.
_EVENT_FACTORIES = frozenset({
    "timeout", "process", "all_of", "any_of", "event", "request",
    "put", "get",
})


def _is_process_generator(func: ast.AST) -> bool:
    for node in _own_nodes(func):
        if not isinstance(node, ast.Yield) or node.value is None:
            continue
        value = node.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _EVENT_FACTORIES):
            return True
    return False


def _check_sim002(func: ast.AST, out: _Collector) -> None:
    if not _is_process_generator(func):
        return
    for node in _own_nodes(func):
        if not isinstance(node, ast.Yield):
            continue
        value = node.value
        if value is None:
            out.add(node, "SIM002",
                    "bare 'yield' sends None to the kernel; processes may "
                    "only yield Event instances")
        elif isinstance(value, (ast.Constant, ast.List, ast.Tuple, ast.Dict,
                                ast.Set, ast.JoinedStr, ast.BinOp,
                                ast.Compare, ast.BoolOp)):
            out.add(node, "SIM002",
                    f"yield of {type(value).__name__} can never be an "
                    "Event; processes may only yield Event instances")


def _negative_or_nonnumeric(arg: ast.expr) -> str | None:
    if isinstance(arg, ast.UnaryOp) and isinstance(arg.op, ast.USub):
        operand = arg.operand
        if (isinstance(operand, ast.Constant)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)):
            return f"negative latency -{operand.value!r}"
    if isinstance(arg, ast.Constant):
        value = arg.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"non-numeric latency {value!r}"
        if value != value:  # NaN literal via float("nan") is a Call, but
            return f"NaN latency {value!r}"  # pragma: no cover - defensive
    return None


def _check_sim003(tree: ast.Module, out: _Collector) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if not isinstance(callee, ast.Attribute):
            continue
        if callee.attr not in {"timeout", "_schedule"}:
            continue
        if not node.args:
            continue
        problem = _negative_or_nonnumeric(node.args[0])
        if problem is not None:
            out.add(node, "SIM003",
                    f"{problem} passed to {callee.attr}(); simulated delays "
                    "are non-negative nanoseconds")


def _is_mutable_default(default: ast.expr) -> bool:
    if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                            ast.DictComp, ast.SetComp)):
        return True
    if isinstance(default, ast.Call):
        callee = default.func
        if isinstance(callee, ast.Name) and callee.id in _MUTABLE_CALLS:
            return True
        if (isinstance(callee, ast.Attribute)
                and callee.attr in _MUTABLE_QUALIFIED_CALLS):
            return True
    return False


def _check_sim004(func: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef],
                  out: _Collector) -> None:
    defaults = list(func.args.defaults) + [
        d for d in func.args.kw_defaults if d is not None]
    for default in defaults:
        if _is_mutable_default(default):
            out.add(default, "SIM004",
                    f"mutable default argument in {func.name}(); defaults "
                    "are evaluated once and shared across calls")


def _self_attr_target(node: ast.expr) -> str | None:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _attr_reads(expr: ast.expr) -> typing.Set[str]:
    """``self.<attr>`` names read anywhere inside ``expr``."""
    reads = set()
    for node in ast.walk(expr):
        attr = _self_attr_target(node) if isinstance(node, ast.expr) else None
        if attr is not None and isinstance(node.ctx, ast.Load):
            reads.add(attr)
    return reads


def _name_reads(expr: ast.expr) -> typing.Set[str]:
    """Local names read anywhere inside ``expr``."""
    return {node.id for node in ast.walk(expr)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)}


@dataclasses.dataclass
class _MethodSummary:
    """Effect summary of one class method for interprocedural rules.

    ``reads``/``plain_writes``/``aug_writes`` are ``self.<attr>`` names;
    after :func:`_propagate_summaries`, effects of *non-generator*
    helper methods called as ``self.<helper>(...)`` are folded in
    (their bodies run inline in the caller's task).  Generator callees
    are excluded — calling one only builds a generator object; its body
    runs as a separate process.
    """

    name: str
    node: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]
    is_generator: bool
    reads: typing.Set[str] = dataclasses.field(default_factory=set)
    plain_writes: typing.Set[str] = dataclasses.field(default_factory=set)
    aug_writes: typing.Set[str] = dataclasses.field(default_factory=set)
    acquires: bool = False
    self_calls: typing.Set[str] = dataclasses.field(default_factory=set)
    #: Methods invoked as ``yield from self.<m>(...)`` — sub-generators
    #: that run inline in this method's process, not concurrent bodies.
    delegated_calls: typing.Set[str] = dataclasses.field(
        default_factory=set)


def _summarize_method(func: typing.Union[ast.FunctionDef,
                                         ast.AsyncFunctionDef]
                      ) -> _MethodSummary:
    summary = _MethodSummary(func.name, func, _is_generator(func))
    for node in _own_nodes(func):
        if isinstance(node, ast.Attribute):
            attr = _self_attr_target(node)
            if attr is not None:
                if isinstance(node.ctx, ast.Load):
                    summary.reads.add(attr)
                elif isinstance(node.ctx, ast.Store):
                    summary.plain_writes.add(attr)
        elif isinstance(node, ast.AugAssign):
            attr = _self_attr_target(node.target)
            if attr is not None:
                summary.aug_writes.add(attr)
                summary.reads.add(attr)
        elif isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Attribute):
                if callee.attr in {"request", "use"}:
                    summary.acquires = True
                if (isinstance(callee.value, ast.Name)
                        and callee.value.id == "self"):
                    summary.self_calls.add(callee.attr)
        elif isinstance(node, ast.YieldFrom):
            value = node.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id == "self"):
                summary.delegated_calls.add(value.func.attr)
    # ast.Store on an Attribute covers both plain assigns and AugAssign
    # targets; subtract the augmented ones so the two sets are disjoint.
    summary.plain_writes -= summary.aug_writes
    return summary


def _summarize_class(cls: ast.ClassDef
                     ) -> typing.Dict[str, _MethodSummary]:
    """Fixpoint effect summaries for every directly-defined method."""
    summaries = {
        node.name: _summarize_method(node)
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    changed = True
    while changed:
        changed = False
        for summary in summaries.values():
            for callee_name in summary.self_calls | summary.delegated_calls:
                callee = summaries.get(callee_name)
                if callee is None:
                    continue
                # Non-generator helpers run inline; generator callees
                # fold only when driven via ``yield from`` (delegation
                # also runs inline, in the caller's process).
                if callee.is_generator and (
                        callee_name not in summary.delegated_calls):
                    continue
                before = (len(summary.reads), len(summary.plain_writes),
                          len(summary.aug_writes), summary.acquires)
                summary.reads |= callee.reads
                summary.plain_writes |= callee.plain_writes
                summary.aug_writes |= callee.aug_writes
                summary.acquires = summary.acquires or callee.acquires
                after = (len(summary.reads), len(summary.plain_writes),
                         len(summary.aug_writes), summary.acquires)
                changed = changed or before != after
    return summaries


def _check_sim005(func: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef],
                  out: _Collector,
                  summaries: typing.Optional[
                      typing.Dict[str, _MethodSummary]] = None) -> None:
    if not _is_generator(func):
        return
    own = list(_own_nodes(func))
    helpers = summaries or {}

    def _helper(call: ast.Call) -> _MethodSummary | None:
        callee = call.func
        if (isinstance(callee, ast.Attribute)
                and isinstance(callee.value, ast.Name)
                and callee.value.id == "self"):
            summary = helpers.get(callee.attr)
            if summary is not None and not summary.is_generator:
                return summary
        return None

    # Functions that acquire a Resource slot are presumed to hold it
    # across their critical section; the kernel serializes the holders.
    # Acquisition through a non-generator helper counts.
    for node in own:
        if not isinstance(node, ast.Call):
            continue
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in {"request", "use"}):
            return
        helper = _helper(node)
        if helper is not None and helper.acquires:
            return
    for node in own:
        if isinstance(node, ast.Global):
            out.add(node, "SIM005",
                    "process generator mutates global state; interleaved "
                    "processes race on it at every yield point")
    yield_lines = sorted(node.lineno for node in own
                         if isinstance(node, (ast.Yield, ast.YieldFrom)))
    if not yield_lines:
        return
    # local name -> {shared attr it snapshots: line of the snapshot}
    snapshots: typing.Dict[str, typing.Dict[str, int]] = {}
    writes: typing.List[ast.Assign] = []
    for node in sorted(
            (n for n in own if isinstance(n, ast.Assign)),
            key=lambda n: n.lineno):
        targets = [t for t in node.targets if isinstance(t, ast.Name)]
        attrs_read = set(_attr_reads(node.value))
        # Interprocedural snapshot: x = self._load() reads whatever the
        # helper reads.
        for call in ast.walk(node.value):
            if isinstance(call, ast.Call):
                helper = _helper(call)
                if helper is not None:
                    attrs_read |= helper.reads
        for target in targets:
            # Re-binding a local replaces its previous snapshot set.
            snapshots[target.id] = {
                attr: node.lineno for attr in sorted(attrs_read)}
        if any(_self_attr_target(t) is not None for t in node.targets):
            writes.append(node)

    def _report(write_node: ast.AST, written: typing.Set[str],
                value: ast.expr, via: str) -> None:
        for local in sorted(_name_reads(value)):
            for attr, read_line in snapshots.get(local, {}).items():
                if attr not in written:
                    continue
                if read_line >= write_node.lineno:
                    continue
                if not any(read_line < y < write_node.lineno
                           for y in yield_lines):
                    continue
                out.add(write_node, "SIM005",
                        f"self.{attr} was read into {local!r} at line "
                        f"{read_line} and written back{via} after a "
                        "yield; other processes ran in between — hold a "
                        "repro.sim Resource around the read-modify-write")

    for write in writes:
        written_attrs = {
            attr for attr in (_self_attr_target(t) for t in write.targets)
            if attr is not None}
        _report(write, written_attrs, write.value, "")
    # Interprocedural write-back: self._store(stale) writes whatever the
    # helper plainly assigns.
    for node in own:
        if not isinstance(node, ast.Call) or not node.args:
            continue
        helper = _helper(node)
        if helper is None or not helper.plain_writes:
            continue
        for arg in node.args:
            _report(node, set(helper.plain_writes), arg,
                    f" through self.{helper.name}()")


def _check_sim006(cls: ast.ClassDef,
                  summaries: typing.Dict[str, _MethodSummary],
                  out: _Collector) -> None:
    """Unguarded same-attribute write family across process methods."""
    delegated: typing.Set[str] = set()
    for summary in summaries.values():
        delegated |= summary.delegated_calls
    writers: typing.Dict[str, typing.List[_MethodSummary]] = {}
    for summary in summaries.values():
        if not summary.is_generator:
            continue
        if summary.name in delegated:
            # Driven via ``yield from`` — a sub-generator of its
            # caller's process, not an independent concurrent body.
            continue
        if not _is_process_generator(summary.node):
            continue
        for attr in summary.plain_writes:
            writers.setdefault(attr, []).append(summary)
    for attr in sorted(writers):
        family = writers[attr]
        if len(family) < 2:
            continue
        if any(summary.acquires for summary in family):
            continue
        names = ", ".join(sorted(summary.name for summary in family))
        first = min(family, key=lambda summary: summary.node.lineno)
        out.add(first.node, "SIM006",
                f"process methods {names} of {cls.name} all assign "
                f"self.{attr} without a Resource guard; at equal "
                "simulated timestamps the kernel tie-break order decides "
                "the final value")


def _check_sim007(func: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef],
                  summaries: typing.Dict[str, _MethodSummary],
                  out: _Collector) -> None:
    """Same-instant fan-out onto racy process bodies."""

    def _spawned_methods(call: ast.Call) -> typing.Iterator[str]:
        # <anything>.process(self.<m>(...)) — the kernel bootstraps the
        # new process at the current instant.
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr == "process"):
            return
        for arg in call.args:
            if (isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Attribute)
                    and isinstance(arg.func.value, ast.Name)
                    and arg.func.value.id == "self"):
                yield arg.func.attr

    seen: typing.Set[typing.Tuple[int, str]] = set()

    def _flag(node: ast.Call, method_name: str) -> None:
        target = summaries.get(method_name)
        if (target is None or not target.is_generator
                or not target.plain_writes or target.acquires):
            return
        key = (id(node), method_name)
        if key in seen:
            return  # nested no-yield loops walk the same call twice
        seen.add(key)
        attrs = ", ".join(
            f"self.{attr}" for attr in sorted(target.plain_writes))
        out.add(node, "SIM007",
                f"loop spawns {method_name}() processes at the same "
                f"simulated instant; their unguarded writes to {attrs} "
                "race on the tie-break order — yield between spawns or "
                "guard the writes with a Resource")

    def _scan(nodes: typing.Iterable[ast.AST]) -> None:
        for node in nodes:
            if isinstance(node, ast.Call):
                for method_name in _spawned_methods(node):
                    _flag(node, method_name)

    for loop in _own_nodes(func):
        if isinstance(loop, (ast.For, ast.While)):
            if any(isinstance(node, (ast.Yield, ast.YieldFrom))
                   for stmt in loop.body for node in ast.walk(stmt)):
                continue  # staggered spawns: each iteration waits
            _scan(node for stmt in loop.body for node in ast.walk(stmt))
        elif isinstance(loop, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp)):
            # yield is a syntax error inside a comprehension, so every
            # comprehension spawn is same-instant by construction.
            _scan(ast.walk(loop.elt))


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>"
                ) -> typing.List[LintViolation]:
    """Lint one module's source text; returns violations in line order."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 0
        return [LintViolation(path, line, "SIM000",
                              f"syntax error: {exc.msg}")]
    out = _Collector(path, source.splitlines())
    _check_sim001(tree, out)
    _check_sim003(tree, out)
    # Methods get class-level effect summaries (interprocedural SIM005,
    # SIM006/SIM007); free functions are checked in isolation.
    method_summaries: typing.Dict[int, typing.Dict[str, _MethodSummary]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            summaries = _summarize_class(node)
            _check_sim006(node, summaries, out)
            for summary in summaries.values():
                method_summaries[id(summary.node)] = summaries
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_sim004(node, out)
            if _is_generator(node):
                summaries = method_summaries.get(id(node), {})
                _check_sim002(node, out)
                _check_sim005(node, out, summaries or None)
                _check_sim007(node, summaries, out)
    return sorted(out.violations, key=lambda v: (v.line, v.code))


def lint_file(path: typing.Union[str, Path]) -> typing.List[LintViolation]:
    """Lint one file on disk."""
    file_path = Path(path)
    return lint_source(file_path.read_text(encoding="utf-8"), str(file_path))


def lint_paths(paths: typing.Iterable[typing.Union[str, Path]]
               ) -> typing.List[LintViolation]:
    """Lint files and directory trees (``*.py``, recursively)."""
    violations: typing.List[LintViolation] = []
    for path in paths:
        target = Path(path)
        if target.is_dir():
            for file_path in sorted(target.rglob("*.py")):
                violations.extend(lint_file(file_path))
        else:
            violations.extend(lint_file(target))
    return violations
