"""AST lint pass with simulator-specific rules.

The discrete-event kernel in :mod:`repro.sim` gives device models a lot
of rope: any generator can become a process, any float can become a
latency, and any shared attribute can be mutated between two ``yield``
points.  These rules mechanically check the conventions the codebase
relies on:

``SIM001``
    No wall-clock or ambient randomness inside device models.
    Importing ``time`` or ``datetime``, or calling module-level
    ``random`` functions (``random.random()``, ``random.shuffle()``,
    ...) makes simulations irreproducible.  Seeded generator instances
    (``random.Random(seed)``) are the sanctioned escape hatch.

``SIM002``
    Process generators may only yield :class:`~repro.sim.event.Event`
    subclasses.  A generator counts as a process body when any of its
    yields is a kernel event-factory call (``sim.timeout(...)``,
    ``sim.process(...)``, ``resource.request()``, ...).  In such a
    generator, yields of literals, arithmetic, comparisons, or bare
    ``yield`` are certain ``TypeError``\\ s at run time — the kernel
    rejects non-Event yields — so they are flagged statically.  Plain
    data generators (``yield row, offset, size``) are exempt.

``SIM003``
    Negative or non-numeric latencies passed to ``timeout()`` /
    ``_schedule()``.  A negative delay would travel backwards in time;
    a string or ``None`` is a unit error caught only deep in the heap.

``SIM004``
    Mutable default arguments (literals or ``list()`` / ``dict()`` /
    ``set()`` / ``bytearray()`` / ``collections.deque()`` calls).
    Defaults are evaluated once; device models sharing one hidden list
    across instances is a classic aliasing bug.

``SIM005``
    Heuristic race detector for DES processes: a generator that reads
    ``self.<attr>`` into a local, yields (other processes run), and
    then writes that stale local back into the same ``self.<attr>``
    without having acquired a :class:`~repro.sim.resource.Resource`
    (no ``.request()``/``.use()`` in the function) loses concurrent
    updates.  Mutating ``global`` state from a process generator is
    flagged unconditionally.  Atomic read-modify-writes
    (``self.count += 1``) never span a yield and are exempt.

A trailing ``# noqa: SIMxxx`` comment suppresses a rule on that line.
"""

from __future__ import annotations

import ast
import dataclasses
import re
import typing
from pathlib import Path

#: Modules whose mere import into simulation code breaks determinism
#: or reproducibility (wall clock, host entropy).
_WALLCLOCK_MODULES = frozenset({"time", "datetime"})

#: The one attribute of :mod:`random` device models may touch: seeded
#: generator construction.
_ALLOWED_RANDOM_ATTRS = frozenset({"Random"})

#: Constructor calls that produce a fresh mutable object — evaluated
#: once when used as a default argument.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
_MUTABLE_QUALIFIED_CALLS = frozenset({"deque", "defaultdict", "OrderedDict"})

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclasses.dataclass(frozen=True)
class LintViolation:
    """One rule hit at one source location."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _noqa_codes(source_line: str) -> typing.FrozenSet[str] | None:
    """Codes suppressed on this line; empty frozenset = suppress all."""
    match = _NOQA_RE.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(code.strip().upper() for code in codes.split(","))


class _Collector:
    """Accumulates violations, honouring per-line ``# noqa`` comments."""

    def __init__(self, path: str, source_lines: typing.Sequence[str]) -> None:
        self.path = path
        self._lines = source_lines
        self.violations: typing.List[LintViolation] = []

    def add(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self._lines):
            suppressed = _noqa_codes(self._lines[line - 1])
            if suppressed is not None and (
                    not suppressed or code in suppressed):
                return
        self.violations.append(LintViolation(self.path, line, code, message))


def _own_nodes(func: ast.AST) -> typing.Iterator[ast.AST]:
    """Nodes of ``func`` excluding nested function/lambda bodies."""
    stack: typing.List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    """Does this function definition contain a yield of its own?"""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _own_nodes(func))


# ----------------------------------------------------------------------
# Individual rules
# ----------------------------------------------------------------------
def _check_sim001(tree: ast.Module, out: _Collector) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _WALLCLOCK_MODULES:
                    out.add(node, "SIM001",
                            f"import of wall-clock module {root!r} breaks "
                            "simulation determinism")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _WALLCLOCK_MODULES:
                out.add(node, "SIM001",
                        f"import from wall-clock module {root!r} breaks "
                        "simulation determinism")
            elif root == "random":
                names = ", ".join(alias.name for alias in node.names)
                out.add(node, "SIM001",
                        f"'from random import {names}' uses the shared "
                        "unseeded generator; construct random.Random(seed)")
        elif isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr not in _ALLOWED_RANDOM_ATTRS):
                out.add(node, "SIM001",
                        f"random.{node.attr} draws from the shared unseeded "
                        "generator; use a seeded random.Random instance")


#: Kernel factory methods whose results are Events; a generator that
#: yields one of these calls is (heuristically) a process body.
_EVENT_FACTORIES = frozenset({
    "timeout", "process", "all_of", "any_of", "event", "request",
    "put", "get",
})


def _is_process_generator(func: ast.AST) -> bool:
    for node in _own_nodes(func):
        if not isinstance(node, ast.Yield) or node.value is None:
            continue
        value = node.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _EVENT_FACTORIES):
            return True
    return False


def _check_sim002(func: ast.AST, out: _Collector) -> None:
    if not _is_process_generator(func):
        return
    for node in _own_nodes(func):
        if not isinstance(node, ast.Yield):
            continue
        value = node.value
        if value is None:
            out.add(node, "SIM002",
                    "bare 'yield' sends None to the kernel; processes may "
                    "only yield Event instances")
        elif isinstance(value, (ast.Constant, ast.List, ast.Tuple, ast.Dict,
                                ast.Set, ast.JoinedStr, ast.BinOp,
                                ast.Compare, ast.BoolOp)):
            out.add(node, "SIM002",
                    f"yield of {type(value).__name__} can never be an "
                    "Event; processes may only yield Event instances")


def _negative_or_nonnumeric(arg: ast.expr) -> str | None:
    if isinstance(arg, ast.UnaryOp) and isinstance(arg.op, ast.USub):
        operand = arg.operand
        if (isinstance(operand, ast.Constant)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)):
            return f"negative latency -{operand.value!r}"
    if isinstance(arg, ast.Constant):
        value = arg.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"non-numeric latency {value!r}"
        if value != value:  # NaN literal via float("nan") is a Call, but
            return f"NaN latency {value!r}"  # pragma: no cover - defensive
    return None


def _check_sim003(tree: ast.Module, out: _Collector) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if not isinstance(callee, ast.Attribute):
            continue
        if callee.attr not in {"timeout", "_schedule"}:
            continue
        if not node.args:
            continue
        problem = _negative_or_nonnumeric(node.args[0])
        if problem is not None:
            out.add(node, "SIM003",
                    f"{problem} passed to {callee.attr}(); simulated delays "
                    "are non-negative nanoseconds")


def _is_mutable_default(default: ast.expr) -> bool:
    if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                            ast.DictComp, ast.SetComp)):
        return True
    if isinstance(default, ast.Call):
        callee = default.func
        if isinstance(callee, ast.Name) and callee.id in _MUTABLE_CALLS:
            return True
        if (isinstance(callee, ast.Attribute)
                and callee.attr in _MUTABLE_QUALIFIED_CALLS):
            return True
    return False


def _check_sim004(func: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef],
                  out: _Collector) -> None:
    defaults = list(func.args.defaults) + [
        d for d in func.args.kw_defaults if d is not None]
    for default in defaults:
        if _is_mutable_default(default):
            out.add(default, "SIM004",
                    f"mutable default argument in {func.name}(); defaults "
                    "are evaluated once and shared across calls")


def _self_attr_target(node: ast.expr) -> str | None:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _attr_reads(expr: ast.expr) -> typing.Set[str]:
    """``self.<attr>`` names read anywhere inside ``expr``."""
    reads = set()
    for node in ast.walk(expr):
        attr = _self_attr_target(node) if isinstance(node, ast.expr) else None
        if attr is not None and isinstance(node.ctx, ast.Load):
            reads.add(attr)
    return reads


def _name_reads(expr: ast.expr) -> typing.Set[str]:
    """Local names read anywhere inside ``expr``."""
    return {node.id for node in ast.walk(expr)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)}


def _check_sim005(func: typing.Union[ast.FunctionDef, ast.AsyncFunctionDef],
                  out: _Collector) -> None:
    if not _is_generator(func):
        return
    own = list(_own_nodes(func))
    # Functions that acquire a Resource slot are presumed to hold it
    # across their critical section; the kernel serializes the holders.
    for node in own:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"request", "use"}):
            return
    for node in own:
        if isinstance(node, ast.Global):
            out.add(node, "SIM005",
                    "process generator mutates global state; interleaved "
                    "processes race on it at every yield point")
    yield_lines = sorted(node.lineno for node in own
                         if isinstance(node, (ast.Yield, ast.YieldFrom)))
    if not yield_lines:
        return
    # local name -> (shared attr it snapshots, line of the snapshot)
    snapshots: typing.Dict[str, typing.Tuple[str, int]] = {}
    writes: typing.List[ast.Assign] = []
    for node in sorted(
            (n for n in own if isinstance(n, ast.Assign)),
            key=lambda n: n.lineno):
        targets = [t for t in node.targets if isinstance(t, ast.Name)]
        attrs_read = _attr_reads(node.value)
        for target in targets:
            for attr in attrs_read:
                snapshots[target.id] = (attr, node.lineno)
        if any(_self_attr_target(t) is not None for t in node.targets):
            writes.append(node)
    for write in writes:
        written = {_self_attr_target(t) for t in write.targets}
        for local in _name_reads(write.value):
            snapshot = snapshots.get(local)
            if snapshot is None:
                continue
            attr, read_line = snapshot
            if attr not in written:
                continue
            if read_line >= write.lineno:
                continue
            if any(read_line < y < write.lineno for y in yield_lines):
                out.add(write, "SIM005",
                        f"self.{attr} was read into {local!r} at line "
                        f"{read_line} and written back after a yield; "
                        "other processes ran in between — hold a "
                        "repro.sim Resource around the read-modify-write")


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>"
                ) -> typing.List[LintViolation]:
    """Lint one module's source text; returns violations in line order."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 0
        return [LintViolation(path, line, "SIM000",
                              f"syntax error: {exc.msg}")]
    out = _Collector(path, source.splitlines())
    _check_sim001(tree, out)
    _check_sim003(tree, out)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_sim004(node, out)
            if _is_generator(node):
                _check_sim002(node, out)
                _check_sim005(node, out)
    return sorted(out.violations, key=lambda v: (v.line, v.code))


def lint_file(path: typing.Union[str, Path]) -> typing.List[LintViolation]:
    """Lint one file on disk."""
    file_path = Path(path)
    return lint_source(file_path.read_text(encoding="utf-8"), str(file_path))


def lint_paths(paths: typing.Iterable[typing.Union[str, Path]]
               ) -> typing.List[LintViolation]:
    """Lint files and directory trees (``*.py``, recursively)."""
    violations: typing.List[LintViolation] = []
    for path in paths:
        target = Path(path)
        if target.is_dir():
            for file_path in sorted(target.rglob("*.py")):
                violations.extend(lint_file(file_path))
        else:
            violations.extend(lint_file(target))
    return violations
