"""Command-line front end: ``python -m repro.analysis``.

Four modes:

* ``python -m repro.analysis [PATH ...]`` — run the SIM lint rules over
  files/directories (default: ``src/repro``).  Exits 1 if any
  violation is found.
* ``python -m repro.analysis --trace FILE`` — replay a JSON-lines
  command trace (see :func:`repro.analysis.conformance.save_trace`)
  through the three-phase protocol conformance checker.  Exits 1 if
  the trace is not conformant.
* ``python -m repro.analysis --shuffle EXPERIMENT[,...]`` — run the
  tie-break shuffle oracle over named experiments (quick config): each
  is executed once in FIFO order and ``--runs`` more times with seeded
  same-timestamp permutations; any byte-level divergence of the report
  fails the check.  ``--attest BENCH.json`` stamps the resulting
  ``tiebreak_independent`` certificate into an existing BENCH artifact.
* ``python -m repro.analysis --backend-equivalence EXPERIMENT[,...]`` —
  run named experiments (quick config) once per execution backend and
  byte-diff the canonical report fingerprints; any divergence fails,
  and so does a run where the compiled kernel never engaged.
  ``--format github`` renders a per-cell match table suitable for
  ``$GITHUB_STEP_SUMMARY``.

Lint and conformance support ``--format json``; lint additionally
supports ``--format github`` (workflow error annotations) and
``--format sarif`` (SARIF 2.1.0 for code-scanning upload).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import typing

from repro.analysis.conformance import check_trace, load_trace
from repro.analysis.lint import LintViolation, lint_paths

#: Tool metadata stamped into SARIF output.
_SARIF_TOOL = {
    "name": "repro.analysis",
    "informationUri": "https://example.invalid/repro",
    "rules": [],
}


def _github_annotations(findings: typing.Sequence[LintViolation]) -> str:
    """GitHub workflow-command error annotations, one per finding."""
    lines = [
        f"::error file={f.path},line={f.line},title={f.code}::{f.message}"
        for f in findings
    ]
    lines.append(f"{len(findings)} violation(s)")
    return "\n".join(lines)


def _sarif_document(findings: typing.Sequence[LintViolation]
                    ) -> typing.Dict[str, typing.Any]:
    """Minimal SARIF 2.1.0 log for code-scanning ingestion."""
    rules = sorted({f.code for f in findings})
    driver = dict(_SARIF_TOOL)
    driver["rules"] = [{"id": code} for code in rules]
    results = [
        {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        for f in findings
    ]
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }


def _run_shuffle(subjects: typing.Sequence[str], runs: int, seed: int,
                 attest_path: str | None, output: str) -> int:
    """Shuffle-oracle mode: certify experiments, optionally stamping."""
    # Imported lazily: the lint/conformance paths must not pay for the
    # full experiments stack (engine, devices, workloads).
    from repro.analysis.racecheck import certify_tiebreak_independence
    from repro.experiments import cli as experiments_cli
    from repro.experiments.runner import ExperimentConfig
    from repro.telemetry.bench import stamp_provenance

    unknown = [name for name in subjects
               if name not in experiments_cli.EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(experiments_cli.EXPERIMENTS))
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(known: {known})", file=sys.stderr)
        return 2

    def make_workload(name: str) -> typing.Callable[[], str]:
        def workload() -> str:
            # Same reset the experiments CLI performs between figures:
            # request ids restart so report text is position-independent.
            experiments_cli.reset_request_ids()
            _, figure_fn = experiments_cli.EXPERIMENTS[name]
            config = ExperimentConfig(scale=0.05, seed=7, agents=3,
                                      workloads=("gemver", "doitg"))
            return figure_fn(config)
        return workload

    certificates = []
    for name in subjects:
        certificate = certify_tiebreak_independence(
            make_workload(name), subject=name, runs=runs, seed=seed)
        certificates.append(certificate)
    independent = all(cert.independent for cert in certificates)
    if output == "json":
        print(json.dumps([dataclasses.asdict(cert)
                          for cert in certificates], indent=2))
    else:
        for cert in certificates:
            print(cert.summary())
    if attest_path is not None:
        payload = {cert.subject: cert.to_provenance()
                   for cert in certificates}
        stamp_provenance(attest_path, "tiebreak_independent", payload)
        if output != "json":
            print(f"stamped tiebreak_independent into {attest_path}")
    return 0 if independent else 1


def _run_backend_equivalence(subjects: typing.Sequence[str],
                             output: str) -> int:
    """Backend equivalence gate: compiled must byte-match interpreted.

    Each experiment runs twice under the quick config — once per
    execution backend — and the canonical report fingerprints are
    byte-diffed.  Any divergence fails, and so does a run in which the
    compiled kernel never engaged at all: a gate that only ever
    exercises the fallback path certifies nothing.
    """
    # Lazy imports for the same reason as _run_shuffle: lint and
    # conformance must not pay for the experiments stack.
    import hashlib

    from repro.controller.request import reset_request_ids
    from repro.experiments import cli as experiments_cli
    from repro.experiments.runner import ExperimentConfig
    from repro.sim import (
        backend_decisions,
        clear_backend_decisions,
        use_backend,
    )

    unknown = [name for name in subjects
               if name not in experiments_cli.EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(experiments_cli.EXPERIMENTS))
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(known: {known})", file=sys.stderr)
        return 2

    def run_one(name: str, backend: str) -> typing.Tuple[str, int, int]:
        """(report digest, compiled engagements, fallbacks)."""
        reset_request_ids()
        clear_backend_decisions()
        _, figure_fn = experiments_cli.EXPERIMENTS[name]
        config = ExperimentConfig(scale=0.05, seed=7, agents=3,
                                  workloads=("gemver", "doitg"),
                                  backend=backend)
        with use_backend(backend):
            report = figure_fn(config)
        decisions = backend_decisions()
        engaged = sum(1 for decision in decisions if decision.compiled)
        fallbacks = sum(1 for decision in decisions
                        if decision.requested == "compiled"
                        and not decision.compiled)
        digest = hashlib.sha256(report.encode()).hexdigest()
        return digest, engaged, fallbacks

    rows = []
    all_match = True
    total_engaged = 0
    for name in subjects:
        interpreted_digest, _, _ = run_one(name, "interpreted")
        compiled_digest, engaged, fallbacks = run_one(name, "compiled")
        match = interpreted_digest == compiled_digest
        all_match = all_match and match
        total_engaged += engaged
        rows.append((name, interpreted_digest, compiled_digest, match,
                     engaged, fallbacks))
    passed = all_match and total_engaged > 0
    if output == "json":
        print(json.dumps({
            "pass": passed,
            "compiled_engagements": total_engaged,
            "cells": [
                {"experiment": name, "interpreted_sha256": base,
                 "compiled_sha256": cand, "match": match,
                 "compiled_streams": engaged, "fallbacks": fallbacks}
                for name, base, cand, match, engaged, fallbacks in rows
            ]}, indent=2))
    elif output == "github":
        # Markdown for $GITHUB_STEP_SUMMARY: one row per cell.
        print("## Backend equivalence (compiled vs interpreted)")
        print()
        print("| experiment | interpreted | compiled | match | "
              "compiled streams | fallbacks |")
        print("| --- | --- | --- | --- | --- | --- |")
        for name, base, cand, match, engaged, fallbacks in rows:
            icon = ":white_check_mark:" if match else ":x:"
            print(f"| {name} | `{base[:12]}` | `{cand[:12]}` | {icon} "
                  f"| {engaged} | {fallbacks} |")
        print()
        verdict = ("**PASS**" if passed else
                   "**FAIL**" if not all_match else
                   "**FAIL** (compiled kernel never engaged)")
        print(f"{verdict} — {total_engaged} compiled stream(s) across "
              f"{len(rows)} experiment(s)")
    else:
        for name, base, cand, match, engaged, fallbacks in rows:
            status = "match " if match else "DIVERGE"
            print(f"{status} {name}: interpreted {base[:12]} vs "
                  f"compiled {cand[:12]} ({engaged} compiled "
                  f"stream(s), {fallbacks} fallback(s))")
        if total_engaged == 0:
            print("FAIL: the compiled kernel never engaged — the gate "
                  "exercised only the fallback path")
        print(f"{'PASS' if passed else 'FAIL'}: {len(rows)} "
              f"experiment(s), {total_engaged} compiled stream(s)")
    return 0 if passed else 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator invariant checks: SIM lint rules, "
                    "LPDDR2-NVM protocol conformance, and the "
                    "tie-break shuffle oracle.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="replay a JSON-lines command trace through the "
             "three-phase conformance checker instead of linting")
    parser.add_argument(
        "--shuffle", metavar="EXPERIMENT[,...]", default=None,
        help="certify tie-break independence of named experiments "
             "(quick config) via seeded same-timestamp shuffles")
    parser.add_argument(
        "--backend-equivalence", metavar="EXPERIMENT[,...]", default=None,
        help="run named experiments (quick config) once per execution "
             "backend and byte-diff the report fingerprints; fails on "
             "any divergence or if the compiled kernel never engaged "
             "(--format github renders a step-summary table)")
    parser.add_argument(
        "--runs", type=int, default=5,
        help="shuffled runs per experiment for --shuffle (default: 5)")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base shuffle seed for --shuffle (default: 0)")
    parser.add_argument(
        "--attest", metavar="BENCH.json", default=None,
        help="stamp the --shuffle certificates into an existing "
             "BENCH artifact's provenance")
    parser.add_argument(
        "--format", choices=("text", "json", "github", "sarif"),
        default="text",
        help="output format (github/sarif: lint mode only)")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.shuffle is not None:
        subjects = [name.strip() for name in args.shuffle.split(",")
                    if name.strip()]
        return _run_shuffle(subjects, args.runs, args.seed, args.attest,
                            args.format)

    if args.backend_equivalence is not None:
        subjects = [name.strip()
                    for name in args.backend_equivalence.split(",")
                    if name.strip()]
        return _run_backend_equivalence(subjects, args.format)

    if args.trace is not None:
        violations = check_trace(load_trace(args.trace))
        if args.format == "json":
            payload = [
                {"reason": v.reason, "record": v.record.to_dict()}
                for v in violations
            ]
            print(json.dumps(payload, indent=2))
        else:
            for violation in violations:
                print(violation)
            print(f"{len(violations)} protocol violation(s) in "
                  f"{args.trace}")
        return 1 if violations else 0

    paths = args.paths or ["src/repro"]
    findings = lint_paths(paths)
    if args.format == "json":
        print(json.dumps([dataclasses.asdict(f) for f in findings],
                         indent=2))
    elif args.format == "github":
        print(_github_annotations(findings))
    elif args.format == "sarif":
        print(json.dumps(_sarif_document(findings), indent=2))
    else:
        for finding in findings:
            print(finding)
        print(f"{len(findings)} violation(s) in {', '.join(paths)}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
