"""Command-line front end: ``python -m repro.analysis``.

Two modes:

* ``python -m repro.analysis [PATH ...]`` — run the SIM lint rules over
  files/directories (default: ``src/repro``).  Exits 1 if any
  violation is found.
* ``python -m repro.analysis --trace FILE`` — replay a JSON-lines
  command trace (see :func:`repro.analysis.conformance.save_trace`)
  through the three-phase protocol conformance checker.  Exits 1 if
  the trace is not conformant.

Both modes support ``--format json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import typing

from repro.analysis.conformance import check_trace, load_trace
from repro.analysis.lint import lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator invariant checks: SIM lint rules and "
                    "LPDDR2-NVM protocol conformance.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="replay a JSON-lines command trace through the "
             "three-phase conformance checker instead of linting")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.trace is not None:
        violations = check_trace(load_trace(args.trace))
        if args.format == "json":
            payload = [
                {"reason": v.reason, "record": v.record.to_dict()}
                for v in violations
            ]
            print(json.dumps(payload, indent=2))
        else:
            for violation in violations:
                print(violation)
            print(f"{len(violations)} protocol violation(s) in "
                  f"{args.trace}")
        return 1 if violations else 0

    paths = args.paths or ["src/repro"]
    findings = lint_paths(paths)
    if args.format == "json":
        print(json.dumps([dataclasses.asdict(f) for f in findings],
                         indent=2))
    else:
        for finding in findings:
            print(finding)
        print(f"{len(findings)} violation(s) in {', '.join(paths)}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
