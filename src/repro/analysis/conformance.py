"""LPDDR2-NVM three-phase addressing conformance checking.

The controller earns its latency wins by *skipping* addressing phases:
an RAB hit skips pre-active, an RDB hit skips pre-active and activate
(PAPER.md §3, Section III-B).  A skip is only legal when the buffer the
controller believes is loaded actually holds the row it needs — the
exact invariant that silently breaks when buffer rotation, invalidation
on program, or wear-level remapping go wrong.

This module mirrors the device's buffer file as an explicit state
machine over a stream of :class:`CommandRecord` entries:

* ``PRE_ACTIVE`` latches an upper row address into a RAB (and, like the
  hardware, drops the paired RDB contents);
* ``ACTIVATE`` is legal only on a buffer whose RAB is valid and, when
  the record carries the controller's assumed ``upper_row``, only when
  the latched value matches — a mismatch is an illegal pre-active skip;
* ``READ_BURST`` is legal only on a buffer whose RDB holds exactly the
  ``(partition, row)`` being read — a mismatch is an illegal activate
  skip;
* ``STAGE_PROGRAM`` / ``EXECUTE_PROGRAM`` must alternate per module
  (one overlay window), and an executed program invalidates every RDB
  copy of the programmed row.

Records also carry simulated timestamps; time running backwards within
one trace is reported as a violation (the cheapest smoke test for a
nondeterministic or corrupted trace).

The checker is usable two ways: offline, over a recorded trace
(:func:`check_trace`, ``python -m repro.analysis --trace FILE``), or
online as an opt-in runtime assertion layer — pass a
:class:`ProtocolChecker` as the ``monitor`` of
:class:`repro.controller.PramSubsystem` and every command the channels
issue is validated as it happens.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import typing
from pathlib import Path


class Command(enum.Enum):
    """The five controller-observable LPDDR2-NVM operations."""

    PRE_ACTIVE = "pre_active"
    ACTIVATE = "activate"
    READ_BURST = "read_burst"
    STAGE_PROGRAM = "stage_program"
    EXECUTE_PROGRAM = "execute_program"


@dataclasses.dataclass(frozen=True)
class CommandRecord:
    """One command as issued by a channel controller.

    ``row`` is the composed (full) row index within the partition.
    ``upper_row`` is the value the controller assumes is latched in the
    RAB — recorded on ``ACTIVATE`` so pre-active skips are checkable.
    The ``skipped_*`` flags are diagnostic; legality is derived from
    buffer state, not from the flags.
    """

    time: float
    channel: int
    module: int
    command: Command
    buffer_id: int | None = None
    partition: int | None = None
    row: int | None = None
    upper_row: int | None = None
    lower_row: int | None = None
    skipped_pre_active: bool = False
    skipped_activate: bool = False

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """JSON-serializable representation (see :func:`save_trace`)."""
        payload = dataclasses.asdict(self)
        payload["command"] = self.command.value
        return payload

    @classmethod
    def from_dict(cls, payload: typing.Mapping[str, typing.Any]
                  ) -> "CommandRecord":
        """Inverse of :meth:`to_dict`."""
        fields = dict(payload)
        fields["command"] = Command(fields["command"])
        return cls(**fields)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One conformance failure, tied to the offending record."""

    record: CommandRecord
    reason: str

    def __str__(self) -> str:
        return (f"t={self.record.time:.1f}ns ch{self.record.channel}"
                f".m{self.record.module} {self.record.command.value}: "
                f"{self.reason}")


class ProtocolViolationError(AssertionError):
    """Raised by a strict checker on the first conformance failure."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclasses.dataclass
class _BufferState:
    """Mirror of one RAB/RDB pair."""

    rab_valid: bool = False
    rab_upper: int | None = None
    rdb_valid: bool = False
    rdb_partition: int | None = None
    rdb_row: int | None = None


class _ModuleState:
    """Mirror of one module: its buffer file and overlay window."""

    def __init__(self) -> None:
        self.buffers: typing.Dict[int, _BufferState] = {}
        self.window_staged = False
        self.staged_target: typing.Tuple[int, int] | None = None

    def buffer(self, buffer_id: int) -> _BufferState:
        return self.buffers.setdefault(buffer_id, _BufferState())

    def invalidate_row(self, partition: int, row: int) -> None:
        for state in self.buffers.values():
            if (state.rdb_valid and state.rdb_partition == partition
                    and state.rdb_row == row):
                state.rdb_valid = False
                state.rdb_partition = None
                state.rdb_row = None


class ProtocolChecker:
    """Validates a stream of :class:`CommandRecord` entries.

    Parameters
    ----------
    strict:
        When True, :meth:`observe` raises
        :class:`ProtocolViolationError` on the first failure — the
        runtime-assertion mode.  When False (default), failures
        accumulate in :attr:`violations` — the offline/audit mode.
    record:
        When True, every observed record is appended to
        :attr:`records`, turning the checker into a trace recorder
        (replayable later with :func:`check_trace`).
    """

    def __init__(self, strict: bool = False, record: bool = False) -> None:
        self.strict = strict
        self.violations: typing.List[Violation] = []
        self.records: typing.List[CommandRecord] | None = (
            [] if record else None
        )
        self._modules: typing.Dict[typing.Tuple[int, int], _ModuleState] = {}
        self._last_time = float("-inf")
        self.commands_checked = 0

    # ------------------------------------------------------------------
    def observe(self, record: CommandRecord) -> Violation | None:
        """Feed one command; returns the violation it caused, if any."""
        if self.records is not None:
            self.records.append(record)
        self.commands_checked += 1
        violation = self._validate(record)
        if violation is not None:
            self.violations.append(violation)
            if self.strict:
                raise ProtocolViolationError(violation)
        return violation

    @property
    def ok(self) -> bool:
        """True while no violation has been observed."""
        return not self.violations

    # ------------------------------------------------------------------
    def _validate(self, record: CommandRecord
                  ) -> Violation | None:
        if record.time < self._last_time:
            return Violation(
                record,
                f"time went backwards ({record.time} < {self._last_time}); "
                "trace is out of order or the clock is corrupted",
            )
        self._last_time = record.time
        module = self._modules.setdefault(
            (record.channel, record.module), _ModuleState())
        handler = {
            Command.PRE_ACTIVE: self._on_pre_active,
            Command.ACTIVATE: self._on_activate,
            Command.READ_BURST: self._on_read_burst,
            Command.STAGE_PROGRAM: self._on_stage_program,
            Command.EXECUTE_PROGRAM: self._on_execute_program,
        }[record.command]
        return handler(record, module)

    def _on_pre_active(self, record: CommandRecord, module: _ModuleState
                       ) -> Violation | None:
        if record.buffer_id is None or record.upper_row is None:
            return Violation(
                record, "pre-active must carry a buffer_id and upper_row")
        if record.upper_row < 0:
            return Violation(
                record, f"negative upper row {record.upper_row}")
        state = module.buffer(record.buffer_id)
        state.rab_valid = True
        state.rab_upper = record.upper_row
        # Loading the RAB drops the paired RDB contents, as in hardware.
        state.rdb_valid = False
        state.rdb_partition = None
        state.rdb_row = None
        return None

    def _on_activate(self, record: CommandRecord, module: _ModuleState
                     ) -> Violation | None:
        if (record.buffer_id is None or record.partition is None
                or record.row is None):
            return Violation(
                record,
                "activate must carry buffer_id, partition, and row")
        state = module.buffer(record.buffer_id)
        if not state.rab_valid:
            return Violation(
                record,
                f"activate on buffer {record.buffer_id} before any "
                "pre-active latched an upper row address",
            )
        if (record.upper_row is not None
                and state.rab_upper != record.upper_row):
            return Violation(
                record,
                f"illegal pre-active skip: RAB of buffer "
                f"{record.buffer_id} holds upper row {state.rab_upper}, "
                f"but the activate assumes {record.upper_row}",
            )
        state.rdb_valid = True
        state.rdb_partition = record.partition
        state.rdb_row = record.row
        return None

    def _on_read_burst(self, record: CommandRecord, module: _ModuleState
                       ) -> Violation | None:
        if (record.buffer_id is None or record.partition is None
                or record.row is None):
            return Violation(
                record,
                "read burst must carry buffer_id, partition, and row")
        state = module.buffer(record.buffer_id)
        if not state.rdb_valid:
            return Violation(
                record,
                f"illegal activate skip: RDB of buffer {record.buffer_id} "
                "holds no sensed row",
            )
        if (state.rdb_partition != record.partition
                or state.rdb_row != record.row):
            return Violation(
                record,
                f"illegal phase skip: RDB of buffer {record.buffer_id} "
                f"holds partition {state.rdb_partition} row "
                f"{state.rdb_row}, but the burst targets partition "
                f"{record.partition} row {record.row}",
            )
        return None

    def _on_stage_program(self, record: CommandRecord, module: _ModuleState
                          ) -> Violation | None:
        if record.partition is None or record.row is None:
            return Violation(
                record, "stage-program must carry partition and row")
        if module.window_staged:
            return Violation(
                record,
                "overlay window already holds a staged program; the "
                "previous stage was never executed",
            )
        module.window_staged = True
        module.staged_target = (record.partition, record.row)
        return None

    def _on_execute_program(self, record: CommandRecord,
                            module: _ModuleState
                            ) -> Violation | None:
        if not module.window_staged:
            return Violation(
                record,
                "execute with no staged program in the overlay window")
        module.window_staged = False
        target = module.staged_target
        module.staged_target = None
        if target is not None:
            # The programmed row is stale in every RDB that cached it.
            module.invalidate_row(*target)
        return None


# ----------------------------------------------------------------------
# Offline trace helpers
# ----------------------------------------------------------------------
def check_trace(records: typing.Iterable[CommandRecord]
                ) -> typing.List[Violation]:
    """Replay a recorded command trace; returns all violations."""
    checker = ProtocolChecker(strict=False)
    for record in records:
        checker.observe(record)
    return checker.violations


def save_trace(records: typing.Iterable[CommandRecord],
               path: typing.Union[str, Path]) -> None:
    """Write a trace as JSON lines (one record per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")


def load_trace(path: typing.Union[str, Path]
               ) -> typing.List[CommandRecord]:
    """Read a JSON-lines command trace.

    Accepts both the native :func:`save_trace` format (one record dict
    per line) and the unified ``repro.telemetry`` span log, whose lines
    carry a ``type`` discriminator — ``command`` lines hold a record
    under ``record``; ``span``/``instant`` lines are ignored.  One
    capture therefore serves both the Perfetto timeline and this
    checker.
    """
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            kind = payload.get("type")
            if kind is None:
                records.append(CommandRecord.from_dict(payload))
            elif kind == "command":
                records.append(CommandRecord.from_dict(payload["record"]))
    return records
