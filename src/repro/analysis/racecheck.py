"""Same-timestamp race detection for the DES kernel.

The simulation kernel drains equal-timestamp events in FIFO schedule
order (a documented, asserted invariant — see
:meth:`repro.sim.engine.Simulator.run`).  Aggressive execution backends
— the batched same-timestamp drain, the sharded parallel merge, a
future compiled/vectorized kernel — are only sound for workloads whose
*results* do not depend on that tie-break order.  This module provides
the two oracles that make the independence claim checkable:

**Dynamic happens-before sanitizer** (:class:`RaceSanitizer`)
    Opt-in engine instrumentation.  Install it ambiently
    (:func:`sanitize` / :func:`repro.sim.use_sanitizer`), mark the
    shared objects to observe with :meth:`RaceSanitizer.watch`, and run
    the workload.  The kernel reports every atomic task (one event's
    callback batch) and every causal edge — scheduling, event
    succeed/fail -> waiter resumption, ``Resource`` acquire and
    release -> grant hand-off — and the watched objects report every
    attribute read/write with its source location.  Two conflicting
    accesses (W/W or R/W) at the *same simulated timestamp* from tasks
    with *no happens-before path* are exactly the accesses whose
    outcome the tie-break order decides; :meth:`RaceSanitizer.races`
    returns them as deterministic, source-located reports.

**Tie-break shuffle oracle** (:func:`certify_tiebreak_independence`)
    Empirical certification.  Runs a workload once under FIFO order and
    K more times with seeded random permutations of every
    same-timestamp batch (:func:`repro.sim.use_tiebreak`), and diffs a
    canonical byte-level fingerprint of the final stats.  Byte-identical
    fingerprints across all runs *certify* tie-break independence (and
    stamp a ``tiebreak_independent`` attestation into BENCH
    provenance); a mismatch *refutes* it and pinpoints the first
    divergence.  The two oracles compose: the sanitizer names the
    racing access, the shuffle decides whether the race is observable
    in the stats.

Happens-before model
--------------------
A **task** is one atomic unit of kernel execution: the processing of
one popped event — its callback list, including every process segment
those callbacks resume, runs to completion with no interleaving.  Tasks
are numbered in processing order; task 0 is the root segment (all code
outside ``run()``, e.g. model construction).  Every task has exactly
one causal parent: the task that scheduled its event (labeled with the
edge kind — ``schedule``, ``trigger``/``fail`` for succeed/fail,
``acquire``/``grant`` for Resource slot grants), so the graph is a tree
and *A happens-before B* iff A is an ancestor of B.  This is sound and
complete for this kernel: a process's consecutive segments chain
through the events it yields on, and every cross-process signal
(succeed, Store hand-off, Resource grant) is itself a scheduled event.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import re
import sys
import typing

from repro.sim.sanitizer import KernelSanitizer, use_sanitizer, use_tiebreak
from repro.telemetry.bench import record_attestation

if typing.TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.sim.event import Event
    from repro.sim.process import Process
    from repro.sim.resource import Request, Resource


# ----------------------------------------------------------------------
# Happens-before graph records
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class HbEdge:
    """One causal edge of the happens-before tree."""

    src: int
    dst: int
    kind: str


@dataclasses.dataclass
class _TaskInfo:
    """One atomic kernel task (one event's callback batch)."""

    task_id: int
    parent: int
    time_ns: float
    label: str
    edge_kind: str
    actor: str = ""


@dataclasses.dataclass(frozen=True)
class Access:
    """One watched attribute read/write inside one task."""

    task: int
    obj: str
    attr: str
    kind: str  # "read" | "write"
    file: str
    line: int

    @property
    def site(self) -> str:
        """``file:line`` of the access."""
        return f"{self.file}:{self.line}"


@dataclasses.dataclass(frozen=True)
class AccessSite:
    """One side of a race report, fully located."""

    kind: str
    file: str
    line: int
    task_label: str
    actor: str

    def __str__(self) -> str:
        actor = f", actor {self.actor}" if self.actor else ""
        return f"{self.kind} at {self.file}:{self.line} " \
               f"(task {self.task_label}{actor})"


@dataclasses.dataclass(frozen=True)
class RaceReport:
    """Two conflicting same-timestamp accesses with no HB path."""

    time_ns: float
    obj: str
    attr: str
    kinds: str  # "W/W" | "R/W"
    first: AccessSite
    second: AccessSite

    def __str__(self) -> str:
        return (
            f"{self.kinds} race on {self.obj}.{self.attr} at "
            f"t={self.time_ns}ns: {self.first} vs {self.second} — "
            "no happens-before path; the tie-break order decides the "
            "outcome"
        )


class RaceSanitizer(KernelSanitizer):
    """Dynamic happens-before sanitizer for the simulation kernel.

    Usage::

        with racecheck.sanitize() as san:
            sim = Simulator()          # binds to the sanitizer
            model = san.watch(Model(sim))
            ...
            sim.run()
        for report in san.races():
            print(report)

    Watching swaps the object's class for a recording subclass; every
    read/write of the object's (data) attributes is logged with the
    current kernel task and the caller's source location.  Reports are
    deterministic: same workload, same accesses, same report bytes.
    """

    def __init__(self) -> None:
        self._tasks: typing.List[_TaskInfo] = [
            _TaskInfo(0, 0, 0.0, "<root>", "root")]
        self._current = 0
        self._recording = True
        #: id(event) -> (scheduling task, edge kind) for queued events.
        self._event_parent: typing.Dict[
            int, typing.Tuple[int, str]] = {}
        #: id(event) -> pending edge-kind label (trigger/grant/...).
        self._pending_kind: typing.Dict[int, str] = {}
        self._accesses: typing.List[Access] = []
        #: (releasing task, resource name) in release order.
        self.releases: typing.List[typing.Tuple[int, str]] = []
        #: Strong refs keep id() keys valid; id(obj) -> (label, attrs).
        self._watched: typing.Dict[
            int, typing.Tuple[str, typing.FrozenSet[str], object]] = {}
        self._watched_classes: typing.Dict[type, type] = {}
        self._watch_ordinal = 0

    # ------------------------------------------------------------------
    # Kernel hooks
    # ------------------------------------------------------------------
    def begin_task(self, event: "Event", ts_ns: float, label: str) -> None:
        parent, kind = self._event_parent.pop(id(event), (0, "schedule"))
        task_id = len(self._tasks)
        self._tasks.append(_TaskInfo(task_id, parent, ts_ns, label, kind))
        self._current = task_id

    def on_schedule(self, event: "Event") -> None:
        kind = self._pending_kind.pop(id(event), "schedule")
        self._event_parent[id(event)] = (self._current, kind)

    def on_trigger(self, event: "Event", ok: bool) -> None:
        self._pending_kind.setdefault(
            id(event), "trigger" if ok else "fail")

    def on_actor(self, process: "Process") -> None:
        task = self._tasks[self._current]
        if not task.actor:
            task.actor = process.name

    def on_acquire(self, resource: "Resource", request: "Request") -> None:
        self._pending_kind[id(request)] = "acquire"

    def on_grant(self, resource: "Resource", request: "Request") -> None:
        self._pending_kind[id(request)] = "grant"

    def on_release(self, resource: "Resource", request: "Request") -> None:
        self.releases.append((self._current, resource.name))

    # ------------------------------------------------------------------
    # Watched objects
    # ------------------------------------------------------------------
    def watch(self, obj: typing.Any,
              attrs: typing.Optional[typing.Iterable[str]] = None,
              name: typing.Optional[str] = None) -> typing.Any:
        """Log every read/write of ``obj``'s data attributes.

        ``attrs`` restricts observation to the named attributes;
        by default every data attribute discoverable at watch time
        (instance ``__dict__`` keys, or ``__slots__`` across the MRO)
        is observed.  ``name`` labels the object in reports (default
        ``ClassName#ordinal``, deterministic in watch order).  Returns
        ``obj`` for chaining.
        """
        if attrs is not None:
            watch_set = frozenset(attrs)
        else:
            watch_set = frozenset(self._data_attrs(obj))
        self._watch_ordinal += 1
        label = name or f"{type(obj).__name__}#{self._watch_ordinal}"
        cls = type(obj)
        watched_cls = self._watched_classes.get(cls)
        if watched_cls is None:
            watched_cls = self._build_watched_class(cls)
            self._watched_classes[cls] = watched_cls
        obj.__class__ = watched_cls
        self._watched[id(obj)] = (label, watch_set, obj)
        return obj

    @staticmethod
    def _data_attrs(obj: typing.Any) -> typing.Set[str]:
        """Data attributes of ``obj``: instance dict or MRO slots."""
        found: typing.Set[str] = set()
        instance_dict = getattr(obj, "__dict__", None)
        if instance_dict:
            found.update(instance_dict)
        for klass in type(obj).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                found.add(slot)
        return {attr for attr in found
                if not (attr.startswith("__") and attr.endswith("__"))}

    def _build_watched_class(self, cls: type) -> type:
        sanitizer = self
        base_get = cls.__getattribute__
        base_set = cls.__setattr__

        def __getattribute__(inner: typing.Any, attr: str) -> typing.Any:
            value = base_get(inner, attr)
            sanitizer._record(inner, attr, "read")
            return value

        def __setattr__(inner: typing.Any, attr: str,
                        value: typing.Any) -> None:
            base_set(inner, attr, value)
            sanitizer._record(inner, attr, "write")

        namespace: typing.Dict[str, typing.Any] = {
            "__getattribute__": __getattribute__,
            "__setattr__": __setattr__,
        }
        if hasattr(cls, "__slots__"):
            namespace["__slots__"] = ()
        return type(f"Watched{cls.__name__}", (cls,), namespace)

    def _record(self, obj: typing.Any, attr: str, kind: str) -> None:
        if not self._recording:
            return
        entry = self._watched.get(id(obj))
        if entry is None or attr not in entry[1]:
            return
        frame = sys._getframe(2)
        self._accesses.append(Access(
            task=self._current, obj=entry[0], attr=attr, kind=kind,
            file=frame.f_code.co_filename, line=frame.f_lineno))

    def stop(self) -> None:
        """Stop recording accesses (watch hooks become no-ops)."""
        self._recording = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> typing.Tuple[Access, ...]:
        """Every recorded attribute access, in execution order."""
        return tuple(self._accesses)

    @property
    def hb_edges(self) -> typing.Tuple[HbEdge, ...]:
        """Every causal edge of the task tree, in task order."""
        return tuple(HbEdge(task.parent, task.task_id, task.edge_kind)
                     for task in self._tasks[1:])

    def edges_of(self, kind: str) -> typing.Tuple[HbEdge, ...]:
        """Causal edges with the given kind (``grant``, ``trigger``...)."""
        return tuple(edge for edge in self.hb_edges if edge.kind == kind)

    def task_label(self, task_id: int) -> str:
        """Display label of one task."""
        return self._tasks[task_id].label

    def happens_before(self, first: int, second: int) -> bool:
        """True iff task ``first`` is a causal ancestor of ``second``.

        The graph is a tree (one scheduling parent per task) and task
        ids increase in processing order, so the test is a parent walk.
        """
        if first == second:
            return True
        current = second
        while current > first:
            current = self._tasks[current].parent
        return current == first

    # ------------------------------------------------------------------
    # Race detection
    # ------------------------------------------------------------------
    def races(self) -> typing.List[RaceReport]:
        """Conflicting same-timestamp accesses with no HB path.

        Two accesses conflict when they touch the same (object,
        attribute) at the same simulated timestamp from different
        tasks, at least one is a write, and neither task
        happens-before the other.  Reports are deduplicated per
        (object, attribute, site pair) and sorted deterministically.
        """
        groups: typing.Dict[
            typing.Tuple[float, str, str], typing.List[Access]] = {}
        for access in self._accesses:
            key = (self._tasks[access.task].time_ns, access.obj,
                   access.attr)
            groups.setdefault(key, []).append(access)
        seen: typing.Set[typing.Tuple[str, ...]] = set()
        reports: typing.List[RaceReport] = []
        for (time_ns, obj, attr), accesses in groups.items():
            by_task: typing.Dict[int, typing.List[Access]] = {}
            for access in accesses:
                by_task.setdefault(access.task, []).append(access)
            task_ids = sorted(by_task)
            for i, first_task in enumerate(task_ids):
                for second_task in task_ids[i + 1:]:
                    first = self._pick(by_task[first_task])
                    second = self._pick(by_task[second_task])
                    if first.kind == "read" and second.kind == "read":
                        continue
                    if self.happens_before(first_task, second_task):
                        continue
                    kinds = ("W/W" if first.kind == second.kind
                             else "R/W")
                    dedupe = (obj, attr, kinds, first.site, second.site)
                    if dedupe in seen:
                        continue
                    seen.add(dedupe)
                    reports.append(RaceReport(
                        time_ns=time_ns, obj=obj, attr=attr, kinds=kinds,
                        first=self._site(first), second=self._site(second)))
        reports.sort(key=lambda r: (r.time_ns, r.obj, r.attr,
                                    r.first.line, r.second.line))
        return reports

    @staticmethod
    def _pick(accesses: typing.List[Access]) -> Access:
        """Representative access of one task: first write, else first."""
        for access in accesses:
            if access.kind == "write":
                return access
        return accesses[0]

    def _site(self, access: Access) -> AccessSite:
        task = self._tasks[access.task]
        return AccessSite(kind=access.kind, file=access.file,
                          line=access.line, task_label=task.label,
                          actor=task.actor)


@contextlib.contextmanager
def sanitize() -> typing.Iterator[RaceSanitizer]:
    """Install a fresh :class:`RaceSanitizer` ambiently for the body.

    Simulators constructed inside the ``with`` block bind to it.  On
    exit, recording stops, so post-run inspection of watched objects
    (asserts, report printing) does not append accesses.
    """
    sanitizer = RaceSanitizer()
    with use_sanitizer(sanitizer):
        yield sanitizer
    sanitizer.stop()


def format_races(reports: typing.Sequence[RaceReport]) -> str:
    """Stable text rendering of a race report list."""
    if not reports:
        return "no same-timestamp races detected"
    lines = [str(report) for report in reports]
    lines.append(f"{len(reports)} same-timestamp race(s)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Tie-break shuffle oracle
# ----------------------------------------------------------------------
_ADDRESS_RE = re.compile(r"0x[0-9a-fA-F]+")


def _canonical(value: typing.Any,
               seen: typing.Optional[typing.Set[int]] = None
               ) -> typing.Any:
    """JSON-representable canonical form of arbitrary result objects.

    Dict keys sort at dump time; dataclasses flatten to field dicts;
    sets sort; unknown objects fall back to ``repr`` with memory
    addresses scrubbed, so the fingerprint is stable across processes.
    """
    if seen is None:
        seen = set()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if id(value) in seen:
        return "<cycle>"
    seen = seen | {id(value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _canonical(getattr(value, field.name), seen)
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): _canonical(item, seen)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item, seen) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            _ADDRESS_RE.sub("0x-", repr(item)) for item in value)
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return _canonical(to_dict(), seen)
    return _ADDRESS_RE.sub("0x-", repr(value))


def canonical_fingerprint(value: typing.Any) -> str:
    """Byte-stable fingerprint of a workload's final stats."""
    return json.dumps(_canonical(value), sort_keys=True,
                      separators=(",", ":"))


def _first_divergence(baseline: str, candidate: str,
                      context: int = 40) -> str:
    """Locate and excerpt the first differing byte of two fingerprints."""
    limit = min(len(baseline), len(candidate))
    index = next((i for i in range(limit)
                  if baseline[i] != candidate[i]), limit)
    start = max(0, index - context)
    return (
        f"first divergence at byte {index}: "
        f"fifo[...{baseline[start:index + context]}...] vs "
        f"shuffled[...{candidate[start:index + context]}...]"
    )


@dataclasses.dataclass(frozen=True)
class TieBreakMismatch:
    """One shuffled run whose stats diverged from FIFO order."""

    seed: int
    divergence: str

    def __str__(self) -> str:
        return f"seed {self.seed}: {self.divergence}"


@dataclasses.dataclass(frozen=True)
class TieBreakCertificate:
    """Outcome of one tie-break-independence certification."""

    subject: str
    runs: int
    base_seed: int
    independent: bool
    digest: str
    mismatches: typing.Tuple[TieBreakMismatch, ...]

    def to_provenance(self) -> typing.Dict[str, typing.Any]:
        """The ``tiebreak_independent`` BENCH provenance block."""
        payload: typing.Dict[str, typing.Any] = {
            "subject": self.subject,
            "independent": self.independent,
            "runs": self.runs,
            "base_seed": self.base_seed,
            "digest": self.digest,
        }
        if self.mismatches:
            payload["mismatch_seeds"] = [
                mismatch.seed for mismatch in self.mismatches]
        return payload

    def summary(self) -> str:
        """One-paragraph human rendering."""
        if self.independent:
            return (
                f"{self.subject}: tiebreak-independent across "
                f"{self.runs} seeded same-timestamp permutations "
                f"(stats digest {self.digest})")
        lines = [
            f"{self.subject}: tie-break DEPENDENT — "
            f"{len(self.mismatches)}/{self.runs} shuffled runs diverged "
            "from FIFO order:"
        ]
        lines.extend(f"  {mismatch}" for mismatch in self.mismatches)
        return "\n".join(lines)


def certify_tiebreak_independence(
        workload: typing.Callable[[], typing.Any],
        *,
        subject: str = "workload",
        runs: int = 5,
        seed: int = 0,
        fingerprint: typing.Callable[[typing.Any],
                                     str] = canonical_fingerprint,
        attest: bool = True,
) -> TieBreakCertificate:
    """Empirically certify (or refute) tie-break independence.

    Runs ``workload`` once under FIFO tie-break order, then ``runs``
    more times with distinct seeded same-timestamp shuffles, and diffs
    the ``fingerprint`` of each return value byte-for-byte against the
    FIFO run.  ``workload`` must be self-contained (build its own
    simulator per call — the same contract as the determinism harness).

    With ``attest`` (default), the certificate is recorded as the
    ``tiebreak_independent`` attestation, which
    :func:`repro.telemetry.bench.collect_provenance` stamps into every
    BENCH report written afterwards in this process.
    """
    if runs < 1:
        raise ValueError(f"need at least 1 shuffled run, got {runs}")
    baseline = fingerprint(workload())
    mismatches: typing.List[TieBreakMismatch] = []
    for offset in range(runs):
        run_seed = seed + offset + 1
        with use_tiebreak(run_seed):
            candidate = fingerprint(workload())
        if candidate != baseline:
            mismatches.append(TieBreakMismatch(
                seed=run_seed,
                divergence=_first_divergence(baseline, candidate)))
    certificate = TieBreakCertificate(
        subject=subject,
        runs=runs,
        base_seed=seed,
        independent=not mismatches,
        digest=hashlib.sha256(baseline.encode("utf-8")).hexdigest()[:16],
        mismatches=tuple(mismatches))
    if attest:
        record_attestation("tiebreak_independent",
                           certificate.to_provenance())
    return certificate
