"""Pytest integration for the analysis subsystem.

Registered from the repository-root ``conftest.py``.  Provides:

* ``@pytest.mark.determinism`` — the marked test is executed twice;
  the event traces the DES kernel emitted during each execution are
  compared and any divergence fails the test with the first differing
  event.  The test body must be self-contained (build its own
  :class:`~repro.sim.engine.Simulator`), which every kernel-driving
  test in this suite already is.
* ``@pytest.mark.tiebreak_shuffle`` — the marked test is executed
  again under seeded random permutations of every same-timestamp event
  batch (``tiebreak_shuffle(runs=N, seed=S)``; default 3 runs).  A
  test that passes under FIFO order but fails under a shuffle depends
  on the kernel tie-break — exactly the dependence the compiled/
  parallel backends are not allowed to see.  Like ``determinism``,
  the body must build its own simulator.
* ``protocol_monitor`` fixture — a recording
  :class:`~repro.analysis.conformance.ProtocolChecker` that fails the
  test at teardown if any observed command violated the three-phase
  addressing protocol.  Pass it as the ``monitor`` of a
  :class:`~repro.controller.PramSubsystem`.
* ``race_sanitizer`` fixture — an ambient
  :class:`~repro.analysis.racecheck.RaceSanitizer`; ``watch()`` the
  shared objects inside the test and the test fails at teardown if any
  same-timestamp W/W or R/W race was observed.
"""

from __future__ import annotations

import typing

import pytest

from repro.analysis.conformance import ProtocolChecker
from repro.analysis.determinism import DeterminismError, capture_trace, diff_traces
from repro.analysis.racecheck import RaceSanitizer, format_races
from repro.sim.sanitizer import use_sanitizer, use_tiebreak


def pytest_configure(config: typing.Any) -> None:
    config.addinivalue_line(
        "markers",
        "determinism: run the test twice and fail on any divergence "
        "between the two kernel event traces",
    )
    config.addinivalue_line(
        "markers",
        "tiebreak_shuffle(runs=3, seed=0): re-run the test under seeded "
        "permutations of every same-timestamp event batch; a failure "
        "means the test depends on the kernel's FIFO tie-break order",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: typing.Any) -> typing.Iterator[None]:
    determinism = item.get_closest_marker("determinism")
    shuffle = item.get_closest_marker("tiebreak_shuffle")
    if determinism is None and shuffle is None:
        yield
        return
    if determinism is not None:
        with capture_trace() as first:
            outcome = yield  # the normal (first) execution of the test
        if outcome.excinfo is not None:
            return  # already failing; don't pile a second run on top
        with capture_trace() as second:
            item.runtest()
        problem = diff_traces(first, second)
        if problem is not None:
            raise DeterminismError(
                f"{item.nodeid} is nondeterministic: {problem}")
    else:
        outcome = yield  # the normal FIFO-order execution
        if outcome.excinfo is not None:
            return
    if shuffle is None:
        return
    runs = int(shuffle.kwargs.get("runs", 3))
    base_seed = int(shuffle.kwargs.get("seed", 0))
    for offset in range(runs):
        seed = base_seed + offset + 1
        try:
            with use_tiebreak(seed):
                item.runtest()
        except Exception as exc:
            raise AssertionError(
                f"{item.nodeid} passes under FIFO tie-break order but "
                f"fails under same-timestamp shuffle seed {seed}: the "
                "test (or the code it drives) depends on the kernel "
                f"tie-break — {exc!r}") from exc


@pytest.fixture
def protocol_monitor() -> typing.Iterator[ProtocolChecker]:
    """Recording conformance checker that fails the test on violations."""
    checker = ProtocolChecker(strict=False, record=True)
    yield checker
    if not checker.ok:
        details = "\n".join(str(v) for v in checker.violations)
        pytest.fail(
            f"LPDDR2-NVM protocol violations observed:\n{details}")


@pytest.fixture
def race_sanitizer() -> typing.Iterator[RaceSanitizer]:
    """Ambient happens-before sanitizer; fails the test on races."""
    sanitizer = RaceSanitizer()
    with use_sanitizer(sanitizer):
        yield sanitizer
    sanitizer.stop()
    races = sanitizer.races()
    if races:
        pytest.fail(
            "same-timestamp races observed:\n" + format_races(races))
