"""Pytest integration for the analysis subsystem.

Registered from the repository-root ``conftest.py``.  Provides:

* ``@pytest.mark.determinism`` — the marked test is executed twice;
  the event traces the DES kernel emitted during each execution are
  compared and any divergence fails the test with the first differing
  event.  The test body must be self-contained (build its own
  :class:`~repro.sim.engine.Simulator`), which every kernel-driving
  test in this suite already is.
* ``protocol_monitor`` fixture — a recording
  :class:`~repro.analysis.conformance.ProtocolChecker` that fails the
  test at teardown if any observed command violated the three-phase
  addressing protocol.  Pass it as the ``monitor`` of a
  :class:`~repro.controller.PramSubsystem`.
"""

from __future__ import annotations

import typing

import pytest

from repro.analysis.conformance import ProtocolChecker
from repro.analysis.determinism import DeterminismError, capture_trace, diff_traces


def pytest_configure(config: typing.Any) -> None:
    config.addinivalue_line(
        "markers",
        "determinism: run the test twice and fail on any divergence "
        "between the two kernel event traces",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: typing.Any) -> typing.Iterator[None]:
    if item.get_closest_marker("determinism") is None:
        yield
        return
    with capture_trace() as first:
        outcome = yield  # the normal (first) execution of the test
    if outcome.excinfo is not None:
        return  # already failing; don't pile a second run on top
    with capture_trace() as second:
        item.runtest()
    problem = diff_traces(first, second)
    if problem is not None:
        raise DeterminismError(
            f"{item.nodeid} is nondeterministic: {problem}")


@pytest.fixture
def protocol_monitor() -> typing.Iterator[ProtocolChecker]:
    """Recording conformance checker that fails the test on violations."""
    checker = ProtocolChecker(strict=False, record=True)
    yield checker
    if not checker.ok:
        details = "\n".join(str(v) for v in checker.violations)
        pytest.fail(
            f"LPDDR2-NVM protocol violations observed:\n{details}")
