"""Determinism harness: run a workload twice, diff the event traces.

The entire reproduction depends on the DES kernel being a pure
function of its inputs: same workload, same seed, same trace.  Silent
nondeterminism — iteration over an unordered set, an unseeded RNG, a
timestamp tie broken by object identity — corrupts every comparison
between two simulation runs (and makes bug reports unreproducible).

:func:`assert_deterministic` is the programmatic entry point; the
``@pytest.mark.determinism`` marker (see
:mod:`repro.analysis.pytest_plugin`) applies the same check to an
ordinary test function by running it twice and comparing the traces
the kernel emitted.

Tracing is cooperative: :func:`capture_trace` installs an ambient
:class:`~repro.telemetry.tracer.KernelEventRecorder`, and every
simulator *constructed inside the context* appends ``(timestamp,
event label)`` to the sink as it processes events.  The ambient slot
is a context variable, so concurrent or nested captures never clobber
each other (the seed's class-level ``Simulator._trace_sink`` did), and
any tracer already active outside the capture keeps observing too.
"""

from __future__ import annotations

import contextlib
import typing

from repro.sim.engine import TraceEntry
from repro.telemetry.tracer import (
    KernelEventRecorder,
    combine,
    current_tracer,
    use_tracer,
)


class DeterminismError(AssertionError):
    """Two runs of the same workload produced different event traces."""


@contextlib.contextmanager
def capture_trace() -> typing.Iterator[typing.List[TraceEntry]]:
    """Context manager: collect every event any simulator processes.

    Simulators must be constructed inside the context (every workload
    under test builds its own).  An already-active ambient tracer —
    e.g. a :class:`~repro.telemetry.tracer.RecordingTracer` capturing a
    Perfetto trace of the same run — is combined in, not displaced.
    """
    sink: typing.List[TraceEntry] = []
    recorder = combine(KernelEventRecorder(sink), current_tracer())
    with use_tracer(recorder):
        yield sink


def trace_of(workload: typing.Callable[[], object]
             ) -> typing.List[TraceEntry]:
    """Run ``workload`` and return the event trace it produced."""
    with capture_trace() as sink:
        workload()
    return sink


def diff_traces(first: typing.Sequence[TraceEntry],
                second: typing.Sequence[TraceEntry]
                ) -> str | None:
    """Human-readable description of the first divergence, or None."""
    for index, (a, b) in enumerate(zip(first, second)):
        if a != b:
            return (
                f"traces diverge at event {index}: "
                f"run 1 processed {a!r}, run 2 processed {b!r}"
            )
    if len(first) != len(second):
        shorter, longer = (("1", "2") if len(first) < len(second)
                           else ("2", "1"))
        return (
            f"run {shorter} processed {min(len(first), len(second))} "
            f"events but run {longer} processed "
            f"{max(len(first), len(second))}"
        )
    return None


def assert_deterministic(workload: typing.Callable[[], object],
                         runs: int = 2) -> typing.List[TraceEntry]:
    """Run ``workload`` ``runs`` times; raise on any trace divergence.

    ``workload`` must be self-contained: each call should build its own
    :class:`~repro.sim.engine.Simulator` and drive it to completion.
    Returns the (common) trace for further inspection.
    """
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs}")
    reference = trace_of(workload)
    for attempt in range(1, runs):
        candidate = trace_of(workload)
        problem = diff_traces(reference, candidate)
        if problem is not None:
            raise DeterminismError(
                f"workload is nondeterministic (run {attempt + 1}): "
                f"{problem}"
            )
    return reference
