"""The open-loop multi-tenant front end on the PRAM subsystem.

:class:`ServiceFrontend` converts the closed-loop simulator into a
*served system*: a seeded arrival timeline offers requests whether or
not the subsystem can keep up, and the front end defends itself with
the classic overload toolkit —

* **bounded admission queues** (per tenant, or one shared FIFO in the
  degraded ``shared_queue`` contrast mode): an arrival that finds its
  queue full is shed with a rejection outcome, never queued unboundedly;
* **a brownout controller** that walks the shed ladder class by class
  (batch first, premium never) when queue pressure or the subsystem's
  submit-side backpressure crosses the configured high-water mark, and
  walks back down under hysteresis;
* **deadline propagation**: every request carries an absolute deadline
  on simulated time; a periodic sweeper and lazy dequeue-side checks
  expire overdue queued work without spending device time on it, and a
  completion past its deadline counts as a timeout, not goodput;
* **bounded, backoff-spaced retries** that compose with the device's
  own program-and-verify retries through
  :func:`repro.faults.plan.compose_service_retries` — permanent faults
  (row unrecoverable, protocol errors) are never retried, and a retry
  is only attempted while its backoff still fits inside the deadline,
  so overload cannot amplify into a retry storm.

Everything runs on simulated time inside one :class:`Simulator`, and
every decision is a pure function of the seeded timeline plus the
kernel's FIFO tie-break — so a fixed :class:`ServiceConfig` reproduces
identical outcomes bit for bit, serially and under ``--jobs N``.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.controller.request import MemoryRequest, Op, RequestStatus
from repro.faults.plan import FaultConfig, compose_service_retries
from repro.service.arrivals import Arrival, merged_timeline
from repro.service.config import (
    TENANT_CLASSES,
    ServiceConfig,
    TenantClass,
    tenant_class,
)
from repro.sim import Simulator
from repro.sim.stats import LatencySketch
from repro.telemetry.metrics import current_metrics


class ServiceBackend(typing.Protocol):
    """What the front end needs from a memory subsystem.

    :class:`~repro.controller.controller.PramSubsystem` satisfies this;
    tests substitute fixed-latency stubs to exercise admission and
    retry logic without device physics.
    """

    fault_config: typing.Optional[FaultConfig]

    def submit(self, request: MemoryRequest) -> typing.Generator:
        """Process body servicing one request to completion."""
        ...  # pragma: no cover - protocol

    def backpressure(self) -> float:
        """Submit-side congestion in [0, 1]."""
        ...  # pragma: no cover - protocol


@dataclasses.dataclass
class ServiceRequest:
    """One admitted request waiting for (or receiving) service."""

    tenant: int
    op: Op
    address: int
    arrival: float
    deadline: float
    attempts: int = 0


class TenantStats:
    """Outcome ledger and latency sketch for one tenant.

    Every offered request lands in exactly one terminal bucket:
    ``shed_queue`` / ``shed_brownout`` (rejected at admission),
    ``expired`` (deadline passed while queued), ``late`` (completed
    after its deadline), ``failed``, or one of the completion statuses
    ``ok`` / ``corrected`` / ``degraded`` (goodput, sketched).
    """

    def __init__(self, tenant: int, cls: TenantClass) -> None:
        self.tenant = tenant
        self.cls = cls
        self.offered = 0
        self.shed_queue = 0
        self.shed_brownout = 0
        self.expired = 0
        self.late = 0
        self.ok = 0
        self.corrected = 0
        self.degraded = 0
        self.failed = 0
        self.retries = 0
        self.sketch = LatencySketch(f"service.sketch.t{tenant}")

    @property
    def shed(self) -> int:
        """Requests rejected at admission (no device work spent)."""
        return self.shed_queue + self.shed_brownout

    @property
    def timeout(self) -> int:
        """Requests whose deadline passed, queued or in service."""
        return self.expired + self.late

    @property
    def admitted(self) -> int:
        """Requests that made it past admission control."""
        return self.offered - self.shed

    @property
    def goodput(self) -> int:
        """Requests completed within deadline with usable data."""
        return self.ok + self.corrected + self.degraded

    def outcome_counts(self) -> typing.Dict[str, float]:
        """Ledger keyed by :data:`repro.service.summary.SEVERITY_ORDER`."""
        return {
            "ok": float(self.ok),
            "corrected": float(self.corrected),
            "degraded": float(self.degraded),
            "shed": float(self.shed),
            "timeout": float(self.timeout),
            "failed": float(self.failed),
        }


@dataclasses.dataclass
class ClassStats:
    """One tenant class's aggregate outcomes and SLO verdict."""

    cls: TenantClass
    offered: int
    shed: int
    timeout: int
    failed: int
    degraded: int
    corrected: int
    ok: int
    retries: int
    sketch: LatencySketch
    slo_p99_ns: float

    @property
    def goodput(self) -> int:
        """Requests completed within deadline with usable data."""
        return self.ok + self.corrected + self.degraded

    @property
    def p99_ns(self) -> typing.Optional[float]:
        """p99 end-to-end latency over goodput, None with no samples."""
        if not self.sketch.count:
            return None
        return self.sketch.percentile(0.99)

    @property
    def meets_slo(self) -> bool:
        """Whether the class's goodput p99 is within its latency SLO."""
        p99 = self.p99_ns
        return p99 is None or p99 <= self.slo_p99_ns


@dataclasses.dataclass
class ServiceResult:
    """Everything one service run produced."""

    config: ServiceConfig
    elapsed_ns: float
    tenants: typing.List[TenantStats]
    #: Simulated time spent at each brownout level (0 = no shedding).
    brownout_ns: typing.Dict[int, float]

    def totals(self) -> typing.Dict[str, float]:
        """Outcome ledger summed across tenants."""
        totals: typing.Dict[str, float] = {}
        for stats in self.tenants:
            for name, value in stats.outcome_counts().items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    @property
    def offered(self) -> int:
        """Total requests the arrival processes offered."""
        return sum(stats.offered for stats in self.tenants)

    @property
    def goodput(self) -> int:
        """Total requests completed in time with usable data."""
        return sum(stats.goodput for stats in self.tenants)

    @property
    def goodput_rps(self) -> float:
        """Goodput rate in requests per second of simulated time."""
        if self.elapsed_ns <= 0.0:
            return 0.0
        return self.goodput / self.elapsed_ns * 1e9

    def class_stats(self, *, compliant_only: bool = False
                    ) -> typing.Dict[str, ClassStats]:
        """Per-class aggregates in shed order (most protected last).

        ``compliant_only`` drops the misbehaving tenants (the leading
        ``rogue_tenants``) from the aggregation — the tenant-isolation
        experiment judges SLOs over the *victims*, not the adversary.
        """
        rogue = self.config.rogue_tenants if compliant_only else 0
        out: typing.Dict[str, ClassStats] = {}
        for cls in TENANT_CLASSES:
            members = [stats for stats in self.tenants
                       if stats.cls is cls and stats.tenant >= rogue]
            if not members:
                continue
            sketch = LatencySketch(f"service.sketch.{cls.name}")
            for stats in members:
                sketch.merge(stats.sketch)
            out[cls.name] = ClassStats(
                cls=cls,
                offered=sum(s.offered for s in members),
                shed=sum(s.shed for s in members),
                timeout=sum(s.timeout for s in members),
                failed=sum(s.failed for s in members),
                degraded=sum(s.degraded for s in members),
                corrected=sum(s.corrected for s in members),
                ok=sum(s.ok for s in members),
                retries=sum(s.retries for s in members),
                sketch=sketch,
                slo_p99_ns=self.config.slo_p99_ns(cls))
        return out

    def merged_sketch(self) -> LatencySketch:
        """All tenants' goodput latencies as one sketch."""
        merged = LatencySketch("service.sketch")
        for stats in self.tenants:
            merged.merge(stats.sketch)
        return merged


class ServiceFrontend:
    """Admission control, dispatch, deadlines, retries, and brownout."""

    def __init__(self, sim: Simulator, backend: ServiceBackend,
                 config: ServiceConfig) -> None:
        self.sim = sim
        self.backend = backend
        self.config = config
        self.stats = [TenantStats(tenant, tenant_class(tenant))
                      for tenant in range(config.tenants)]
        # One bounded FIFO per tenant, or a single shared FIFO of the
        # same total capacity in the no-isolation contrast mode.
        if config.shared_queue:
            self._queues: typing.List[typing.Deque[ServiceRequest]] = [
                collections.deque()]
            self._queue_capacity = config.queue_depth * config.tenants
        else:
            self._queues = [collections.deque()
                            for _ in range(config.tenants)]
            self._queue_capacity = config.queue_depth
        self._queued = 0
        self._rr = 0
        self._work = sim.event()
        self._injector_done = False
        self.inflight = 0
        # Brownout: level L sheds classes with shed_rank < L at
        # admission, so the highest rank (premium) is never shed.
        self.brownout_level = 0
        self._max_level = max(cls.shed_rank for cls in TENANT_CLASSES)
        self.brownout_ns = {level: 0.0
                            for level in range(self._max_level + 1)}
        self._level_since = sim.now
        # The retry-composition handshake with repro.faults: the
        # device layer's bounded program-and-verify retries spend from
        # the same end-to-end budget first.
        self._retry_budget = compose_service_retries(
            config.retry_budget, backend.fault_config)

    # ------------------------------------------------------------------
    # Driving the run
    # ------------------------------------------------------------------
    def run(self) -> ServiceResult:
        """Offer the full seeded timeline and drain it to completion."""
        timeline = merged_timeline(self.config)
        self.sim.process(self._inject(timeline))
        for _ in range(self.config.workers):
            self.sim.process(self._worker())
        self.sim.process(self._sweep())
        self.sim.run()
        self._roll_level(self.brownout_level)
        result = ServiceResult(
            config=self.config, elapsed_ns=self.sim.now,
            tenants=self.stats, brownout_ns=dict(self.brownout_ns))
        self._publish_metrics(result)
        return result

    def _inject(self, timeline: typing.Sequence[Arrival]
                ) -> typing.Generator:
        """Process body: replay the offered timeline open-loop."""
        for arrival in timeline:
            if arrival.time > self.sim.now:
                yield self.sim.deadline(arrival.time)
            self._admit(arrival)
        self._injector_done = True
        self._signal()

    def _worker(self) -> typing.Generator:
        """Process body: one dispatch slot serving queued requests."""
        while True:
            request = self._dequeue()
            if request is None:
                if self._injector_done:
                    return
                yield self._work
                continue
            yield from self._serve(request)

    def _sweep(self) -> typing.Generator:
        """Process body: periodically expire overdue queued requests.

        Deadlines are enforced lazily at dequeue too; the sweeper
        bounds how stale a queued-but-doomed request can get without
        scheduling one timer event per request.
        """
        interval = self.config.sweep_interval_ns
        while True:
            yield self.sim.timeout(interval)
            self._expire_queued()
            if self._injector_done and self._queued == 0:
                return

    # ------------------------------------------------------------------
    # Admission control and brownout
    # ------------------------------------------------------------------
    def _admit(self, arrival: Arrival) -> None:
        stats = self.stats[arrival.tenant]
        stats.offered += 1
        if stats.cls.shed_rank < self.brownout_level:
            stats.shed_brownout += 1
            return
        queue = self._queue_for(arrival.tenant)
        if len(queue) >= self._queue_capacity:
            stats.shed_queue += 1
            self._update_brownout()
            return
        queue.append(ServiceRequest(
            tenant=arrival.tenant, op=arrival.op,
            address=arrival.address, arrival=arrival.time,
            deadline=arrival.time + self.config.deadline_ns))
        self._queued += 1
        self._update_brownout()
        self._signal()

    def _queue_for(self, tenant: int) -> typing.Deque[ServiceRequest]:
        return self._queues[0 if self.config.shared_queue else tenant]

    def _pressure(self) -> float:
        """Combined queue occupancy and subsystem backpressure."""
        capacity = self._queue_capacity * len(self._queues)
        return max(self._queued / capacity, self.backend.backpressure())

    def _update_brownout(self) -> None:
        pressure = self._pressure()
        level = self.brownout_level
        if (pressure >= self.config.brownout_high
                and level < self._max_level):
            self._set_level(level + 1)
        elif pressure <= self.config.brownout_low and level > 0:
            self._set_level(level - 1)

    def _set_level(self, level: int) -> None:
        self._roll_level(self.brownout_level)
        self.brownout_level = level

    def _roll_level(self, level: int) -> None:
        now = self.sim.now
        self.brownout_ns[level] += now - self._level_since
        self._level_since = now

    def _signal(self) -> None:
        """Wake idle workers (one-shot condition-variable idiom)."""
        event, self._work = self._work, self.sim.event()
        event.succeed()

    # ------------------------------------------------------------------
    # Dispatch, deadlines, and retries
    # ------------------------------------------------------------------
    def _expire_queued(self) -> None:
        """Drop queued requests whose deadline already passed.

        Queue order is arrival order and every request in a queue
        carries the same deadline offset, so deadlines are monotone
        per queue and popping expired heads is complete.
        """
        now = self.sim.now
        expired = 0
        for queue in self._queues:
            while queue and queue[0].deadline <= now:
                request = queue.popleft()
                self._queued -= 1
                self.stats[request.tenant].expired += 1
                expired += 1
        if expired:
            self._update_brownout()

    def _dequeue(self) -> typing.Optional[ServiceRequest]:
        """Next serviceable request, deterministic round-robin."""
        self._expire_queued()
        count = len(self._queues)
        for offset in range(count):
            index = (self._rr + offset) % count
            queue = self._queues[index]
            if queue:
                self._rr = (index + 1) % count
                self._queued -= 1
                request = queue.popleft()
                self._update_brownout()
                return request
        return None

    def _serve(self, request: ServiceRequest) -> typing.Generator:
        """Process body: one request through submit + bounded retries."""
        stats = self.stats[request.tenant]
        config = self.config
        self.inflight += 1
        while True:
            memory = self._memory_request(request)
            yield self.sim.process(self.backend.submit(memory))
            if memory.status is not RequestStatus.FAILED:
                break
            # Retry only transient failures, within the composed
            # budget, and only if the backoff still fits inside the
            # deadline: a doomed retry is exactly the storm fuel the
            # composition contract exists to deny.
            if memory.fault_permanent:
                break
            if request.attempts >= self._retry_budget:
                break
            backoff = (config.retry_backoff_ns
                       * config.backoff_multiplier ** request.attempts)
            if self.sim.now + backoff >= request.deadline:
                break
            request.attempts += 1
            stats.retries += 1
            yield self.sim.timeout(backoff)
        self.inflight -= 1
        now = self.sim.now
        if memory.status is RequestStatus.FAILED:
            stats.failed += 1
        elif now > request.deadline:
            stats.late += 1
        else:
            stats.sketch.add(now - request.arrival)
            if memory.status is RequestStatus.OK:
                stats.ok += 1
            elif memory.status is RequestStatus.CORRECTED:
                stats.corrected += 1
            else:
                stats.degraded += 1

    def _memory_request(self, request: ServiceRequest) -> MemoryRequest:
        size = self.config.request_bytes
        if request.op is Op.READ:
            return MemoryRequest(Op.READ, request.address, size)
        payload = bytes([request.tenant & 0xFF]) * size
        return MemoryRequest(Op.WRITE, request.address, size,
                             data=payload)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _publish_metrics(self, result: ServiceResult) -> None:
        """Feed outcome counters + class sketches into ambient metrics."""
        metrics = current_metrics()
        if not metrics.enabled:
            return
        totals = result.totals()
        for name in ("ok", "corrected", "degraded", "shed", "timeout",
                     "failed"):
            value = totals.get(name, 0.0)
            if value:
                metrics.counter(f"service.requests.{name}").add(value)
        metrics.counter("service.requests.offered").add(
            float(result.offered))
        retries = sum(stats.retries for stats in result.tenants)
        if retries:
            metrics.counter("service.retries").add(float(retries))
        for name, cls_stats in result.class_stats().items():
            metrics.attach(f"service.sketch.{name}", cls_stats.sketch)
