"""Severity-ordered terminal reporting of request outcomes.

One helper renders "what happened to the requests" for every
experiment that can produce non-OK outcomes — the service sweeps
(:mod:`repro.experiments.service_sweeps`) and the endurance sweep
(:mod:`repro.experiments.reliability`) — so shed/timeout/degraded
counts always appear in the same order and format, worst outcomes
last.
"""

from __future__ import annotations

import typing

#: All terminal request outcomes, least to most severe.  Extends the
#: :class:`~repro.controller.request.RequestStatus` lattice (OK <
#: CORRECTED < DEGRADED < FAILED) with the service layer's terminal
#: outcomes: ``shed`` (rejected at admission, no device work) and
#: ``timeout`` (deadline missed, queued or completed too late).
SEVERITY_ORDER: typing.Tuple[str, ...] = (
    "ok", "corrected", "degraded", "shed", "timeout", "failed")


def outcome_summary(counts: typing.Mapping[str, float], *,
                    include_ok: bool = False) -> str:
    """Render outcome counts in severity order, zero counts omitted.

    ``include_ok`` keeps the ``ok`` count even though it is not an
    adverse outcome (service reports want the full ledger; the
    endurance sweep only reports what went wrong).  Unknown keys in
    ``counts`` raise — a misspelled outcome must not silently vanish
    from a reliability report.
    """
    unknown = sorted(set(counts) - set(SEVERITY_ORDER))
    if unknown:
        raise ValueError(
            f"unknown outcome(s) {unknown}; expected {SEVERITY_ORDER}")
    parts = []
    for name in SEVERITY_ORDER:
        if name == "ok" and not include_ok:
            continue
        value = counts.get(name, 0)
        if value or (name == "ok" and include_ok):
            parts.append(f"{name}={int(value)}")
    return ", ".join(parts) if parts else "all ok"
