"""Service-layer configuration: one overload-safe traffic plan.

:class:`ServiceConfig` describes an *open-loop* request stream offered
to the PRAM subsystem — how many tenants, which arrival process, how
hard — plus every robustness knob the front end applies to it:
bounded per-tenant admission queues, per-request deadlines, seeded
retry budgets, and the brownout thresholds that shed optional work
class by class instead of collapsing.

Like :class:`repro.faults.plan.FaultConfig`, the plan is a frozen,
trivially hashable dataclass with a ``key=value,...`` CLI spec parser
(``--service``), and **every field is validated at parse time**:
negative, zero, or NaN arrival rates, deadlines, and retry budgets
raise :class:`ValueError` naming the offending field, so a typo fails
in milliseconds instead of after minutes of simulation.
"""

from __future__ import annotations

import dataclasses
import math
import typing

#: Arrival processes the service layer can synthesize.
ARRIVAL_KINDS: typing.Tuple[str, ...] = ("poisson", "mmpp", "diurnal")


@dataclasses.dataclass(frozen=True)
class TenantClass:
    """One service class: shed priority plus its latency SLO.

    ``shed_rank`` orders brownout shedding: a brownout at level ``L``
    stops admitting classes with ``shed_rank < L``, so rank 0 is shed
    first and the highest rank is never shed (the brownout controller
    walks levels ``0..max_rank`` only).  ``slo_factor`` scales the
    configured deadline into the class's p99 latency SLO.
    """

    name: str
    shed_rank: int
    slo_factor: float


#: The three built-in tenant classes, most-protected first.  Tenant
#: ``i`` belongs to class ``i % 3``, so every class is populated for
#: any tenant count >= 3.
TENANT_CLASSES: typing.Tuple[TenantClass, ...] = (
    TenantClass("premium", shed_rank=2, slo_factor=0.5),
    TenantClass("standard", shed_rank=1, slo_factor=1.0),
    TenantClass("batch", shed_rank=0, slo_factor=2.0),
)


def tenant_class(tenant: int) -> TenantClass:
    """The service class tenant ``tenant`` belongs to."""
    return TENANT_CLASSES[tenant % len(TENANT_CLASSES)]


#: Fields parsed from ``--service`` key=value specs: alias -> (field,
#: converter).  Full field names are accepted too.
_PLAN_KEYS: typing.Dict[str, typing.Tuple[str, typing.Callable]] = {
    "seed": ("seed", int),
    "tenants": ("tenants", int),
    "arrival": ("arrival", str),
    "rate_rps": ("rate_rps", float),
    "rate": ("rate_rps", float),
    "duration": ("duration_ns", float),
    "duration_ns": ("duration_ns", float),
    "queue": ("queue_depth", int),
    "queue_depth": ("queue_depth", int),
    "deadline": ("deadline_ns", float),
    "deadline_ns": ("deadline_ns", float),
    "retries": ("retry_budget", int),
    "retry_budget": ("retry_budget", int),
    "backoff": ("retry_backoff_ns", float),
    "backoff_ns": ("retry_backoff_ns", float),
    "multiplier": ("backoff_multiplier", float),
    "workers": ("workers", int),
    "size": ("request_bytes", int),
    "request_bytes": ("request_bytes", int),
    "read": ("read_fraction", float),
    "read_fraction": ("read_fraction", float),
    "footprint": ("footprint_bytes", int),
    "burst_factor": ("burst_factor", float),
    "burst_fraction": ("burst_fraction", float),
    "burst_ns": ("burst_ns", float),
    "diurnal_period_ns": ("diurnal_period_ns", float),
    "diurnal_amplitude": ("diurnal_amplitude", float),
    "rogue_tenants": ("rogue_tenants", int),
    "rogue_factor": ("rogue_factor", float),
    "brownout_high": ("brownout_high", float),
    "brownout_low": ("brownout_low", float),
    "sweep_ns": ("sweep_interval_ns", float),
    "sweep_interval_ns": ("sweep_interval_ns", float),
    "shared_queue": ("shared_queue", int),
}

#: Fields that parse as ints when given by full field name.
_INT_FIELDS = frozenset({
    "seed", "tenants", "queue_depth", "retry_budget", "workers",
    "request_bytes", "footprint_bytes", "rogue_tenants", "shared_queue",
})


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """One reproducible multi-tenant traffic plan.

    Rates are expressed in requests per *second* on the CLI for
    familiarity; the arrival synthesizer converts to requests per
    simulated nanosecond internally.  ``rate_rps`` is the **total**
    offered rate across all tenants; each tenant offers an equal share
    (misbehaving tenants multiply theirs by ``rogue_factor``).
    """

    seed: int = 0
    #: Number of concurrent tenants (each with its own bounded queue).
    tenants: int = 6
    #: Arrival process: ``poisson``, ``mmpp`` (bursty two-state
    #: Markov-modulated), or ``diurnal`` (sinusoidally modulated).
    arrival: str = "poisson"
    #: Total offered arrival rate across tenants, requests/second.
    rate_rps: float = 4e6
    #: Open-loop offered-traffic window, simulated nanoseconds.
    duration_ns: float = 200_000.0
    #: Bounded admission queue depth per tenant (arrivals beyond it
    #: are shed with a rejection status, never queued unboundedly).
    queue_depth: int = 8
    #: End-to-end deadline per request, from arrival.
    deadline_ns: float = 50_000.0
    #: Service-level retries per request (composes with the device's
    #: program-and-verify retries; see
    #: :func:`repro.faults.plan.compose_service_retries`).
    retry_budget: int = 2
    #: Base service-level retry backoff (doubles per attempt by
    #: default; the wait still counts against the request's deadline).
    retry_backoff_ns: float = 1_000.0
    #: Exponential backoff multiplier per retry attempt.
    backoff_multiplier: float = 2.0
    #: Dispatch concurrency: max requests in flight into the subsystem.
    workers: int = 8
    #: Bytes per request.
    request_bytes: int = 512
    #: Fraction of requests that are reads (draws are per-request,
    #: seeded).
    read_fraction: float = 0.75
    #: Address space the request stream is spread over.
    footprint_bytes: int = 1 << 20
    #: MMPP: burst-state rate multiplier over the quiet-state rate.
    burst_factor: float = 8.0
    #: MMPP: expected fraction of time spent in the burst state.
    burst_fraction: float = 0.125
    #: MMPP: mean burst sojourn length.
    burst_ns: float = 20_000.0
    #: Diurnal: modulation period.
    diurnal_period_ns: float = 100_000.0
    #: Diurnal: relative modulation amplitude in [0, 1).
    diurnal_amplitude: float = 0.8
    #: Leading tenants that misbehave (offer ``rogue_factor`` times
    #: their fair share) — the tenant-isolation experiment's adversary.
    rogue_tenants: int = 0
    #: Rate multiplier applied to misbehaving tenants.
    rogue_factor: float = 10.0
    #: Brownout: raise the shedding level when queue pressure reaches
    #: this fraction of total queue capacity...
    brownout_high: float = 0.75
    #: ...and lower it again once pressure falls back to this fraction.
    brownout_low: float = 0.5
    #: Period of the deadline sweeper that expires overdue queued
    #: requests on simulated time.
    sweep_interval_ns: float = 5_000.0
    #: Degraded mode: 1 collapses the per-tenant queues into one shared
    #: FIFO of the same total capacity (no admission isolation) — the
    #: tenant-isolation experiment's contrast arm.
    shared_queue: int = 0

    def __post_init__(self) -> None:
        for field in ("tenants", "queue_depth", "workers",
                      "request_bytes"):
            value = getattr(self, field)
            if value < 1:
                raise ValueError(f"{field} must be >= 1, got {value}")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_KINDS}, got "
                f"{self.arrival!r}")
        for field in ("rate_rps", "duration_ns", "deadline_ns",
                      "diurnal_period_ns", "sweep_interval_ns",
                      "burst_ns"):
            value = getattr(self, field)
            if math.isnan(value):
                raise ValueError(f"{field} must not be NaN")
            if not value > 0.0:
                raise ValueError(f"{field} must be > 0, got {value}")
            if math.isinf(value):
                raise ValueError(f"{field} must be finite, got {value}")
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget}")
        if math.isnan(self.retry_backoff_ns) or self.retry_backoff_ns <= 0:
            raise ValueError(
                f"retry_backoff_ns must be > 0, got "
                f"{self.retry_backoff_ns}")
        if math.isnan(self.backoff_multiplier) or self.backoff_multiplier < 1:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}")
        for field in ("read_fraction", "burst_fraction"):
            value = getattr(self, field)
            if math.isnan(value) or not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{field} must be within [0, 1], got {value}")
        if (math.isnan(self.diurnal_amplitude)
                or not 0.0 <= self.diurnal_amplitude < 1.0):
            raise ValueError(
                f"diurnal_amplitude must be within [0, 1), got "
                f"{self.diurnal_amplitude}")
        for field in ("burst_factor", "rogue_factor"):
            value = getattr(self, field)
            if math.isnan(value) or value < 1.0:
                raise ValueError(f"{field} must be >= 1, got {value}")
        if not 0 <= self.rogue_tenants <= self.tenants:
            raise ValueError(
                f"rogue_tenants must be within [0, tenants="
                f"{self.tenants}], got {self.rogue_tenants}")
        for field in ("brownout_high", "brownout_low"):
            value = getattr(self, field)
            if math.isnan(value) or not 0.0 < value <= 1.0:
                raise ValueError(
                    f"{field} must be within (0, 1], got {value}")
        if self.brownout_low >= self.brownout_high:
            raise ValueError(
                f"brownout_low ({self.brownout_low}) must be below "
                f"brownout_high ({self.brownout_high})")
        if self.footprint_bytes < self.request_bytes:
            raise ValueError(
                f"footprint_bytes ({self.footprint_bytes}) must be >= "
                f"request_bytes ({self.request_bytes})")
        if self.shared_queue not in (0, 1):
            raise ValueError(
                f"shared_queue must be 0 or 1, got {self.shared_queue}")

    @property
    def rate_per_ns(self) -> float:
        """Total offered rate in requests per simulated nanosecond."""
        return self.rate_rps * 1e-9

    def tenant_rate_per_ns(self, tenant: int) -> float:
        """Tenant ``tenant``'s offered rate (fair share, rogue-scaled)."""
        share = self.rate_per_ns / self.tenants
        if tenant < self.rogue_tenants:
            return share * self.rogue_factor
        return share

    def slo_p99_ns(self, cls: TenantClass) -> float:
        """Class ``cls``'s p99 latency SLO in nanoseconds."""
        return cls.slo_factor * self.deadline_ns

    @classmethod
    def parse(cls, spec: str) -> "ServiceConfig":
        """Build a plan from a ``key=value,key=value`` CLI spec.

        Keys are the aliases in the README's Service layer section
        (``rate``, ``deadline``, ``retries``, ...) or full field names.
        Raises :class:`ValueError` naming the offending key or field on
        any nonsense input — the same contract as
        :meth:`repro.faults.plan.FaultConfig.parse`.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty service-plan spec")
        fields = {f.name: f for f in dataclasses.fields(cls)}
        values: typing.Dict[str, typing.Any] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"service-plan entry {item!r} is not key=value")
            if key in _PLAN_KEYS:
                field, convert = _PLAN_KEYS[key]
            elif key in fields:
                field = key
                convert = (int if key in _INT_FIELDS
                           else str if key == "arrival" else float)
            else:
                known = ", ".join(sorted(_PLAN_KEYS))
                raise ValueError(
                    f"unknown service-plan key {key!r} (known: {known})")
            raw = raw.strip()
            if convert is str:
                values[field] = raw
                continue
            try:
                values[field] = convert(raw)
            except ValueError:
                raise ValueError(
                    f"{field} expects a number, got {raw!r}") from None
        return cls(**values)
