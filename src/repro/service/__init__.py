"""Open-loop multi-tenant service layer on the PRAM subsystem.

The closed-loop figure reproductions submit a batch and wait; this
package offers traffic *open-loop* — seeded Poisson / bursty MMPP /
diurnal arrival processes across many tenants — and keeps the stack
robust when that offered load exceeds capacity: bounded per-tenant
admission queues with load shedding, deadline propagation on simulated
time, budgeted exponential-backoff retries composed with the device's
own fault-retry path, and a brownout controller that sheds optional
work class by class instead of collapsing.

Entry points: build a :class:`ServiceConfig` (or parse one from a
``--service key=value,...`` spec), then drive a
:class:`ServiceFrontend` over a subsystem, or use the ``overload`` /
``burst_absorption`` / ``tenant_isolation`` experiments in
:mod:`repro.experiments.service_sweeps`.
"""

from repro.service.arrivals import Arrival, merged_timeline, tenant_arrivals
from repro.service.config import (
    ARRIVAL_KINDS,
    TENANT_CLASSES,
    ServiceConfig,
    TenantClass,
    tenant_class,
)
from repro.service.frontend import (
    ClassStats,
    ServiceBackend,
    ServiceFrontend,
    ServiceRequest,
    ServiceResult,
    TenantStats,
)
from repro.service.summary import SEVERITY_ORDER, outcome_summary

__all__ = [
    "ARRIVAL_KINDS",
    "Arrival",
    "ClassStats",
    "SEVERITY_ORDER",
    "ServiceBackend",
    "ServiceConfig",
    "ServiceFrontend",
    "ServiceRequest",
    "ServiceResult",
    "TENANT_CLASSES",
    "TenantClass",
    "TenantStats",
    "merged_timeline",
    "outcome_summary",
    "tenant_arrivals",
    "tenant_class",
]
