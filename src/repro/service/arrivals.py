"""Seeded open-loop arrival synthesis for the service layer.

Every arrival instant, operation kind, and address is a pure function
of ``(seed, category, tenant, draw index)`` hashed through BLAKE2b —
the same interleaving-independent idiom as
:meth:`repro.faults.plan.FaultState._draw` — so one tenant's offered
stream never depends on how other tenants, workers, or shards
interleave.  A fixed seed produces the same traffic serially and under
the parallel experiment runner, bit for bit.

Three arrival processes cover the overload scenario family:

* ``poisson`` — memoryless constant-rate arrivals;
* ``mmpp`` — a two-state Markov-modulated Poisson process (quiet /
  burst), synthesized by thinning a peak-rate Poisson stream against a
  seeded state timeline, so bursts are genuinely clustered;
* ``diurnal`` — sinusoidally modulated rate (a compressed day), also
  by thinning, for slow load swings.

Thinning preserves the seeded-determinism property: the candidate
stream and the accept draws are both site-keyed, so the accepted
subsequence is reproducible regardless of evaluation order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import typing

from repro.controller.request import Op
from repro.service.config import ServiceConfig


@dataclasses.dataclass(frozen=True)
class Arrival:
    """One offered request: when, from whom, and what it asks for."""

    time: float
    tenant: int
    op: Op
    address: int


def _draw(seed: int, category: str, tenant: int, index: int) -> float:
    """Uniform [0, 1) draw for one (category, tenant, index) site."""
    payload = repr((seed, index, category, tenant)).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


def _exponential(u: float, rate: float) -> float:
    """Inverse-CDF exponential sample with mean ``1 / rate``."""
    return -math.log(1.0 - u) / rate


def _candidate_times(config: ServiceConfig, tenant: int,
                     rate: float) -> typing.Iterator[float]:
    """Poisson arrival instants at ``rate`` over the traffic window."""
    now = 0.0
    index = 0
    while True:
        now += _exponential(
            _draw(config.seed, "arrival", tenant, index), rate)
        index += 1
        if now >= config.duration_ns:
            return
        yield now


def _burst_windows(config: ServiceConfig,
                   tenant: int) -> typing.List[typing.Tuple[float, float]]:
    """Seeded [start, end) burst-state windows of the MMPP timeline.

    Sojourns alternate quiet/burst with exponential lengths whose means
    put the tenant in the burst state ``burst_fraction`` of the time on
    average (quiet mean = ``burst_ns * (1 - f) / f``).
    """
    fraction = config.burst_fraction
    if fraction <= 0.0:
        return []
    if fraction >= 1.0:
        return [(0.0, config.duration_ns)]
    quiet_mean = config.burst_ns * (1.0 - fraction) / fraction
    windows = []
    now = 0.0
    index = 0
    while now < config.duration_ns:
        quiet = _exponential(
            _draw(config.seed, "mmpp_quiet", tenant, index), 1.0 / quiet_mean)
        start = now + quiet
        if start >= config.duration_ns:
            break
        burst = _exponential(
            _draw(config.seed, "mmpp_burst", tenant, index),
            1.0 / config.burst_ns)
        windows.append((start, min(start + burst, config.duration_ns)))
        now = start + burst
        index += 1
    return windows


def tenant_times(config: ServiceConfig,
                 tenant: int) -> typing.List[float]:
    """Arrival instants for one tenant over ``[0, duration_ns)``."""
    rate = config.tenant_rate_per_ns(tenant)
    if config.arrival == "poisson":
        return list(_candidate_times(config, tenant, rate))
    if config.arrival == "mmpp":
        # Mean rate across states must equal the offered rate:
        # rate = (1 - f) * quiet + f * burst_factor * quiet.
        fraction = config.burst_fraction
        factor = config.burst_factor
        quiet_rate = rate / ((1.0 - fraction) + fraction * factor)
        burst_rate = quiet_rate * factor
        windows = _burst_windows(config, tenant)
        accept = quiet_rate / burst_rate

        def in_burst(time: float) -> bool:
            for start, end in windows:
                if start <= time < end:
                    return True
                if start > time:
                    return False
            return False

        times = []
        for index, time in enumerate(
                _candidate_times(config, tenant, burst_rate)):
            if in_burst(time):
                times.append(time)
            elif _draw(config.seed, "mmpp_thin", tenant, index) < accept:
                times.append(time)
        return times
    # Diurnal: thin a peak-rate stream against the sinusoidal envelope.
    amplitude = config.diurnal_amplitude
    peak = rate * (1.0 + amplitude)
    period = config.diurnal_period_ns
    times = []
    for index, time in enumerate(_candidate_times(config, tenant, peak)):
        level = 1.0 + amplitude * math.sin(2.0 * math.pi * time / period)
        if (_draw(config.seed, "diurnal_thin", tenant, index)
                < level / (1.0 + amplitude)):
            times.append(time)
    return times


def tenant_arrivals(config: ServiceConfig,
                    tenant: int) -> typing.List[Arrival]:
    """One tenant's full offered stream (instant, op, address)."""
    slots = max(1, config.footprint_bytes // config.request_bytes)
    arrivals = []
    for index, time in enumerate(tenant_times(config, tenant)):
        is_read = (_draw(config.seed, "op", tenant, index)
                   < config.read_fraction)
        slot = min(int(_draw(config.seed, "addr", tenant, index) * slots),
                   slots - 1)
        arrivals.append(Arrival(
            time=time, tenant=tenant,
            op=Op.READ if is_read else Op.WRITE,
            address=slot * config.request_bytes))
    return arrivals


def merged_timeline(config: ServiceConfig) -> typing.List[Arrival]:
    """All tenants' offered streams in deterministic arrival order.

    Sorted by ``(time, tenant)``; two tenants cannot collide at one
    instant *and* tie on tenant id, so the order is total and the
    injector replays it identically on every run.
    """
    merged: typing.List[Arrival] = []
    for tenant in range(config.tenants):
        merged.extend(tenant_arrivals(config, tenant))
    merged.sort(key=lambda arrival: (arrival.time, arrival.tenant))
    return merged
