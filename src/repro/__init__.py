"""DRAM-less (HPCA 2020) — a behavioural reproduction.

A discrete-event model of the paper's full stack: the multi-partition
PRAM device, the hardware-automated FPGA controller with multi-resource
aware interleaving and selective erasing, the eight-PE accelerator with
its server/agent near-data-processing model, every baseline data path
of Table I, the Polybench workload suite, and one experiment module per
table/figure of Section VI.

Quick taste::

    from repro import build_system, generate_traces, workload

    bundle = generate_traces(workload("gemver"), scale=0.1)
    result = build_system("DRAM-less").run(bundle)
    print(result.bandwidth_mb_s, result.energy_mj)

Package map:

=====================  ===========================================
``repro.sim``          discrete-event simulation kernel
``repro.pram``         the 3x nm multi-partition PRAM device model
``repro.controller``   the FPGA controller, schedulers, firmware
``repro.accel``        PEs, caches, MCU, server, programming model
``repro.storage``      flash/PRAM SSDs, DRAM buffers, NOR PRAM
``repro.host``         host CPU costs, PCIe, storage stack, P2P DMA
``repro.systems``      the Table I system configurations
``repro.workloads``    Polybench characterization and traces
``repro.energy``       the per-component energy model
``repro.experiments``  one module per table/figure
=====================  ===========================================
"""

from repro.controller import (
    MemoryRequest,
    Op,
    PramSubsystem,
    SchedulerPolicy,
)
from repro.pram import PramGeometry, PramModule, PramTimingParams
from repro.sim import Simulator
from repro.systems import (
    SYSTEM_NAMES,
    AcceleratedSystem,
    ExecutionResult,
    SystemConfig,
    build_system,
)
from repro.workloads import (
    POLYBENCH,
    Category,
    WorkloadSpec,
    all_workloads,
    generate_traces,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratedSystem",
    "Category",
    "ExecutionResult",
    "MemoryRequest",
    "Op",
    "POLYBENCH",
    "PramGeometry",
    "PramModule",
    "PramSubsystem",
    "PramTimingParams",
    "SYSTEM_NAMES",
    "SchedulerPolicy",
    "Simulator",
    "SystemConfig",
    "WorkloadSpec",
    "all_workloads",
    "build_system",
    "generate_traces",
    "workload",
]
