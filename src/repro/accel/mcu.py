"""The memory controller unit (MCU) and the MemoryBackend protocol.

The server's MCU "takes over the L2 cache misses of an agent and
administrates all the associated PRAM accesses" (Section III-B).  In
the model, the MCU is the funnel between PE cache misses and whatever
memory subsystem a system configuration installs: the PRAM subsystem
for DRAM-less, a DRAM+SSD path for the heterogeneous baselines, flash
for the integrated ones, and so on.

Backends implement four process-body methods plus two functional ones:

``read_block(address, size)``  -> bytes
``write_block(address, data)`` -> None
``flush()``                    -> None  (drain any write-back state)
``announce_writes(address, size)`` (zero-time write hint, optional)
``preload(address, data)`` / ``inspect(address, size)`` (zero-time)
"""

from __future__ import annotations

import typing

from repro.sim import Resource, Simulator


class MemoryBackend(typing.Protocol):
    """Structural protocol every system's memory path implements."""

    def read_block(self, address: int, size: int) -> typing.Generator:
        """Process body: fetch ``size`` bytes; returns the data."""

    def write_block(self, address: int, data: bytes) -> typing.Generator:
        """Process body: persist ``data`` at ``address``."""

    def flush(self) -> typing.Generator:
        """Process body: drain buffered writes to the backing medium."""

    def announce_writes(self, address: int, size: int) -> None:
        """Zero-time hint that the region will be overwritten soon."""

    def preload(self, address: int, data: bytes) -> None:
        """Zero-time data placement (experiment setup)."""

    def inspect(self, address: int, size: int) -> bytes:
        """Zero-time read-back (verification)."""


#: MCU request-administration overhead per miss, ns.
MCU_OVERHEAD_NS = 20.0

#: On-chip bus width between L2 and the MCU: 256-bit MC1 (Figure 6b)
#: at the 1 GHz core clock = 32 bytes/ns.
BUS_BYTES_PER_NS = 32.0


class MemoryControllerUnit:
    """Funnels PE cache misses into the installed backend.

    The two on-chip memory controllers (MC1/MC2) bound the number of
    concurrently administered requests to two.
    """

    def __init__(self, sim: Simulator, backend: MemoryBackend,
                 controllers: int = 2) -> None:
        if controllers < 1:
            raise ValueError(f"need >= 1 on-chip controller")
        self.sim = sim
        self.backend = backend
        self.ports = Resource(sim, capacity=controllers, name="mcu.ports")
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def fetch(self, address: int, size: int) -> typing.Generator:
        """Process body: service an L2 read miss; returns the data."""
        grant = self.ports.request()
        yield grant
        try:
            yield self.sim.timeout(MCU_OVERHEAD_NS)
            data = yield from self.backend.read_block(address, size)
            yield self.sim.timeout(size / BUS_BYTES_PER_NS)
        finally:
            self.ports.release(grant)
        self.reads += 1
        self.bytes_read += size
        return data

    def store(self, address: int, data: bytes) -> typing.Generator:
        """Process body: push a write-back/write-through block down.

        The on-chip controller is held only for the administration and
        bus transfer; the backend's media work (e.g. a 10-18 us PRAM
        program) proceeds afterwards without blocking the MCU, so other
        PEs' misses are not starved behind slow writes.
        """
        grant = self.ports.request()
        yield grant
        try:
            yield self.sim.timeout(MCU_OVERHEAD_NS)
            yield self.sim.timeout(len(data) / BUS_BYTES_PER_NS)
        finally:
            self.ports.release(grant)
        yield from self.backend.write_block(address, data)
        self.writes += 1
        self.bytes_written += len(data)
