"""The power/sleep controller (PSC).

The server uses the PSC to park agents while it installs their boot
addresses and to wake them for execution (Figure 9b steps ③-⑤).  The
PSC also keeps per-PE state-residency clocks, which the energy model
converts to joules at the per-state power levels.
"""

from __future__ import annotations

import enum
import typing

from repro.sim import Counter, Simulator, TimeSeries
from repro.telemetry.metrics import current_metrics
from repro.telemetry.timeseries import Sampler, TimeWeightedTracker

#: State-transition latencies, ns (clock/power gating sequencing).
SLEEP_TRANSITION_NS = 500.0
WAKE_TRANSITION_NS = 2_000.0


class PeState(enum.Enum):
    """Power states a PE can occupy."""

    SLEEP = "sleep"    # power-gated by the PSC
    IDLE = "idle"      # awake, waiting (e.g. memory stall)
    ACTIVE = "active"  # retiring instructions


#: Numeric level per state for the recorded timeline.
_STATE_LEVEL = {PeState.SLEEP: 0, PeState.IDLE: 1, PeState.ACTIVE: 2}


class PowerSleepController:
    """Tracks and switches the power state of every PE."""

    def __init__(self, sim: Simulator, pe_count: int) -> None:
        if pe_count < 1:
            raise ValueError(f"need at least one PE, got {pe_count}")
        self.sim = sim
        self.pe_count = pe_count
        self._state = [PeState.SLEEP] * pe_count
        self._since = [0.0] * pe_count
        self._residency: typing.List[typing.Dict[PeState, float]] = [
            {state: 0.0 for state in PeState} for _ in range(pe_count)
        ]
        self.transitions = 0
        self._awake_tracker: TimeWeightedTracker | None = None
        self._metrics = current_metrics()
        if self._metrics.enabled:
            prefix = self._metrics.component_prefix("psc")
            sampler = sim.sampler
            if isinstance(sampler, Sampler):
                # Windowed power envelope: time-weighted count of PEs
                # out of sleep (idle or active) per sampling window.
                self._awake_tracker = sampler.track(
                    f"{prefix}.window.awake_pes")
            # Numeric state timeline per PE (0=sleep, 1=idle, 2=active):
            # the per-PE run/sleep timeline the profile dashboard shows.
            self._state_series: typing.List[TimeSeries] | None = [
                self._metrics.series(f"{prefix}.pe{pe}.state")
                for pe in range(pe_count)
            ]
            self._transition_counter: Counter | None = (
                self._metrics.counter(f"{prefix}.transitions"))
            for pe in range(pe_count):
                self._state_series[pe].record(
                    sim.now, float(_STATE_LEVEL[PeState.SLEEP]))
        else:
            self._state_series = None
            self._transition_counter = None

    def state(self, pe_id: int) -> PeState:
        """Current state of one PE."""
        self._check(pe_id)
        return self._state[pe_id]

    def set_state(self, pe_id: int, state: PeState) -> None:
        """Zero-time state change (PE-internal active/idle switches)."""
        self._check(pe_id)
        self._accumulate(pe_id)
        if state is not self._state[pe_id]:
            self.transitions += 1
            if self._transition_counter is not None:
                self._transition_counter.add()
            if self._awake_tracker is not None:
                was_awake = self._state[pe_id] is not PeState.SLEEP
                is_awake = state is not PeState.SLEEP
                if is_awake != was_awake:
                    self._awake_tracker.adjust(
                        self.sim.now, 1.0 if is_awake else -1.0)
            if self._state_series is not None:
                self._state_series[pe_id].record(
                    self.sim.now, float(_STATE_LEVEL[state]))
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.instant(f"pe{pe_id}->{state.value}", "psc",
                               self.sim.now)
        self._state[pe_id] = state

    def sleep(self, pe_id: int) -> typing.Generator:
        """Process body: power-gate a PE."""
        self._check(pe_id)
        yield self.sim.timeout(SLEEP_TRANSITION_NS)
        self.set_state(pe_id, PeState.SLEEP)

    def wake(self, pe_id: int) -> typing.Generator:
        """Process body: bring a PE out of sleep into idle."""
        self._check(pe_id)
        if self._state[pe_id] is not PeState.SLEEP:
            raise ValueError(f"PE {pe_id} is not asleep")
        yield self.sim.timeout(WAKE_TRANSITION_NS)
        self.set_state(pe_id, PeState.IDLE)

    def residency(self, pe_id: int) -> typing.Dict[PeState, float]:
        """Nanoseconds spent in each state, up to the current instant."""
        self._check(pe_id)
        self._accumulate(pe_id)
        return dict(self._residency[pe_id])

    # ------------------------------------------------------------------
    def _accumulate(self, pe_id: int) -> None:
        now = self.sim.now
        elapsed = now - self._since[pe_id]
        if elapsed > 0:
            self._residency[pe_id][self._state[pe_id]] += elapsed
            if self._metrics.enabled:
                # Record under the owning PE's *assigned* prefix so a
                # multi-system run keeps each PE's clock distinct.
                self._metrics.gauge(
                    f"{self._metrics.latest_prefix(f'pe.{pe_id}')}.sleep_ns",
                    self._residency[pe_id][PeState.SLEEP])
        self._since[pe_id] = now

    def _check(self, pe_id: int) -> None:
        if not 0 <= pe_id < self.pe_count:
            raise ValueError(f"PE id {pe_id} out of range")
