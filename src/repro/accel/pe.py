"""The processing-element execution engine.

A PE runs a kernel trace: compute bursts on its functional units,
loads through L1/L2 (misses stall the PE and go to the MCU), stores
through a small store buffer that drains to the MCU in the background
(the PE only stalls when the buffer is full — which is exactly what
happens on slow write media, producing the write-driven IPC collapse
of Figure 19).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.accel.cache import BLOCK_BYTES, L1_HIT_NS, L2_HIT_NS, BlockCache
from repro.accel.functional_unit import FunctionalUnitSet
from repro.accel.isa import ComputeOp, KernelOp, LoadOp, StoreOp
from repro.accel.mcu import MemoryControllerUnit
from repro.sim import Simulator, Store, TimeSeries
from repro.telemetry.metrics import current_metrics
from repro.telemetry.timeseries import Sampler, TimeWeightedTracker

#: State codes recorded into the activity series.
STATE_SLEEP = 0.0
STATE_IDLE = 1.0
STATE_ACTIVE = 2.0

#: Default store-buffer depth, blocks.
STORE_BUFFER_DEPTH = 4

#: Default cache capacities (Section VI's platform).
L1_BYTES = 64 * 1024
L2_BYTES = 512 * 1024


@dataclasses.dataclass
class PeStats:
    """Per-PE execution statistics."""

    instructions: int = 0
    compute_ns: float = 0.0
    stall_ns: float = 0.0
    loads: int = 0
    stores: int = 0
    l2_miss_ns: float = 0.0
    store_stall_ns: float = 0.0

    @property
    def busy_ns(self) -> float:
        """Compute plus stall time."""
        return self.compute_ns + self.stall_ns


class ProcessingElement:
    """One SIMD core with its private cache hierarchy."""

    def __init__(self, sim: Simulator, pe_id: int,
                 mcu: MemoryControllerUnit,
                 clock_ghz: float = 1.0,
                 l1_bytes: int = L1_BYTES,
                 l2_bytes: int = L2_BYTES,
                 block_bytes: int = BLOCK_BYTES,
                 store_buffer_depth: int = STORE_BUFFER_DEPTH) -> None:
        self.sim = sim
        self.pe_id = pe_id
        self.mcu = mcu
        self.units = FunctionalUnitSet(clock_ghz)
        self.l1 = BlockCache(l1_bytes, block_bytes, hit_ns=L1_HIT_NS,
                             name=f"pe{pe_id}.l1")
        self.l2 = BlockCache(l2_bytes, block_bytes, hit_ns=L2_HIT_NS,
                             name=f"pe{pe_id}.l2")
        self.block_bytes = block_bytes
        self.stats = PeStats()
        self.activity = TimeSeries(f"pe{pe_id}.activity")
        self.ipc_series = TimeSeries(f"pe{pe_id}.ipc")
        self._track = f"pe{pe_id}"
        metrics = current_metrics()
        self._store_tracker: TimeWeightedTracker | None = None
        if metrics.enabled:
            prefix = metrics.component_prefix(f"pe.{pe_id}")
            metrics.attach(f"{prefix}.activity", self.activity)
            metrics.attach(f"{prefix}.ipc", self.ipc_series)
            self._store_depth_series: TimeSeries | None = metrics.series(
                f"{prefix}.store_queue_depth")
            sampler = sim.sampler
            if isinstance(sampler, Sampler):
                # Windowed write pressure: time-weighted mean of the
                # store-buffer backlog per sampling window.
                self._store_tracker = sampler.track(
                    f"{prefix}.window.store_queue")
        else:
            self._store_depth_series = None
        self._state = STATE_SLEEP
        self.activity.record(sim.now, STATE_SLEEP)
        self.ipc_series.record(sim.now, 0.0)
        self._store_queue: Store = Store(sim, capacity=store_buffer_depth,
                                         name=f"pe{pe_id}.stores")
        self._outstanding_stores = 0
        self._drained_event = None
        sim.process(self._store_drainer(), name=f"pe{pe_id}.drainer")

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def run_kernel(self, ops: typing.Sequence[KernelOp]) -> typing.Generator:
        """Process body: execute a kernel trace to completion."""
        self._set_state(STATE_IDLE)
        for op in ops:
            if isinstance(op, ComputeOp):
                yield from self._compute(op)
            elif isinstance(op, LoadOp):
                yield from self._load(op)
            elif isinstance(op, StoreOp):
                yield from self._store(op)
            else:
                raise TypeError(f"unknown kernel op: {op!r}")
        yield from self._drain_stores()
        self._set_state(STATE_IDLE)

    # ------------------------------------------------------------------
    # Operation handlers
    # ------------------------------------------------------------------
    def _compute(self, op: ComputeOp) -> typing.Generator:
        self._set_state(STATE_ACTIVE)
        duration = self.units.burst_time_ns(op.scalar_ops,
                                            op.dsp_intrinsics)
        ipc = op.scalar_ops / max(1.0, duration / self.units.cycle_ns)
        self.ipc_series.record(self.sim.now, ipc)
        start = self.sim.now
        yield self.sim.timeout(duration)
        self.ipc_series.record(self.sim.now, 0.0)
        self.stats.instructions += op.scalar_ops
        self.stats.compute_ns += duration
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit("compute", self._track, start, self.sim.now,
                        ops=op.scalar_ops)

    def _load(self, op: LoadOp) -> typing.Generator:
        self.stats.loads += 1
        self.stats.instructions += 1
        block = self.l1.block_of(op.address)
        if self.l1.lookup(block):
            self._set_state(STATE_ACTIVE)
            yield self.sim.timeout(self.l1.hit_ns)
            return
        if self.l2.lookup(block):
            self._set_state(STATE_ACTIVE)
            yield self.sim.timeout(self.l2.hit_ns)
            self.l1.insert(block)
            return
        # L2 miss: the PE stalls while the MCU administrates the fetch.
        self._set_state(STATE_IDLE)
        start = self.sim.now
        yield from self.mcu.fetch(block * self.block_bytes,
                                  self.block_bytes)
        elapsed = self.sim.now - start
        self.stats.stall_ns += elapsed
        self.stats.l2_miss_ns += elapsed
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit("mem_stall", self._track, start, self.sim.now,
                        address=op.address)
        self.l2.insert(block)
        self.l1.insert(block)
        self._set_state(STATE_ACTIVE)

    def _store(self, op: StoreOp) -> typing.Generator:
        self.stats.stores += 1
        self.stats.instructions += 1
        block = self.l1.block_of(op.address)
        # Keep the block visible to later loads.
        self.l1.insert(block)
        self.l2.insert(block)
        payload = bytes([self.pe_id + 1]) * op.size
        start = self.sim.now
        self._outstanding_stores += 1
        if self._store_depth_series is not None:
            self._store_depth_series.record(
                self.sim.now, float(self._outstanding_stores))
        if self._store_tracker is not None:
            self._store_tracker.adjust(self.sim.now, 1.0)
        yield self._store_queue.put((op.address, payload))
        waited = self.sim.now - start
        if waited > 0:  # buffer was full: a real write-pressure stall
            self.stats.stall_ns += waited
            self.stats.store_stall_ns += waited
            self._set_state(STATE_IDLE)
        self._set_state(STATE_ACTIVE)

    # ------------------------------------------------------------------
    # Store buffer
    # ------------------------------------------------------------------
    def _store_drainer(self) -> typing.Generator:
        while True:
            address, payload = yield self._store_queue.get()
            yield from self.mcu.store(address, payload)
            self._outstanding_stores -= 1
            if self._store_depth_series is not None:
                self._store_depth_series.record(
                    self.sim.now, float(self._outstanding_stores))
            if self._store_tracker is not None:
                self._store_tracker.adjust(self.sim.now, -1.0)
            if self._outstanding_stores == 0 and (
                    self._drained_event is not None):
                self._drained_event.succeed()
                self._drained_event = None

    def _drain_stores(self) -> typing.Generator:
        if self._outstanding_stores == 0:
            return
        self._set_state(STATE_IDLE)
        start = self.sim.now
        self._drained_event = self.sim.event(f"pe{self.pe_id}.drained")
        yield self._drained_event
        self.stats.stall_ns += self.sim.now - start
        self.stats.store_stall_ns += self.sim.now - start
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit("store_drain", self._track, start, self.sim.now)

    # ------------------------------------------------------------------
    def _set_state(self, state: float) -> None:
        if state != self._state:
            self._state = state
            self.activity.record(self.sim.now, state)

    @property
    def mean_ipc(self) -> float:
        """Instructions per cycle over the PE's busy window."""
        if self.stats.busy_ns <= 0:
            return 0.0
        cycles = self.stats.busy_ns / self.units.cycle_ns
        return self.stats.instructions / cycles
