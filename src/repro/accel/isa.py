"""Trace-level operation vocabulary for kernel execution.

Workloads compile to per-agent operation streams.  Three operations
exist at this altitude: block loads, block stores, and compute bursts.
A compute burst carries a scalar-operation count and whether the kernel
was built with DSP intrinsics (multi-way multiply/add), which changes
how many operations the functional units retire per cycle.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class LoadOp:
    """Read ``size`` bytes at ``address`` (through the cache hierarchy)."""

    address: int
    size: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"negative address: {self.address}")
        if self.size < 1:
            raise ValueError(f"load size must be >= 1, got {self.size}")


@dataclasses.dataclass(frozen=True)
class StoreOp:
    """Write ``size`` bytes at ``address`` (through the store buffer)."""

    address: int
    size: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"negative address: {self.address}")
        if self.size < 1:
            raise ValueError(f"store size must be >= 1, got {self.size}")


@dataclasses.dataclass(frozen=True)
class ComputeOp:
    """Retire ``scalar_ops`` operations on the functional units."""

    scalar_ops: int
    dsp_intrinsics: bool = False

    def __post_init__(self) -> None:
        if self.scalar_ops < 1:
            raise ValueError(
                f"compute burst needs >= 1 op, got {self.scalar_ops}"
            )


#: Any trace element.
KernelOp = typing.Union[LoadOp, StoreOp, ComputeOp]
