"""The multicore accelerator (Figure 6): PEs, caches, buses, server.

The modelled part is TMS320C6678-like: eight 1 GHz PEs, each with eight
functional units (two .M multipliers, two .L logic, two .S arithmetic /
branch, two .D load-store), 64 KB L1 and 512 KB L2 per PE, all joined
by the crossbar network, modelled here as the shared MC1/MC2 on-chip
buses inside the MCU.  One PE acts as the *server* (kernel scheduling, MCU
ownership); the remaining seven are *agents* doing the data processing.

Subpackages:

* :mod:`~repro.accel.isa` — the trace-level operation vocabulary;
* :mod:`~repro.accel.functional_unit` — .M/.L/.S/.D issue model;
* :mod:`~repro.accel.cache` — L1/L2 block caches;
* :mod:`~repro.accel.psc` — the power/sleep controller;
* :mod:`~repro.accel.mcu` — the memory controller unit and the
  MemoryBackend protocol every system configuration implements;
* :mod:`~repro.accel.kernel` — kernel images and the
  packData/pushData/unpackData programming model (Figure 10);
* :mod:`~repro.accel.pe` — the processing-element execution engine;
* :mod:`~repro.accel.server` — the server PE's offload protocol
  (Figure 9b);
* :mod:`~repro.accel.accelerator` — the full assembly.
"""

from repro.accel.accelerator import Accelerator, AcceleratorConfig, AcceleratorStats
from repro.accel.cache import BlockCache
from repro.accel.functional_unit import FunctionalUnitSet
from repro.accel.isa import ComputeOp, KernelOp, LoadOp, StoreOp
from repro.accel.kernel import KernelImage, pack_data, push_data, unpack_data
from repro.accel.mcu import MemoryBackend, MemoryControllerUnit
from repro.accel.pe import PeStats, ProcessingElement
from repro.accel.psc import PeState, PowerSleepController
from repro.accel.server import ServerPe

__all__ = [
    "Accelerator",
    "AcceleratorConfig",
    "AcceleratorStats",
    "BlockCache",
    "ComputeOp",
    "FunctionalUnitSet",
    "KernelImage",
    "KernelOp",
    "LoadOp",
    "MemoryBackend",
    "MemoryControllerUnit",
    "PeState",
    "PeStats",
    "ProcessingElement",
    "PowerSleepController",
    "ServerPe",
    "StoreOp",
    "pack_data",
    "push_data",
    "unpack_data",
]
