"""Kernel images and the programming model of Figure 10.

Users pack per-app code segments plus shared code into a flat image
(``pack_data``), push it over PCIe into the accelerator's memory
(``push_data``), and the server parses it back (``unpack_data``),
loading each segment at the address the metadata names and booting
agents at the recorded entry points.

The wire format is deliberately simple and self-describing::

    magic "DLKI" | u32 segment_count
    per segment: u32 name_len | name utf-8 | u64 load_address
                 | u64 entry_offset | u32 payload_len | payload
"""

from __future__ import annotations

import dataclasses
import struct
import typing

MAGIC = b"DLKI"


@dataclasses.dataclass(frozen=True)
class KernelSegment:
    """One code segment: an app kernel or the shared common code."""

    name: str
    load_address: int
    entry_offset: int
    payload: bytes

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("segment needs a name")
        if self.load_address < 0 or self.entry_offset < 0:
            raise ValueError("addresses must be non-negative")
        if self.entry_offset > len(self.payload):
            raise ValueError("entry offset beyond the segment payload")

    @property
    def boot_address(self) -> int:
        """Absolute entry point once loaded."""
        return self.load_address + self.entry_offset


@dataclasses.dataclass(frozen=True)
class KernelImage:
    """A parsed kernel image: ordered segments."""

    segments: typing.Tuple[KernelSegment, ...]

    def segment(self, name: str) -> KernelSegment:
        """Look up one segment by name."""
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(f"no segment named {name!r}")

    @property
    def names(self) -> typing.Tuple[str, ...]:
        """Segment names in image order."""
        return tuple(segment.name for segment in self.segments)

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all segments."""
        return sum(len(segment.payload) for segment in self.segments)


def pack_data(segments: typing.Sequence[KernelSegment]) -> bytes:
    """Serialize segments into the flat image format (packData)."""
    if not segments:
        raise ValueError("an image needs at least one segment")
    parts = [MAGIC, struct.pack("<I", len(segments))]
    for segment in segments:
        name = segment.name.encode("utf-8")
        parts.append(struct.pack("<I", len(name)))
        parts.append(name)
        parts.append(struct.pack("<QQI", segment.load_address,
                                 segment.entry_offset,
                                 len(segment.payload)))
        parts.append(segment.payload)
    return b"".join(parts)


def unpack_data(image: bytes) -> KernelImage:
    """Parse a flat image back into segments (unpackData)."""
    if image[:4] != MAGIC:
        raise ValueError("not a kernel image (bad magic)")
    offset = 4
    try:
        (count,) = struct.unpack_from("<I", image, offset)
        offset += 4
        segments = []
        for _ in range(count):
            (name_len,) = struct.unpack_from("<I", image, offset)
            offset += 4
            name = image[offset:offset + name_len].decode("utf-8")
            offset += name_len
            load_address, entry_offset, payload_len = struct.unpack_from(
                "<QQI", image, offset)
            offset += struct.calcsize("<QQI")
            payload = image[offset:offset + payload_len]
            if len(payload) != payload_len:
                raise ValueError("truncated segment payload")
            offset += payload_len
            segments.append(KernelSegment(name, load_address,
                                          entry_offset, payload))
    except struct.error as error:
        raise ValueError(f"truncated kernel image: {error}") from error
    if offset != len(image):
        raise ValueError(f"{len(image) - offset} trailing bytes in image")
    return KernelImage(tuple(segments))


def push_data(sim, link, image: bytes) -> typing.Generator:
    """Process body: ship the image over a PCIe link (pushData).

    ``link`` is any object with a ``transfer(size)`` process method
    (e.g. :class:`repro.host.PcieLink`).
    """
    yield sim.process(link.transfer(len(image)))
