"""The full accelerator assembly (Figure 6a).

``Accelerator`` wires eight PEs (one server + seven agents), the PSC,
the MCU, and whatever memory backend the system configuration
installs, and exposes one entry point — :meth:`Accelerator.execute` —
that runs a packed kernel image across the agents and returns the
statistics every figure consumes (time, aggregate IPC series, per-PE
residency for energy).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.accel.kernel import KernelSegment, pack_data
from repro.accel.mcu import MemoryBackend, MemoryControllerUnit
from repro.accel.pe import (
    STATE_ACTIVE,
    STATE_IDLE,
    STATE_SLEEP,
    ProcessingElement,
)
from repro.accel.psc import PowerSleepController
from repro.accel.server import ServerPe
from repro.energy import EnergyModel
from repro.sim import Simulator, TimeSeries


@dataclasses.dataclass(frozen=True)
class AcceleratorConfig:
    """Platform shape (Section VI: eight 1 GHz embedded processors)."""

    pe_count: int = 8
    clock_ghz: float = 1.0
    l1_bytes: int = 64 * 1024
    l2_bytes: int = 512 * 1024
    block_bytes: int = 512
    store_buffer_depth: int = 4
    #: Where kernel images land in memory — the "designated image
    #: space" of Figure 9b, clear of any workload data region.
    image_base: int = 128 * 1024 * 1024
    image_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.pe_count < 2:
            raise ValueError("need at least a server and one agent")
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")


@dataclasses.dataclass
class AcceleratorStats:
    """What one kernel execution produced."""

    elapsed_ns: float
    instructions: int
    aggregate_ipc: TimeSeries
    compute_ns: float
    stall_ns: float
    store_stall_ns: float
    l2_misses: int
    #: Per-PE map of state code (STATE_SLEEP/IDLE/ACTIVE) -> ns spent.
    pe_residency: typing.List[typing.Dict[float, float]]

    @property
    def mean_aggregate_ipc(self) -> float:
        """Time-weighted mean of the summed agent IPC."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.aggregate_ipc.time_weighted_mean(0.0, self.elapsed_ns)


class Accelerator:
    """Eight-PE accelerator with a pluggable memory backend."""

    def __init__(self, sim: Simulator, backend: MemoryBackend,
                 config: AcceleratorConfig = AcceleratorConfig()) -> None:
        self.sim = sim
        self.config = config
        self.backend = backend
        self.mcu = MemoryControllerUnit(sim, backend)
        self.psc = PowerSleepController(sim, config.pe_count)
        self.pes = [
            ProcessingElement(
                sim, pe_id, self.mcu, clock_ghz=config.clock_ghz,
                l1_bytes=config.l1_bytes, l2_bytes=config.l2_bytes,
                block_bytes=config.block_bytes,
                store_buffer_depth=config.store_buffer_depth)
            for pe_id in range(config.pe_count)
        ]
        # PE 0 is the server; the rest are agents (Section III-B).
        self.agents = self.pes[1:]
        self.server = ServerPe(sim, self.mcu, self.psc, self.agents)

    @property
    def agent_count(self) -> int:
        """Number of data-processing PEs."""
        return len(self.agents)

    # ------------------------------------------------------------------
    # Execution entry point
    # ------------------------------------------------------------------
    def execute(self, traces: typing.Sequence[typing.Sequence],
                kernel_name: str = "kernel",
                output_regions: typing.Sequence[
                    typing.Tuple[int, int]] = (),
                flush_backend: bool = True,
                collect: bool = True) -> typing.Generator:
        """Process body: run per-agent traces; returns AcceleratorStats.

        Builds a minimal one-segment kernel image for the run (the
        payload size models the code footprint), loads it through the
        server, and launches every trace.  Pass ``flush_backend=False``
        when the system model wants to time the writeback phase
        separately, and ``collect=False`` when running one round of a
        multi-round workload (use :meth:`collect_stats` over the whole
        window afterwards).
        """
        start = self.sim.now
        image_bytes = pack_data([
            KernelSegment(kernel_name, load_address=self.config.image_base,
                          entry_offset=0,
                          payload=bytes(self.config.image_bytes)),
        ])
        image = yield from self.server.load_image(
            image_bytes, output_regions=output_regions)
        yield from self.server.run_all(image, kernel_name, traces)
        if flush_backend:
            yield from self.backend.flush()
        if not collect:
            return None
        return self._collect(start)

    def collect_stats(self, start: float) -> "AcceleratorStats":
        """Statistics over [start, now] — for multi-round runs."""
        return self._collect(start)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def _collect(self, start: float) -> AcceleratorStats:
        elapsed = self.sim.now - start
        instructions = sum(pe.stats.instructions for pe in self.agents)
        aggregate = _sum_series([pe.ipc_series for pe in self.agents],
                                name="aggregate_ipc")
        residency = [
            _state_residency(pe.activity, start, self.sim.now)
            for pe in self.pes
        ]
        return AcceleratorStats(
            elapsed_ns=elapsed,
            instructions=instructions,
            aggregate_ipc=aggregate,
            compute_ns=sum(pe.stats.compute_ns for pe in self.agents),
            stall_ns=sum(pe.stats.stall_ns for pe in self.agents),
            store_stall_ns=sum(pe.stats.store_stall_ns
                               for pe in self.agents),
            l2_misses=sum(pe.l2.misses for pe in self.agents),
            pe_residency=residency,
        )

    def power_series(self, model: EnergyModel) -> TimeSeries:
        """Instantaneous core power over the whole run (Figures 20a/21a).

        Sums every PE's state series mapped through the per-state power
        levels.
        """
        mapped = []
        for pe in self.pes:
            watts = TimeSeries(f"pe{pe.pe_id}.watts")
            for time, state in zip(pe.activity.times, pe.activity.values):
                watts.record(time, _state_power(state, model))
            mapped.append(watts)
        return _sum_series(mapped, name="core_power_w")


def _state_residency(activity: TimeSeries, start: float,
                     end: float) -> typing.Dict[float, float]:
    """Nanoseconds spent in each state code over [start, end)."""
    residency = {STATE_SLEEP: 0.0, STATE_IDLE: 0.0, STATE_ACTIVE: 0.0}
    if end <= start:
        return residency
    cursor = start
    state = activity.value_at(start)
    for time, value in zip(activity.times, activity.values):
        if time <= start:
            continue
        if time >= end:
            break
        residency[state] = residency.get(state, 0.0) + (time - cursor)
        cursor = time
        state = value
    residency[state] = residency.get(state, 0.0) + (end - cursor)
    return residency


def _state_power(state: float, model: EnergyModel) -> float:
    if state == STATE_ACTIVE:
        return model.pe_active_w
    if state == STATE_IDLE:
        return model.pe_idle_w
    return model.pe_sleep_w


def _sum_series(series: typing.Sequence[TimeSeries],
                name: str) -> TimeSeries:
    """Pointwise sum of step functions."""
    times = sorted({t for s in series for t in s.times})
    total = TimeSeries(name)
    for time in times:
        total.record(time, sum(s.value_at(time) for s in series))
    return total
