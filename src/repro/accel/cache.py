"""L1/L2 block caches.

The caches are residency models at 512-byte block granularity (the
server's request size): hits cost a fixed latency, misses defer to the
next level.  Capacity follows the evaluated platform: 64 KB L1 and
512 KB L2 per PE.
"""

from __future__ import annotations

import collections
import typing

#: Block size the hierarchy operates at (the L2 line / request unit).
BLOCK_BYTES = 512

#: Hit latencies, nanoseconds (1 GHz core: 1-2 cycles L1, ~7 cycles L2).
L1_HIT_NS = 1.0
L2_HIT_NS = 7.0


class BlockCache:
    """LRU cache of block ids with hit/miss accounting."""

    def __init__(self, capacity_bytes: int, block_bytes: int = BLOCK_BYTES,
                 hit_ns: float = L1_HIT_NS, name: str = "cache") -> None:
        if capacity_bytes < block_bytes:
            raise ValueError(
                f"{name}: capacity {capacity_bytes} below one block"
            )
        self.name = name
        self.block_bytes = block_bytes
        self.capacity_blocks = capacity_bytes // block_bytes
        self.hit_ns = hit_ns
        self._blocks: "collections.OrderedDict[int, bool]" = (
            collections.OrderedDict())
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block: int) -> bool:
        return block in self._blocks

    def block_of(self, address: int) -> int:
        """Block id containing ``address``."""
        if address < 0:
            raise ValueError(f"negative address: {address}")
        return address // self.block_bytes

    def lookup(self, block: int) -> bool:
        """Hit test with LRU refresh."""
        if block in self._blocks:
            self._blocks.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, block: int, dirty: bool = False
               ) -> typing.Tuple[int, bool] | None:
        """Install a block; returns evicted ``(block, dirty)`` if any."""
        evicted = None
        if block not in self._blocks and (
                len(self._blocks) >= self.capacity_blocks):
            evicted = self._blocks.popitem(last=False)
        previous = self._blocks.get(block, False)
        self._blocks[block] = previous or dirty
        self._blocks.move_to_end(block)
        return evicted

    def invalidate(self, block: int) -> None:
        """Drop a block (coherence with a sibling writer)."""
        self._blocks.pop(block, None)

    def clear(self) -> None:
        """Cold-start state."""
        self._blocks.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 when no lookups yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
