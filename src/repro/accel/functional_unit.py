"""Functional-unit issue model (Figure 6b).

Each PE owns two sets of four units (.M multiply, .L logic, .S
arithmetic/branch, .D load/store) over two register files.  Plain
RISC-compiled code issues on the two .S and two .L units; kernels built
with DSP intrinsics additionally light up the two .M units with
multi-way multiply/accumulate, roughly doubling arithmetic throughput —
the optimization Section VI applies to the ported Polybench suite.
"""

from __future__ import annotations

import math


class FunctionalUnitSet:
    """Cycle cost of compute bursts on one PE's eight functional units."""

    M_UNITS = 2
    L_UNITS = 2
    S_UNITS = 2
    D_UNITS = 2

    #: Multi-way MAC: one .M intrinsic retires this many scalar ops.
    INTRINSIC_WAYS = 4

    def __init__(self, clock_ghz: float = 1.0) -> None:
        if clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {clock_ghz}")
        self.clock_ghz = clock_ghz
        self.ops_retired = 0

    @property
    def cycle_ns(self) -> float:
        """One core cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    def ops_per_cycle(self, dsp_intrinsics: bool) -> int:
        """Scalar operations retired per cycle."""
        base = self.L_UNITS + self.S_UNITS  # plain RISC arithmetic
        if dsp_intrinsics:
            return base + self.M_UNITS * self.INTRINSIC_WAYS
        return base

    def cycles_for(self, scalar_ops: int, dsp_intrinsics: bool) -> int:
        """Whole cycles to retire ``scalar_ops`` operations."""
        if scalar_ops < 1:
            raise ValueError(f"need >= 1 op, got {scalar_ops}")
        return math.ceil(scalar_ops / self.ops_per_cycle(dsp_intrinsics))

    def burst_time_ns(self, scalar_ops: int, dsp_intrinsics: bool) -> float:
        """Wall time of a compute burst."""
        self.ops_retired += scalar_ops
        return self.cycles_for(scalar_ops, dsp_intrinsics) * self.cycle_ns
