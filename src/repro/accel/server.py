"""The server PE: kernel offload and agent scheduling (Figure 9b).

One PE is designated the server.  It receives the kernel image from
the host (over PCIe), writes it into the accelerator's memory,
announces the image's output regions as write hints (feeding selective
erasing), and walks each idle agent through the
sleep → set-boot-address → wake → execute sequence.
"""

from __future__ import annotations

import typing

from repro.accel.kernel import KernelImage, unpack_data
from repro.accel.mcu import MemoryControllerUnit
from repro.accel.pe import ProcessingElement
from repro.accel.psc import PowerSleepController
from repro.sim import Simulator

#: Server-side image parsing cost per segment, ns (metadata walk).
PARSE_SEGMENT_NS = 1_000.0

#: Per-agent scheduling poll (Figure 10's polling step), ns.
POLL_AGENT_NS = 200.0


class ServerPe:
    """Kernel management running on the designated server PE."""

    def __init__(self, sim: Simulator, mcu: MemoryControllerUnit,
                 psc: PowerSleepController,
                 agents: typing.Sequence[ProcessingElement]) -> None:
        if not agents:
            raise ValueError("the server needs at least one agent")
        self.sim = sim
        self.mcu = mcu
        self.psc = psc
        self.agents = list(agents)
        self.images_loaded = 0
        self.kernels_launched = 0

    # ------------------------------------------------------------------
    # Figure 9b protocol
    # ------------------------------------------------------------------
    def load_image(self, image_bytes: bytes,
                   output_regions: typing.Sequence[
                       typing.Tuple[int, int]] = ()) -> typing.Generator:
        """Process body: parse the image and install its segments.

        ``output_regions`` are (address, size) pairs the kernel will
        write; the server forwards them to the backend as write hints
        while the kernel loads (Section V-A's selective-erasing window).
        Returns the parsed :class:`KernelImage`.
        """
        image = unpack_data(image_bytes)
        yield self.sim.timeout(PARSE_SEGMENT_NS * len(image.segments))
        for address, size in output_regions:
            self.mcu.backend.announce_writes(address, size)
        for segment in image.segments:
            cursor = 0
            while cursor < len(segment.payload):
                chunk = segment.payload[cursor:cursor + 512]
                yield from self.mcu.store(segment.load_address + cursor,
                                          chunk)
                cursor += len(chunk)
        self.images_loaded += 1
        return image

    def launch(self, agent_index: int, image: KernelImage,
               segment_name: str,
               ops: typing.Sequence) -> typing.Generator:
        """Process body: boot one agent into a kernel and run it.

        Follows Figure 9b: poll the agent, PSC-sleep it, install the
        boot address (the segment's entry point), PSC-wake it, and let
        it execute the trace.
        """
        if not 0 <= agent_index < len(self.agents):
            raise ValueError(f"no agent {agent_index}")
        agent = self.agents[agent_index]
        boot_address = image.segment(segment_name).boot_address
        yield self.sim.timeout(POLL_AGENT_NS)
        yield from self.psc.sleep(agent.pe_id)
        # The boot address install is one L2-resident write on the
        # agent's magic address — negligible but not free.
        yield self.sim.timeout(agent.l2.hit_ns)
        yield from self.psc.wake(agent.pe_id)
        self.kernels_launched += 1
        _ = boot_address  # the trace stands in for fetching at the entry
        yield from agent.run_kernel(ops)

    def run_all(self, image: KernelImage, segment_name: str,
                traces: typing.Sequence[typing.Sequence]
                ) -> typing.Generator:
        """Process body: launch one kernel per agent, in parallel."""
        if len(traces) > len(self.agents):
            raise ValueError(
                f"{len(traces)} traces but only {len(self.agents)} agents"
            )
        pending = [
            self.sim.process(self.launch(i, image, segment_name, trace))
            for i, trace in enumerate(traces)
        ]
        yield self.sim.all_of(pending)
