"""The two-channel PRAM subsystem the accelerator's MCU talks to.

This is the top of the FPGA: it owns one
:class:`~repro.controller.channel.ChannelController` per LPDDR2-NVM
channel, splits incoming requests across them, and optionally routes
every request through the firmware baseline first.
"""

from __future__ import annotations

import typing

from repro.analysis.conformance import ProtocolChecker
from repro.controller.channel import ChannelController
from repro.controller.firmware import FirmwareModel
from repro.controller.initializer import Initializer
from repro.controller.request import MemoryRequest, Op, RequestStatus
from repro.controller.scheduler import SchedulerPolicy, WriteHintStore
from repro.controller.translator import AccessPlanner
from repro.faults.plan import FaultConfig, FaultState
from repro.pram.address import AddressMap
from repro.pram.constants import PramGeometry, PramTimingParams
from repro.pram.errors import PramError
from repro.pram.module import PramModule
from repro.sim import Simulator
from repro.sim.compiled import (
    BACKENDS,
    BackendDecision,
    CompiledKernel,
    current_backend,
    record_decision,
    stream_fallback_reasons,
    subsystem_fallback_reasons,
)
from repro.sim.stats import LatencySketch
from repro.telemetry.metrics import current_metrics
from repro.telemetry.timeseries import Sampler, TimeWeightedTracker


class PramSubsystem:
    """Hardware-automated PRAM memory subsystem (Figure 6's FPGA half)."""

    def __init__(self, sim: Simulator,
                 geometry: PramGeometry = PramGeometry(),
                 params: PramTimingParams = PramTimingParams(),
                 policy: SchedulerPolicy = SchedulerPolicy.FINAL,
                 phase_skipping: bool = True,
                 firmware: FirmwareModel | None = None,
                 wear_leveling: bool = False,
                 gap_write_interval: int = 100,
                 write_pausing: bool = False,
                 monitor: ProtocolChecker | None = None,
                 faults: FaultConfig | None = None) -> None:
        self.sim = sim
        # Opt-in LPDDR2-NVM conformance layer (repro.analysis): shared
        # across channels so one checker sees the whole command stream.
        self.monitor = monitor
        self.geometry = geometry
        self.params = params
        self.policy = policy
        self.address_map = AddressMap(geometry)
        self.planner = AccessPlanner(self.address_map)
        self.hint_stores = [WriteHintStore() for _ in range(geometry.channels)]
        self.firmware = firmware
        # Optional fault injection (repro.faults): one shared state so
        # counters aggregate subsystem-wide; decisions stay per-site.
        self.fault_config = faults
        self.faults = FaultState(faults) if faults is not None else None
        self.modules = [
            [PramModule(geometry, params, channel_id=ch, module_id=m,
                        faults=self.faults)
             for m in range(geometry.modules_per_channel)]
            for ch in range(geometry.channels)
        ]
        self.channels = [
            ChannelController(
                sim, self.modules[ch], policy=policy,
                address_map=self.address_map,
                phase_skipping=phase_skipping,
                hint_store=self.hint_stores[ch], channel_id=ch,
                wear_leveling=wear_leveling,
                gap_write_interval=gap_write_interval,
                write_pausing=write_pausing,
                monitor=monitor,
                faults=self.faults)
            for ch in range(geometry.channels)
        ]
        self.boot_latency_ns = Initializer().boot(
            [m for channel in self.modules for m in channel])
        self.requests_completed = 0
        self.requests_degraded = 0
        self.requests_failed = 0
        self._inflight = 0
        # Per-op tail-latency sketches are **always on**: one frexp +
        # dict update per request, and they are what lets the fig13
        # benchmarks (which run without a metrics registry) report
        # p50/p99/p999 alongside bandwidth.
        self.latency_sketches = {
            Op.READ.value: LatencySketch("subsys.sketch.read"),
            Op.WRITE.value: LatencySketch("subsys.sketch.write"),
        }
        # A subsystem constructed under an ambient compiled backend but
        # driven through the per-request submit() path (the system
        # models) cannot batch; the first submit records the fallback
        # so equivalence tooling sees *why* nothing compiled.
        self._backend_note_pending = current_backend() == "compiled"
        self._inflight_tracker: TimeWeightedTracker | None = None
        metrics = current_metrics()
        self._metrics = metrics
        self._metrics_on = metrics.enabled
        if self._metrics_on:
            prefix = metrics.component_prefix("subsys")
            self._metrics_prefix = prefix
            self.queue_depth = metrics.series(f"{prefix}.queue_depth")
            self.request_latency = metrics.histogram(
                f"{prefix}.request_latency_ns")
            for op, sketch in self.latency_sketches.items():
                metrics.attach(f"{prefix}.sketch.{op}", sketch)
            sampler = sim.sampler
            if isinstance(sampler, Sampler):
                # Windowed time-weighted occupancy: in-flight requests
                # and per-channel write-hint backlog per sample window.
                self._inflight_tracker = sampler.track(
                    f"{prefix}.window.inflight")
                for ch, store in enumerate(self.hint_stores):
                    sampler.watch_gauge(
                        f"{prefix}.window.hints_ch{ch}", store.depth)

    # ------------------------------------------------------------------
    # MCU-facing API
    # ------------------------------------------------------------------
    def submit(self, request: MemoryRequest) -> typing.Generator:
        """Process body: service one memory request to completion.

        Returns the read data (b"" for writes).  Chunks are fanned out
        to their channels; channels proceed independently.
        """
        if self._backend_note_pending:
            self._backend_note_pending = False
            record_decision(BackendDecision(
                "compiled", "interpreted",
                ("per-request submit() path (the compiled kernel "
                 "batches through run_stream)",)))
        request.submit_time = self.sim.now
        self._inflight += 1
        if self._metrics_on:
            self.queue_depth.record(self.sim.now, float(self._inflight))
            if self._inflight_tracker is not None:
                self._inflight_tracker.adjust(self.sim.now, 1.0)
        if self.firmware is not None:
            yield self.sim.process(self.firmware.admit())
        by_channel = self.planner.chunks_by_channel(request)
        pending = [
            self.sim.process(self.channels[ch].execute_chunks(chunks))
            for ch, chunks in sorted(by_channel.items())
        ]
        # Device-model errors (protocol violations, address faults) are
        # contained here: the request completes FAILED instead of the
        # exception tearing through the event loop and killing
        # unrelated in-flight processes.
        failure: PramError | None = None
        results: typing.Dict[typing.Any, typing.Any] = {}
        try:
            results = yield self.sim.all_of(pending)
        except PramError as exc:
            failure = exc
        request.complete_time = self.sim.now
        if failure is not None:
            # Device-model errors are deterministic for a given request
            # (bad address, protocol violation): mark them permanent so
            # the service layer's retry path never replays them.
            request.fault_permanent = True
            request.degrade(RequestStatus.FAILED,
                            f"{type(failure).__name__}: {failure}")
        sketch = self.latency_sketches.get(request.op.value)
        if sketch is not None:
            sketch.add(request.latency)
        self._inflight -= 1
        if self._metrics_on:
            self.queue_depth.record(self.sim.now, float(self._inflight))
            if self._inflight_tracker is not None:
                self._inflight_tracker.adjust(self.sim.now, -1.0)
            self.request_latency.add(request.latency)
        status = request.status
        if status is not RequestStatus.OK:
            if status is RequestStatus.FAILED:
                self.requests_failed += 1
            elif status is RequestStatus.DEGRADED:
                self.requests_degraded += 1
            if self.faults is not None:
                if status is RequestStatus.FAILED:
                    self.faults.requests_failed += 1
                elif status is RequestStatus.DEGRADED:
                    self.faults.requests_degraded += 1
                else:
                    self.faults.requests_corrected += 1
            if self._metrics_on:
                self._metrics.counter(
                    f"{self._metrics_prefix}.requests."
                    f"{status.value}").add()
        tracer = self.sim.tracer
        if tracer.enabled:
            # In-flight requests overlap freely, so they export as
            # async slices on one shared track.  The `req` argument keys
            # the attribution pass: hardware spans carrying the same id
            # are this request's critical path.
            span_args: typing.Dict[str, typing.Any] = {
                "address": request.address, "size": request.size,
                "req": request.request_id, "op": request.op.value,
            }
            if status is not RequestStatus.OK:
                span_args["status"] = status.value
            tracer.emit(f"{request.op.value} 0x{request.address:x}",
                        "requests", request.submit_time, self.sim.now,
                        asynchronous=True, **span_args)
        if failure is not None:
            # Reads hand back zero-fill of the requested size so
            # downstream arithmetic degrades instead of crashing.
            request.result = (bytes(request.size)
                              if request.op is Op.READ else b"")
        else:
            # Channels return (request offset, data) pairs; reassemble
            # in address order — a request larger than one stripe
            # interleaves back and forth across channels, so
            # channel-major concatenation would misorder it.
            pieces = [piece for proc in pending for piece in results[proc]]
            pieces.sort(key=lambda piece: piece[0])
            request.result = b"".join(data for _, data in pieces)
        self.requests_completed += 1
        if request.done is not None:
            request.done.succeed(request.result)
        return request.result

    def read(self, address: int, size: int) -> typing.Generator:
        """Process body: convenience read returning the data."""
        request = MemoryRequest(Op.READ, address, size)
        data = yield self.sim.process(self.submit(request))
        return data

    def write(self, address: int, data: bytes) -> typing.Generator:
        """Process body: convenience write."""
        request = MemoryRequest(Op.WRITE, address, len(data), data=data)
        yield self.sim.process(self.submit(request))

    def run_stream(self, requests: typing.Sequence[MemoryRequest], *,
                   mode: str = "open",
                   backend: str | None = None) -> BackendDecision:
        """Service a request batch to completion on the chosen backend.

        ``mode="open"`` submits every request at the current instant
        and lets them overlap; ``mode="closed"`` keeps exactly one in
        flight, submitting the next at the previous completion.  The
        backend defaults to the ambient :func:`use_backend` selection;
        configurations or streams outside the compiled kernel's
        certified envelope fall back to the interpreted engine with the
        reasons recorded on the returned :class:`BackendDecision`.
        Either way the call drains the simulator: on return ``sim.now``
        is the last completion time.
        """
        if mode not in ("open", "closed"):
            raise ValueError(f"unknown stream mode {mode!r}")
        requested = backend if backend is not None else current_backend()
        if requested not in BACKENDS:
            raise ValueError(
                f"unknown backend {requested!r}; expected one of "
                f"{BACKENDS}")
        # This entry point *is* the batch path: any pending per-request
        # fallback note no longer applies.
        self._backend_note_pending = False
        if not requests:
            decision = BackendDecision(requested, requested, ())
            record_decision(decision)
            return decision
        if requested == "compiled":
            reasons = tuple(subsystem_fallback_reasons(self)
                            + stream_fallback_reasons(self, requests,
                                                      mode))
            if not reasons:
                decision = BackendDecision("compiled", "compiled", ())
                record_decision(decision)
                CompiledKernel(self).run(requests, mode)
                return decision
            decision = BackendDecision("compiled", "interpreted",
                                       reasons)
        else:
            decision = BackendDecision("interpreted", "interpreted", ())
        record_decision(decision)

        if mode == "open":
            def driver() -> typing.Generator:
                pending = [self.sim.process(self.submit(request))
                           for request in requests]
                yield self.sim.all_of(pending)
        else:
            def driver() -> typing.Generator:
                for request in requests:
                    yield self.sim.process(self.submit(request))

        self.sim.process(driver())
        self.sim.run()
        return decision

    @property
    def inflight(self) -> int:
        """Requests currently between submit and completion."""
        return self._inflight

    @property
    def capacity_hint(self) -> int:
        """Rough concurrent-request capacity of the subsystem.

        One request occupies a channel's bus and module resources; the
        subsystem overlaps roughly one request per (channel, module)
        pair before added requests only deepen queues.  This is a
        *hint* for backpressure normalization, not a hard limit.
        """
        return self.geometry.channels * self.geometry.modules_per_channel

    def backpressure(self) -> float:
        """Submit-side congestion signal in [0, 1].

        The fraction of the subsystem's rough concurrency capacity
        currently occupied by in-flight requests.  The service layer's
        brownout controller folds this into its shed decision so the
        front end reacts to device congestion, not just to its own
        queue occupancy.
        """
        capacity = self.capacity_hint
        if capacity <= 0:
            return 1.0 if self._inflight else 0.0
        return min(1.0, self._inflight / capacity)

    def register_write_hint(self, address: int, size: int) -> None:
        """Announce a region that will soon be overwritten.

        Under a pre-resetting policy the channels RESET those rows in
        the background (call :meth:`drain_hints` or let a system model
        run it alongside compute).  The region is decomposed into
        row-sized hints routed to the owning channel.
        """
        registered_at = self.sim.now
        for pram_address, _, chunk in self.address_map.iter_rows(
                address, size):
            flat = self.address_map.compose(pram_address)
            self.hint_stores[pram_address.channel].add(
                flat, chunk, registered_at=registered_at)

    def drain_hints(self) -> typing.Generator:
        """Process body: run every channel's hint prefetcher to empty."""
        pending = [self.sim.process(channel.prefetch_hints())
                   for channel in self.channels]
        yield self.sim.all_of(pending)

    def merged_latency_sketch(self) -> LatencySketch:
        """All request latencies (reads + writes) as one sketch.

        A fresh fold of the per-op sketches, so the result carries the
        same layout and exact bucket counts — percentiles over the
        merged population, for reports that want one tail number.
        """
        merged = LatencySketch("subsys.latency")
        for sketch in self.latency_sketches.values():
            merged.merge(sketch)
        return merged

    # ------------------------------------------------------------------
    # Functional access (experiment setup/verification, zero time)
    # ------------------------------------------------------------------
    def preload(self, address: int, data: bytes) -> None:
        """Place ``data`` at ``address`` with no simulated time cost.

        Mirrors the paper's evaluation setup: "we initialize the data
        and place it in the persistent storages" before each run.
        Partial first/last rows are read-modify-written functionally.
        """
        for pram_address, offset, size in self.address_map.iter_rows(
                address, len(data)):
            module = self.modules[pram_address.channel][pram_address.module]
            physical = self.channels[pram_address.channel]._physical_row(
                pram_address.module, pram_address.partition,
                pram_address.row)
            row = bytearray(module.peek(pram_address.partition, physical))
            row[pram_address.column:pram_address.column + size] = (
                data[offset:offset + size])
            module.poke(pram_address.partition, physical, bytes(row))

    def inspect(self, address: int, size: int) -> bytes:
        """Functional read-back with no simulated time cost."""
        out = bytearray()
        for pram_address, _, chunk in self.address_map.iter_rows(
                address, size):
            module = self.modules[pram_address.channel][pram_address.module]
            physical = self.channels[pram_address.channel]._physical_row(
                pram_address.module, pram_address.partition,
                pram_address.row)
            row = module.peek(pram_address.partition, physical)
            out += row[pram_address.column:pram_address.column + chunk]
        return bytes(out)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def operation_counts(self) -> typing.Dict[str, int]:
        """Device-level operation totals across all modules."""
        totals = {"reads": 0, "programs": 0, "resets": 0, "erases": 0}
        for channel in self.modules:
            for module in channel:
                totals["reads"] += module.reads
                totals["programs"] += module.programs
                totals["resets"] += module.resets
                totals["erases"] += module.erases
        return totals

    def fault_counts(self) -> typing.Dict[str, float]:
        """Injection + resilience counters (empty without a plan)."""
        if self.faults is None:
            return {}
        counts = self.faults.counts()
        counts["requests_completed"] = float(self.requests_completed)
        counts["retry_programs"] = float(sum(
            module.retry_programs
            for channel in self.modules for module in channel))
        return counts

    def mean_read_latency(self) -> float:
        """Mean per-chunk read latency across channels (ns)."""
        samples = [s for ch in self.channels
                   for s in ch.read_latency.samples]
        return sum(samples) / len(samples) if samples else 0.0

    def mean_write_latency(self) -> float:
        """Mean per-chunk write latency across channels (ns)."""
        samples = [s for ch in self.channels
                   for s in ch.write_latency.samples]
        return sum(samples) / len(samples) if samples else 0.0
