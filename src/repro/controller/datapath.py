"""The controller datapath: two 256-bit staging registers (Section V-B).

The PEs' load/store operand size is 32 bytes, so the controller keeps
one 256-bit register per direction.  The datapath validates operand
sizing and accounts the bytes that crossed it (for the energy model).
"""

from __future__ import annotations

import typing


class Datapath:
    """Load/store staging registers between MCU messages and the PHY."""

    REGISTER_BYTES = 32  # 256 bits

    def __init__(self) -> None:
        self._load_register = bytes(self.REGISTER_BYTES)
        self._store_register = bytes(self.REGISTER_BYTES)
        self.bytes_read = 0
        self.bytes_written = 0
        # SEC-DED outcomes over the read path (repro.faults).
        self.ecc_corrected_bits = 0
        self.ecc_uncorrectable = 0

    def record_ecc(self, corrected_bits: int, uncorrectable: int) -> None:
        """Account one SEC-DED decode pass on the load path."""
        self.ecc_corrected_bits += corrected_bits
        self.ecc_uncorrectable += uncorrectable

    def stage_store(self, data: bytes) -> None:
        """Latch up to 32 bytes heading to the PRAM."""
        self._check(len(data))
        self._store_register = data.ljust(self.REGISTER_BYTES, b"\x00")
        self.bytes_written += len(data)

    def stage_load(self, data: bytes) -> bytes:
        """Latch data arriving from the PRAM; returns it for forwarding."""
        self._check(len(data))
        self._load_register = data.ljust(self.REGISTER_BYTES, b"\x00")
        self.bytes_read += len(data)
        return data

    @property
    def load_register(self) -> bytes:
        """Last value latched from the PRAM side."""
        return self._load_register

    @property
    def store_register(self) -> bytes:
        """Last value latched from the MCU side."""
        return self._store_register

    def _check(self, size: int) -> None:
        if size < 1 or size > self.REGISTER_BYTES:
            raise ValueError(
                f"datapath operand must be 1..{self.REGISTER_BYTES} bytes, "
                f"got {size}"
            )

    def totals(self) -> typing.Tuple[int, int]:
        """(bytes_read, bytes_written) counters."""
        return self.bytes_read, self.bytes_written
