"""Boot-time initialization of the PRAM modules (Section V-B).

The initializer handles "auto initialization, calibrating on-die
impedance tasks and setting up the burst length and overlay window
address" for every module on a channel.
"""

from __future__ import annotations

import typing

from repro.pram.module import PramModule

#: Measured-once boot costs, nanoseconds.  These only matter at reset,
#: never on the data path, so rough figures suffice.
AUTO_INIT_NS = 200_000.0        # device auto-initialization sequence
ZQ_CALIBRATION_NS = 50_000.0    # on-die impedance calibration
MODE_REGISTER_NS = 100.0        # burst length + OWBA setup per module


class Initializer:
    """Brings a set of PRAM modules from power-on to operational."""

    def __init__(self, overlay_window_base: int = 0) -> None:
        self.overlay_window_base = overlay_window_base
        self.booted = False

    def boot(self, modules: typing.Sequence[PramModule]) -> float:
        """Initialize every module; returns total boot latency in ns.

        Auto-init and calibration run on all modules in parallel (each
        module self-times them); the mode-register setup is serialized
        over the shared command bus.
        """
        if not modules:
            raise ValueError("no modules to initialize")
        for module in modules:
            module.buffers.invalidate_all()
            module.window.set_base(self.overlay_window_base)
        self.booted = True
        return (AUTO_INIT_NS + ZQ_CALIBRATION_NS
                + MODE_REGISTER_NS * len(modules))
