"""The 400 MHz PRAM physical layer (Section III-B / V-B).

The MIG does not support PRAM, so the paper implements its own PHY on
28 nm FPGA logic.  For the behavioural model the PHY contributes the
cost of moving 20-bit DDR signal packets — one per addressing-phase
command — and exposes the frequency-matched clock the channel uses.
"""

from __future__ import annotations

from repro.pram.constants import PramTimingParams


class PramPhy:
    """Signal-packet timing for one LPDDR2-NVM channel."""

    #: Bits per command signal packet: operation type (2-4) + row buffer
    #: address (2) + target address (7-15), per Section V-B.
    PACKET_BITS = 20

    def __init__(self, params: PramTimingParams = PramTimingParams()) -> None:
        self.params = params
        self.packets_sent = 0

    @property
    def clock_ns(self) -> float:
        """PHY clock period (matches the PRAM's 400 MHz)."""
        return self.params.tck_ns

    def command_cost(self, packets: int = 1) -> float:
        """Time to ship ``packets`` command packets.

        DDR signalling moves one 20-bit packet per clock edge pair, so
        each packet costs one tCK on the command lines.
        """
        if packets < 0:
            raise ValueError(f"negative packet count: {packets}")
        self.packets_sent += packets
        return packets * self.params.tck_ns

    def register_write_cost(self) -> float:
        """Cost of one overlay-window register poke (one packet + data)."""
        return self.command_cost(1)
