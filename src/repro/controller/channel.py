"""One LPDDR2-NVM channel controller.

The channel is where policy turns into timing.  Resources:

* the shared command/DQ **bus** — one transfer at a time across the
  channel's 16 modules;
* each module's **overlay window** — one in-flight program per module;
* each module's **partitions** — busy windows tracked by the module.

Under the interleaving policy these are acquired independently, so the
burst of one chunk proceeds while another chunk's partition senses or
programs (Figure 12).  Under bare-metal ordering a single channel-wide
lock serializes whole chunks, array time included — the noop scheduler
of Figure 13.

Phase skipping (Section III-B) is a property of the hardware-automated
controller and applies in every policy: an RAB hit skips the pre-active
phase, an RDB hit skips both pre-active and activate.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.conformance import Command, CommandRecord, ProtocolChecker
from repro.controller.datapath import Datapath
from repro.controller.phy import PramPhy
from repro.controller.scheduler import SchedulerPolicy, WriteHintStore
from repro.controller.request import RequestStatus
from repro.controller.translator import ChunkPlan, RetirementMap
from repro.controller.wear_level import (
    DEFAULT_GAP_WRITE_INTERVAL,
    StartGapMapper,
)
from repro.faults.ecc import secded_decode
from repro.faults.plan import FaultState
from repro.pram.address import AddressMap, PramAddress
from repro.pram.module import PramModule
from repro.pram.overlay_window import CMD_RETRY_PROGRAM, CMD_SELECTIVE_ERASE
from repro.sim import Counter, Histogram, LatencySketch, Resource, Simulator
from repro.telemetry.metrics import current_metrics
from repro.telemetry.timeseries import Sampler, TimeWeightedTracker

#: One hinted pre-reset target: (row address, chunk bytes, hint time).
_HintChunk = typing.Tuple[PramAddress, int, float]


class ChannelController:
    """Drives the PRAM modules of one channel as simulation processes."""

    def __init__(self, sim: Simulator, modules: typing.Sequence[PramModule],
                 policy: SchedulerPolicy = SchedulerPolicy.FINAL,
                 address_map: AddressMap | None = None,
                 phase_skipping: bool = True,
                 hint_store: WriteHintStore | None = None,
                 channel_id: int = 0,
                 wear_leveling: bool = False,
                 gap_write_interval: int = DEFAULT_GAP_WRITE_INTERVAL,
                 write_pausing: bool = False,
                 pause_resume_penalty_ns: float = 1_000.0,
                 monitor: ProtocolChecker | None = None,
                 faults: FaultState | None = None) -> None:
        if not modules:
            raise ValueError("a channel needs at least one module")
        self.sim = sim
        self.modules = list(modules)
        self.policy = policy
        self.address_map = address_map or AddressMap(modules[0].geometry)
        self.phase_skipping = phase_skipping
        # Explicit None check: an empty WriteHintStore is falsy.
        self.hints = hint_store if hint_store is not None else WriteHintStore()
        self.channel_id = channel_id
        self.phy = PramPhy(modules[0].params)
        self.datapath = Datapath()
        self.bus = Resource(sim, capacity=1, name=f"ch{channel_id}.bus")
        self._serial_lock = Resource(
            sim, capacity=1, name=f"ch{channel_id}.serial")
        self._window_locks = [
            Resource(sim, capacity=1, name=f"ch{channel_id}.m{i}.window")
            for i in range(len(self.modules))
        ]
        # Read-pipeline hazard tracking: a chunk owns its RAB/RDB pair
        # from probe to burst, so a concurrent chunk cannot re-activate
        # over an RDB that has not been streamed out yet.  The slot
        # resource bounds in-flight reads per module to the pair count,
        # which guarantees the probe always finds a free pair.
        pair_count = len(self.modules[0].buffers)
        self._pair_slots = [
            Resource(sim, capacity=pair_count,
                     name=f"ch{channel_id}.m{i}.pairs")
            for i in range(len(self.modules))
        ]
        self._busy_pairs: typing.List[typing.Set[int]] = [
            set() for _ in self.modules
        ]
        # Optional start-gap wear leveling (Section VII): one mapper
        # per (module, partition); one row per partition is the spare.
        self.wear_leveling = wear_leveling
        self._mappers: typing.Dict[typing.Tuple[int, int],
                                   StartGapMapper] = {}
        self._gap_write_interval = gap_write_interval
        self.gap_moves = 0
        # Optional write pausing ([66]): reads preempt in-flight
        # programs at a resume-penalty cost.
        self.write_pausing = write_pausing
        self.pause_resume_penalty_ns = pause_resume_penalty_ns
        self.pauses_issued = 0
        # Opt-in protocol conformance layer (repro.analysis): every
        # command issued to a module is validated/recorded as it
        # happens.  None (the default) costs nothing.
        self.monitor = monitor
        # Optional fault resilience (repro.faults): ECC over read
        # bursts, program-and-verify retries, and bad-row retirement.
        # Spares are carved out only when the plan can actually fail a
        # program — otherwise geometry (and start-gap rotation) stays
        # byte-identical to a run with no plan.
        self.faults = faults
        self._retirement: RetirementMap | None = None
        if faults is not None and faults.program_faults_on:
            geometry = self.modules[0].geometry
            spares = min(faults.config.spare_rows_per_partition,
                         geometry.rows_per_partition - 1)
            if spares > 0:
                self._retirement = RetirementMap(
                    geometry.rows_per_partition, spares)
        # Statistics
        self.read_latency = Histogram(f"ch{channel_id}.read_latency")
        self.write_latency = Histogram(f"ch{channel_id}.write_latency")
        # Per-chunk tail-latency sketches stay always-on (integer
        # bucket math only) so benchmark runs without a registry still
        # have channel-level percentiles.
        self.read_sketch = LatencySketch(f"ch{channel_id}.sketch.read")
        self.write_sketch = LatencySketch(f"ch{channel_id}.sketch.write")
        self.bus_busy_ns = 0.0
        self.chunks_read = 0
        self.chunks_written = 0
        self.pre_resets_issued = 0
        self.phase_skips = {"pre_active": 0, "activate": 0}
        self.rab_hits = 0
        self.rdb_hits = 0
        # Multi-resource-interleaving evidence (Figure 12): bus time of
        # read bursts spent while *another* partition's array access was
        # in flight.  Tracked only when telemetry is active — the
        # window bookkeeping is pure observation and must cost nothing
        # on untraced runs.
        self.overlap_ns = 0.0
        self._array_windows: typing.List[
            typing.Tuple[float, float, typing.Tuple[int, int]]] = []
        metrics = current_metrics()
        self._metrics = metrics
        self._metrics_prefix = metrics.component_prefix(
            f"pram.ch{channel_id}")
        if metrics.enabled:
            metrics.attach(f"{self._metrics_prefix}.read_latency",
                           self.read_latency)
            metrics.attach(f"{self._metrics_prefix}.write_latency",
                           self.write_latency)
            metrics.attach(f"{self._metrics_prefix}.sketch.read",
                           self.read_sketch)
            metrics.attach(f"{self._metrics_prefix}.sketch.write",
                           self.write_sketch)
            # One shared interleave counter across channels/subsystems.
            self._overlap_counter: Counter | None = (
                metrics.counter("sched.interleave.overlap_ns"))
            self._skip_counters: typing.Dict[str, Counter] | None = {
                skip: metrics.counter(
                    f"{self._metrics_prefix}.phase_skip.{skip}")
                for skip in ("pre_active", "activate")
            }
            self._bus_counter: Counter | None = metrics.counter(
                f"{self._metrics_prefix}.bus_busy_ns")
            # RAB/RDB pair occupancy across the channel's modules: the
            # time-weighted series is the "RDB occupancy" gauge, the
            # static gauge is its ceiling.
            self._pairs_series = metrics.series(
                f"{self._metrics_prefix}.pairs_in_use")
            metrics.gauge(f"{self._metrics_prefix}.pair_capacity",
                          float(pair_count * len(self.modules)))
        else:
            self._overlap_counter = None
            self._skip_counters = None
            self._bus_counter = None
            self._pairs_series = None
        self._pairs_in_use = 0
        # Windowed RAB/RDB pair occupancy (time-weighted mean per
        # sampling window) — present only under an active sampler.
        self._pairs_tracker: TimeWeightedTracker | None = None
        if metrics.enabled:
            sampler = sim.sampler
            if isinstance(sampler, Sampler):
                self._pairs_tracker = sampler.track(
                    f"{self._metrics_prefix}.window.pairs_in_use")
        self._telemetry_on = metrics.enabled or sim.tracer.enabled
        self._bus_track = f"ch{channel_id}.bus"

    # ------------------------------------------------------------------
    # Public API: chunk execution processes
    # ------------------------------------------------------------------
    def execute_chunks(self, chunks: typing.Sequence[ChunkPlan]
                       ) -> typing.Generator:
        """Process body: run this channel's chunks under the policy.

        Returns ``(request offset, data)`` pairs — one per chunk, data
        ``b""`` for writes — so the subsystem can reassemble a
        multi-stripe request in address order rather than channel
        order.
        """
        if self.policy.interleaves:
            done = [self.sim.process(self._chunk_process(c)) for c in chunks]
            results = yield self.sim.all_of(done)
            ordered = [results[proc] for proc in done]
        else:
            # Noop scheduling: one request owns the channel at a time.
            # Within the request, chunks still fan out across modules —
            # the 32-bytes-per-bank striping is the device's lockstep
            # nature, not a scheduling decision.
            lock = self._serial_lock.request()
            yield lock
            try:
                done = [self.sim.process(self._chunk_process(c))
                        for c in chunks]
                results = yield self.sim.all_of(done)
                ordered = [results[proc] for proc in done]
            finally:
                self._serial_lock.release(lock)
        return ordered

    def prefetch_hints(self) -> typing.Generator:
        """Process body: drain the write-hint store by pre-RESETting.

        Pre-resets fan out across modules (each module's overlay window
        is independent) so draining keeps pace with kernel execution —
        Section V-A wants the resets done "before completing the
        corresponding computation".  Only effective under a
        pre-resetting policy; a no-op otherwise.
        """
        if not self.policy.pre_resets:
            return
        per_module: typing.Dict[int, typing.List[_HintChunk]] = {}
        while True:
            hint = self.hints.pop()
            if hint is None:
                break
            address, size, registered_at = hint
            for pram_address, _, chunk_size in self.address_map.iter_rows(
                    address, size):
                if pram_address.channel != self.channel_id:
                    continue
                per_module.setdefault(pram_address.module, []).append(
                    (pram_address, chunk_size, registered_at))
        if not per_module:
            return
        workers = [self.sim.process(self._reset_worker(chunks))
                   for chunks in per_module.values()]
        yield self.sim.all_of(workers)

    def _reset_worker(self, chunks: typing.List[_HintChunk]
                      ) -> typing.Generator:
        """Serially pre-reset one module's hinted chunks."""
        for pram_address, chunk_size, registered_at in chunks:
            yield self.sim.process(self._pre_reset(pram_address,
                                                   chunk_size,
                                                   registered_at))

    # ------------------------------------------------------------------
    # Chunk state machines
    # ------------------------------------------------------------------
    def _chunk_process(self, chunk: ChunkPlan
                       ) -> typing.Generator:
        start = self.sim.now
        tracer = self.sim.tracer
        req = chunk.request.request_id
        if chunk.is_write:
            yield from self._write_chunk(chunk)
            self.write_latency.add(self.sim.now - start)
            self.write_sketch.add(self.sim.now - start)
            self.chunks_written += 1
            if tracer.enabled:
                tracer.emit("write_chunk",
                            f"ch{self.channel_id}.inflight",
                            start, self.sim.now, asynchronous=True,
                            module=chunk.address.module,
                            partition=chunk.address.partition, req=req)
            return (chunk.offset, b"")
        data = yield from self._read_chunk(chunk)
        self.read_latency.add(self.sim.now - start)
        self.read_sketch.add(self.sim.now - start)
        self.chunks_read += 1
        if tracer.enabled:
            tracer.emit("read_chunk", f"ch{self.channel_id}.inflight",
                        start, self.sim.now, asynchronous=True,
                        module=chunk.address.module,
                        partition=chunk.address.partition, req=req)
        return (chunk.offset, data)

    def _read_chunk(self, chunk: ChunkPlan) -> typing.Generator:
        module = self.modules[chunk.address.module]
        partition = chunk.address.partition
        row = self._physical_row(chunk.address.module, partition,
                                 chunk.address.row)
        upper, lower = self.address_map.split_row(row)

        # Own one RAB/RDB pair for the whole probe→burst span.  Without
        # this, pipelined reads that share a pair (e.g. every chunk
        # RAB-hitting pair 0) re-activate over an RDB whose burst has
        # not happened yet and stream the wrong row.
        slot = self._pair_slots[chunk.address.module].request()
        yield slot
        if self._pairs_series is not None:
            self._pairs_in_use += 1
            self._pairs_series.record(self.sim.now,
                                      float(self._pairs_in_use))
            if self._pairs_tracker is not None:
                self._pairs_tracker.adjust(self.sim.now, 1.0)
        busy = self._busy_pairs[chunk.address.module]
        # No yield between the grant above and the add below, so the
        # probe and the reservation are atomic under cooperative
        # scheduling.
        buffer_id, need_pre_active, need_activate = self._probe_buffers(
            module, partition, row, upper, chunk.buffer_id, busy)
        busy.add(buffer_id)
        try:
            data = yield from self._issue_read_phases(
                chunk, module, partition, row, upper, lower,
                buffer_id, need_pre_active, need_activate)
        finally:
            busy.discard(buffer_id)
            self._pair_slots[chunk.address.module].release(slot)
            if self._pairs_series is not None:
                self._pairs_in_use -= 1
                self._pairs_series.record(self.sim.now,
                                          float(self._pairs_in_use))
                if self._pairs_tracker is not None:
                    self._pairs_tracker.adjust(self.sim.now, -1.0)
        return data

    def _issue_read_phases(self, chunk: ChunkPlan, module: PramModule,
                           partition: int, row: int, upper: int,
                           lower: int, buffer_id: int,
                           need_pre_active: bool,
                           need_activate: bool) -> typing.Generator:
        paused = False
        req = chunk.request.request_id
        if (self.write_pausing and need_activate
                and module.program_in_flight(partition, self.sim.now)):
            paused = module.pause_program(partition, self.sim.now,
                                          self.pause_resume_penalty_ns)
            if paused:
                self.pauses_issued += 1

        if need_pre_active or need_activate:
            # Command packets go over the shared bus; the array phases
            # themselves run inside the module without holding the bus.
            packets = (1 if need_pre_active else 0) + (
                1 if need_activate else 0)
            yield from self._hold_bus(self.phy.command_cost(packets),
                                      span_name="cmd",
                                      span_args={"req": req})
            now = self.sim.now
            tracer = self.sim.tracer
            track = self._partition_track(chunk.address.module, partition)
            if need_pre_active:
                self._observe(Command.PRE_ACTIVE, chunk.address.module,
                              buffer_id=buffer_id, upper_row=upper)
                finish = module.pre_active(now, buffer_id, upper)
                if tracer.enabled:
                    tracer.emit("pre_active", track, now, finish,
                                buffer=buffer_id, upper_row=upper,
                                req=req)
                now = finish
            if need_activate:
                self._observe(Command.ACTIVATE, chunk.address.module,
                              buffer_id=buffer_id, partition=partition,
                              row=row, upper_row=upper, lower_row=lower,
                              skipped_pre_active=not need_pre_active)
                finish = module.activate(now, buffer_id, partition, lower)
                if tracer.enabled:
                    tracer.emit("activate", track, now, finish,
                                buffer=buffer_id, row=row, req=req)
                now = finish
            # Record the array-busy window before sleeping on it, so a
            # concurrent burst on another partition can see the overlap.
            self._note_array_window(chunk.address.module, partition,
                                    self.sim.now, now)
            if now > self.sim.now:
                yield self.sim.timeout(now - self.sim.now)
        if paused:
            # The read has its row; the program picks back up while
            # the burst streams over the bus.
            module.resume_program(partition, self.sim.now)

        # The data burst occupies the bus for preamble + burst time.
        self._observe(Command.READ_BURST, chunk.address.module,
                      buffer_id=buffer_id, partition=partition, row=row,
                      skipped_pre_active=not need_pre_active,
                      skipped_activate=not need_activate)
        finish, data = module.read_burst(
            self.sim.now, buffer_id, chunk.address.column, chunk.size)
        # Consume the fault record synchronously (no yield since the
        # burst) so concurrent chunks never see each other's flips.
        fault_bits = (module.take_read_fault()
                      if self.faults is not None else ())
        yield from self._hold_bus(
            finish - self.sim.now, span_name="read_burst",
            array_key=(chunk.address.module, partition),
            span_args={"module": chunk.address.module,
                       "partition": partition, "row": row, "req": req})
        if fault_bits and self.faults is not None:
            decoded = secded_decode(data, fault_bits)
            data = decoded.data
            self.datapath.record_ecc(decoded.corrected_bits,
                                     decoded.uncorrectable_codewords)
            self.faults.note_ecc(decoded.corrected_bits,
                                 decoded.uncorrectable_codewords)
            if decoded.uncorrectable_codewords:
                chunk.request.degrade(
                    RequestStatus.DEGRADED,
                    f"uncorrectable read error in ch{self.channel_id}."
                    f"m{chunk.address.module}.p{partition} row {row}")
            else:
                chunk.request.degrade(RequestStatus.CORRECTED)
        self.datapath.stage_load(data)
        return data

    def _write_chunk(self, chunk: ChunkPlan) -> typing.Generator:
        module = self.modules[chunk.address.module]
        index = chunk.address.module
        payload = chunk.payload
        assert payload is not None  # guaranteed by MemoryRequest validation

        partition = chunk.address.partition
        row = self._physical_row(index, partition, chunk.address.row)
        req = chunk.request.request_id
        window = self._window_locks[index].request()
        yield window
        try:
            self.datapath.stage_store(payload)
            # Register pokes + payload burst into the program buffer all
            # travel over the shared bus.
            self._observe(Command.STAGE_PROGRAM, index,
                          partition=partition, row=row)
            stage_finish = module.stage_program(
                self.sim.now, partition, row,
                chunk.address.column, payload)
            yield from self._hold_bus(stage_finish - self.sim.now,
                                      span_name="stage_program",
                                      span_args={"module": index,
                                                 "partition": partition,
                                                 "req": req})
            # The array program frees the bus but occupies the partition
            # and the module's overlay window until completion.  The
            # wait re-checks the partition clock because write pausing
            # can extend an in-flight program.
            self._observe(Command.EXECUTE_PROGRAM, index,
                          partition=partition, row=row)
            module.execute_program(self.sim.now, req=req)
            failures = (module.take_program_failures()
                        if self.faults is not None else [])
            self._note_array_window(index, partition, self.sim.now,
                                    module.partition_ready_at(partition))
            while True:
                ready = module.partition_ready_at(partition)
                if ready <= self.sim.now:
                    break
                yield self.sim.timeout(ready - self.sim.now)
            recovery = module.timing.write_recovery()
            if recovery > 0:
                recovery_start = self.sim.now
                yield self.sim.timeout(recovery)
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.emit("write_recovery",
                                self._partition_track(index, partition),
                                recovery_start, self.sim.now,
                                module=index, partition=partition,
                                req=req)
            if failures:
                yield from self._verify_and_retry(
                    chunk, module, index, partition, row, failures, req)
            yield from self._account_write(index, partition)
        finally:
            self._window_locks[index].release(window)

    def _pre_reset(self, address: PramAddress, size: int,
                   registered_at: float = float("inf")
                   ) -> typing.Generator:
        """Background all-zero program of one row chunk (Section V-A)."""
        module = self.modules[address.module]
        if self.wear_leveling:
            # Rebind to the current physical row.
            address = dataclasses.replace(
                address, row=self._physical_row(
                    address.module, address.partition, address.row))
        # Skip rows that are already pristine: resetting them would
        # waste endurance and bus time for no latency benefit.
        if not module.program_needs_reset(
                address.partition, address.row, address.column, size):
            return
        # Skip rows rewritten since the hint was registered: the data
        # there is *new* output, not the stale copy the hint targeted.
        if module.last_program_time(address.partition,
                                    address.row) > registered_at:
            return
        # Opportunistic only: if a real write holds or waits on this
        # module's overlay window, stand down — delaying a write by a
        # RESET pass costs exactly what the pre-reset would save.
        lock = self._window_locks[address.module]
        if lock.count > 0 or lock.queue_length > 0:
            return
        window = lock.request()
        yield window
        try:
            # Re-check under the window lock: a write may have landed
            # while this pre-reset waited.
            if module.last_program_time(address.partition,
                                        address.row) > registered_at:
                return
            self._observe(Command.STAGE_PROGRAM, address.module,
                          partition=address.partition, row=address.row)
            stage_finish = module.stage_program(
                self.sim.now, address.partition, address.row,
                address.column, bytes(size), command=CMD_SELECTIVE_ERASE)
            yield from self._hold_bus(stage_finish - self.sim.now,
                                      span_name="stage_reset",
                                      span_args={"module": address.module,
                                                 "partition":
                                                 address.partition})
            self._observe(Command.EXECUTE_PROGRAM, address.module,
                          partition=address.partition, row=address.row)
            finish = module.execute_program(self.sim.now)
            self._note_array_window(address.module, address.partition,
                                    self.sim.now, finish)
            yield self.sim.timeout(finish - self.sim.now)
            self.pre_resets_issued += 1
        finally:
            lock.release(window)

    # ------------------------------------------------------------------
    # Program-and-verify resilience (repro.faults)
    # ------------------------------------------------------------------
    def _verify_and_retry(self, chunk: ChunkPlan, module: PramModule,
                          index: int, partition: int, row: int,
                          failures: typing.List[typing.Tuple[int, int]],
                          req: int) -> typing.Generator:
        """Bounded retry loop over a chunk's verify-failed words.

        Each pass re-senses the row (the verify read), waits the
        configured backoff, then re-issues a SET-only program covering
        just the failed words — the selective-erasing asymmetry applied
        to recovery.  Rows that exhaust every retry are retired.
        """
        faults = self.faults
        assert faults is not None  # caller guards
        config = faults.config
        payload = chunk.payload
        word_bytes = module.geometry.word_bytes
        attempts = 0
        while failures and attempts < config.max_program_retries:
            attempts += 1
            faults.note_retry()
            # Verify read: sense the row in-module, then let the cells
            # settle for the configured backoff before re-pulsing.
            verify_start = self.sim.now
            yield self.sim.timeout(module.timing.activate()
                                   + config.retry_backoff_ns)
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.emit("verify_read",
                            self._partition_track(index, partition),
                            verify_start, self.sim.now, module=index,
                            partition=partition, row=row,
                            attempt=attempts, req=req)
            # Re-program the contiguous word span covering the failed
            # words with the bytes the original program intended.
            words = sorted({word for _, word in failures})
            first, last = words[0], words[-1]
            row_data = bytearray(module.peek(partition, row))
            if payload is not None:
                row_data[chunk.address.column:
                         chunk.address.column + len(payload)] = payload
            retry_payload = bytes(
                row_data[first * word_bytes:(last + 1) * word_bytes])
            self._observe(Command.STAGE_PROGRAM, index,
                          partition=partition, row=row)
            stage_finish = module.stage_program(
                self.sim.now, partition, row, first * word_bytes,
                retry_payload, command=CMD_RETRY_PROGRAM)
            yield from self._hold_bus(stage_finish - self.sim.now,
                                      span_name="stage_program",
                                      span_args={"module": index,
                                                 "partition": partition,
                                                 "req": req})
            self._observe(Command.EXECUTE_PROGRAM, index,
                          partition=partition, row=row)
            module.execute_program(self.sim.now, req=req)
            failures = module.take_program_failures()
            while True:
                ready = module.partition_ready_at(partition)
                if ready <= self.sim.now:
                    break
                yield self.sim.timeout(ready - self.sim.now)
        if failures:
            faults.note_retries_exhausted()
            yield from self._retire_row(chunk, module, index, partition,
                                        row, req)

    def _retire_row(self, chunk: ChunkPlan, module: PramModule,
                    index: int, partition: int, row: int,
                    req: int) -> typing.Generator:
        """Remap an unrecoverable row onto a spare, moving its data.

        With no spare left the request completes ``FAILED`` — degraded
        service, not a crashed event loop.
        """
        faults = self.faults
        assert faults is not None  # caller guards
        retirement = self._retirement
        spare = (retirement.retire(index, partition, row)
                 if retirement is not None else None)
        if spare is None:
            faults.note_retire_failed()
            # No spare left is a *permanent* failure: replaying the
            # request hits the same worn row with the same empty spare
            # pool, so upstream retry layers must not spend budget on it.
            chunk.request.fault_permanent = True
            chunk.request.degrade(
                RequestStatus.FAILED,
                f"row {row} unrecoverable and no spare left in "
                f"ch{self.channel_id}.m{index}.p{partition}")
            return
        start = self.sim.now
        # Build the repaired row image (current bytes with the chunk
        # payload overlaid) and program it into the spare: one sense of
        # the bad row, then a normal full-row program.
        row_data = bytearray(module.peek(partition, row))
        payload = chunk.payload
        if payload is not None:
            row_data[chunk.address.column:
                     chunk.address.column + len(payload)] = payload
        yield self.sim.timeout(module.timing.activate())
        self._observe(Command.STAGE_PROGRAM, index,
                      partition=partition, row=spare)
        stage_finish = module.stage_program(
            self.sim.now, partition, spare, 0, bytes(row_data))
        yield from self._hold_bus(stage_finish - self.sim.now,
                                  span_name="stage_program",
                                  span_args={"module": index,
                                             "partition": partition,
                                             "req": req})
        self._observe(Command.EXECUTE_PROGRAM, index,
                      partition=partition, row=spare)
        module.execute_program(self.sim.now, req=req)
        spare_failures = module.take_program_failures()
        while True:
            ready = module.partition_ready_at(partition)
            if ready <= self.sim.now:
                break
            yield self.sim.timeout(ready - self.sim.now)
        faults.note_row_retired()
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit("remap_program",
                        self._partition_track(index, partition),
                        start, self.sim.now, module=index,
                        partition=partition, row=row, spare=spare,
                        req=req)
        if spare_failures:
            # The spare misbehaved on its very first program; its data
            # is partial, so the write is lossy but still placed.
            chunk.request.degrade(
                RequestStatus.DEGRADED,
                f"spare row {spare} failed verify after retiring "
                f"row {row}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _probe_buffers(self, module: PramModule, partition: int, row: int,
                       upper: int, planned_buffer: int,
                       busy: typing.AbstractSet[int] = frozenset()
                       ) -> typing.Tuple[int, bool, bool]:
        """Decide phase skips: (buffer_id, need_pre_active, need_activate).

        Pairs in ``busy`` are owned by an in-flight chunk: their RDB is
        about to be overwritten, so neither their contents nor the pair
        itself can be used.
        """
        if self.phase_skipping:
            rdb = module.buffers.find_rdb(partition, row, exclude=busy)
            if rdb is not None:
                self.phase_skips["pre_active"] += 1
                self.phase_skips["activate"] += 1
                self.rdb_hits += 1
                if self._skip_counters is not None:
                    self._skip_counters["pre_active"].add()
                    self._skip_counters["activate"].add()
                    self._metrics.counter(
                        f"{self._metrics_prefix}.part{partition}"
                        ".rdb_hits").add()
                return rdb.buffer_id, False, False
            rab = module.buffers.find_rab(upper, exclude=busy)
            if rab is not None:
                self.phase_skips["pre_active"] += 1
                self.rab_hits += 1
                if self._skip_counters is not None:
                    self._skip_counters["pre_active"].add()
                    self._metrics.counter(
                        f"{self._metrics_prefix}.part{partition}"
                        ".rab_hits").add()
                return rab.buffer_id, False, True
        if planned_buffer in busy:
            # The planner's round-robin choice is mid-use; fall back to
            # the least-recently-used free pair (one always exists —
            # the slot resource caps in-flight reads at the pair count).
            free = [b for b in range(len(module.buffers)) if b not in busy]
            planned_buffer = min(
                free, key=lambda b: module.buffers.pair(b).last_use)
        return planned_buffer, True, True

    def _physical_row(self, module_index: int, partition: int,
                      logical_row: int) -> int:
        """Translate through start-gap, then through bad-row retirement.

        Retirement comes second: it remaps *physical* rows, so a
        retired row stays retired no matter where the gap rotation
        later lands a logical row.
        """
        row = logical_row
        if self.wear_leveling:
            row = self._mapper(module_index, partition).map(row)
        if self._retirement is not None:
            row = self._retirement.translate(module_index, partition, row)
        return row

    def _mapper(self, module_index: int,
                partition: int) -> StartGapMapper:
        key = (module_index, partition)
        mapper = self._mappers.get(key)
        if mapper is None:
            lines = self.modules[module_index].geometry.rows_per_partition - 1
            if self._retirement is not None:
                # The spare region sits outside the start-gap rotation.
                lines = max(1, lines - self._retirement.spare_rows)
            mapper = StartGapMapper(
                lines, gap_write_interval=self._gap_write_interval)
            self._mappers[key] = mapper
        return mapper

    def _account_write(self, module_index: int,
                       partition: int) -> typing.Generator:
        """Wear-leveling bookkeeping after a program; may move the gap.

        The gap move (read the source row, program it into the old gap
        line) runs inline under the already-held window lock — an
        amortized 1/ψ overhead per write.
        """
        if not self.wear_leveling:
            return
        move = self._mapper(module_index, partition).record_write()
        if move is None:
            return
        module = self.modules[module_index]
        data = module.peek(partition, move.source)
        # Sensing the source row costs an activate; then a normal
        # program into the destination.
        yield self.sim.timeout(module.timing.activate())
        self._observe(Command.STAGE_PROGRAM, module_index,
                      partition=partition, row=move.destination)
        stage_finish = module.stage_program(
            self.sim.now, partition, move.destination, 0, data)
        yield from self._hold_bus(stage_finish - self.sim.now)
        self._observe(Command.EXECUTE_PROGRAM, module_index,
                      partition=partition, row=move.destination)
        finish = module.execute_program(self.sim.now)
        yield self.sim.timeout(finish - self.sim.now)
        self.gap_moves += 1

    def _observe(self, command: Command, module_index: int,
                 **fields: typing.Any) -> None:
        """Feed one command to the conformance monitor and the tracer."""
        tracer = self.sim.tracer
        if self.monitor is None and not tracer.enabled:
            return
        record = CommandRecord(
            time=self.sim.now, channel=self.channel_id,
            module=module_index, command=command, **fields)
        if self.monitor is not None:
            self.monitor.observe(record)
        if tracer.enabled:
            tracer.command(record)

    def _partition_track(self, module_index: int, partition: int) -> str:
        """Trace-track name of one partition's array lane."""
        return f"ch{self.channel_id}.m{module_index}.p{partition}"

    def _note_array_window(self, module_index: int, partition: int,
                           start: float, end: float) -> None:
        """Remember an array-busy window for burst-overlap accounting.

        No-op unless telemetry is active.  Windows are pruned lazily
        with a generous horizon (bursts last tens of ns, the horizon is
        10 µs), so a burst already in flight never loses a window it
        still overlaps.
        """
        if not self._telemetry_on or end <= start:
            return
        windows = self._array_windows
        if len(windows) > 64:
            floor = self.sim.now - 10_000.0
            windows = [w for w in windows if w[1] > floor]
            self._array_windows = windows
        windows.append((start, end, (module_index, partition)))

    def _array_overlap(self, array_key: typing.Tuple[int, int],
                       start: float, end: float) -> float:
        """Union length of other-partition array windows inside [start, end].

        This is the Figure 12 quantity: bus time of one chunk's RDB
        burst hidden under another chunk's array access on a different
        (module, partition).
        """
        clipped = []
        for win_start, win_end, key in self._array_windows:
            if key == array_key or win_end <= start or win_start >= end:
                continue
            clipped.append((max(win_start, start), min(win_end, end)))
        if not clipped:
            return 0.0
        clipped.sort()
        total = 0.0
        merged_start, merged_end = clipped[0]
        for piece_start, piece_end in clipped[1:]:
            if piece_start > merged_end:
                total += merged_end - merged_start
                merged_start, merged_end = piece_start, piece_end
            else:
                merged_end = max(merged_end, piece_end)
        total += merged_end - merged_start
        return total

    def _hold_bus(self, duration: float,
                  span_name: str | None = None,
                  span_args: typing.Dict[str, typing.Any] | None = None,
                  array_key: typing.Tuple[int, int] | None = None
                  ) -> typing.Generator:
        """Occupy the channel bus for ``duration`` ns.

        ``span_name`` labels the occupation on the bus trace track;
        ``array_key`` marks a read burst whose overlap with other
        partitions' array windows should be accounted (Figure 12).
        """
        if duration <= 0:
            return
        grant = self.bus.request()
        yield grant
        try:
            start = self.sim.now
            yield self.sim.timeout(duration)
            self.bus_busy_ns += duration
            if self._bus_counter is not None:
                self._bus_counter.add(duration)
            if span_name is not None:
                # Overlap is computed before the span goes out so the
                # burst span carries its own credit: per-request credits
                # then sum to sched.interleave.overlap_ns by identity,
                # not by re-derivation.
                overlap = 0.0
                if array_key is not None and self._telemetry_on:
                    overlap = self._array_overlap(array_key, start,
                                                  self.sim.now)
                    if overlap > 0.0:
                        self.overlap_ns += overlap
                        if self._overlap_counter is not None:
                            self._overlap_counter.add(overlap)
                tracer = self.sim.tracer
                if tracer.enabled:
                    args = dict(span_args) if span_args else {}
                    if array_key is not None:
                        args["overlap"] = overlap
                    tracer.emit(span_name, self._bus_track, start,
                                self.sim.now, **args)
        finally:
            self.bus.release(grant)
