"""Hardware-automated PRAM controller (Sections III-B and V).

The controller replaces the SSD-style firmware the paper shows to be a
bottleneck (Figure 7).  Pieces:

* :mod:`~repro.controller.request` — the read/write message format the
  server's MCU sends over the on-chip buses;
* :mod:`~repro.controller.phy` — the 400 MHz PHY: 20-bit DDR signal
  packet costs and frequency matching;
* :mod:`~repro.controller.initializer` — boot-up: auto initialization,
  impedance calibration, burst length and OWBA setup;
* :mod:`~repro.controller.datapath` — the two 256-bit load/store
  staging registers;
* :mod:`~repro.controller.translator` — decomposes flat requests into
  per-row chunk plans and picks row buffers;
* :mod:`~repro.controller.scheduler` — the four policies of Figure 13
  (bare-metal, interleaving, selective-erasing, final);
* :mod:`~repro.controller.channel` — one LPDDR2-NVM channel: drives
  module phases as simulation processes, applying phase skipping and
  the selected policy;
* :mod:`~repro.controller.controller` — the two-channel subsystem the
  accelerator's MCU talks to;
* :mod:`~repro.controller.firmware` — the traditional-firmware baseline
  (3-core 500 MHz embedded CPU) used by "DRAM-less (firmware)".
"""

from repro.controller.channel import ChannelController
from repro.controller.controller import PramSubsystem
from repro.controller.datapath import Datapath
from repro.controller.firmware import FirmwareModel
from repro.controller.initializer import Initializer
from repro.controller.phy import PramPhy
from repro.controller.request import MemoryRequest, Op
from repro.controller.scheduler import SchedulerPolicy, WriteHintStore
from repro.controller.translator import AccessPlanner, ChunkPlan
from repro.controller.wear_level import GapMove, StartGapMapper

__all__ = [
    "AccessPlanner",
    "ChannelController",
    "ChunkPlan",
    "Datapath",
    "FirmwareModel",
    "GapMove",
    "Initializer",
    "MemoryRequest",
    "Op",
    "PramPhy",
    "PramSubsystem",
    "SchedulerPolicy",
    "StartGapMapper",
    "WriteHintStore",
]
