"""Request translation: flat requests → per-row chunk plans.

The translator is the planning half of the command generator: it
decomposes a :class:`~repro.controller.request.MemoryRequest` into
row-sized chunks (a request never crosses a module boundary unaligned —
the address map guarantees each chunk sits in one row) and assigns each
chunk a row-buffer id.  Whether a chunk can skip the pre-active or
activate phase is decided at issue time from live buffer state, not
here.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.controller.request import MemoryRequest, Op
from repro.pram.address import AddressMap, PramAddress


@dataclasses.dataclass
class ChunkPlan:
    """One row-sized slice of a memory request."""

    request: MemoryRequest
    address: PramAddress
    offset: int          # byte offset inside the parent request
    size: int            # bytes in this chunk
    buffer_id: int       # RAB/RDB pair the command generator will select

    @property
    def is_write(self) -> bool:
        """Writes go through the overlay window; reads through RDBs."""
        return self.request.op is Op.WRITE

    @property
    def payload(self) -> bytes | None:
        """This chunk's slice of the request payload (writes only)."""
        if self.request.data is None:
            return None
        return self.request.data[self.offset:self.offset + self.size]


class RetirementMap:
    """Bad-row retirement: remaps worn-out rows onto reserved spares.

    The top ``spare_rows`` physical rows of every partition are carved
    out as replacements (the wear-leveling gap region shrinks to
    match).  When program-and-verify retries exhaust on a row the
    channel controller retires it: data moves to the next free spare
    and all later accesses follow the remap.  Spares can themselves be
    retired (chains are followed), and when a partition runs out the
    controller degrades the request instead of raising.
    """

    def __init__(self, rows_per_partition: int, spare_rows: int) -> None:
        if spare_rows < 0:
            raise ValueError(f"spare_rows must be >= 0, got {spare_rows}")
        if spare_rows >= rows_per_partition:
            raise ValueError(
                f"spare_rows {spare_rows} must leave data rows in the "
                f"{rows_per_partition}-row partition"
            )
        self.rows_per_partition = rows_per_partition
        self.spare_rows = spare_rows
        self.first_spare = rows_per_partition - spare_rows
        self._remap: typing.Dict[typing.Tuple[int, int, int], int] = {}
        self._next_spare: typing.Dict[typing.Tuple[int, int], int] = {}
        self.retired = 0

    def translate(self, module: int, partition: int, row: int) -> int:
        """Follow the remap chain from ``row`` to its live location."""
        if not self._remap:
            return row
        seen = 0
        while (target := self._remap.get((module, partition, row))) is not None:
            row = target
            seen += 1
            if seen > self.spare_rows:  # pragma: no cover - invariant
                raise RuntimeError("retirement remap chain cycles")
        return row

    def retire(self, module: int, partition: int,
               row: int) -> int | None:
        """Retire ``row``; returns the spare it now maps to, or None.

        None means the partition's spares are exhausted — the caller
        must degrade the request rather than remap.
        """
        key = (module, partition)
        cursor = self.first_spare + self._next_spare.get(key, 0)
        if cursor >= self.rows_per_partition:
            return None
        self._next_spare[key] = self._next_spare.get(key, 0) + 1
        self._remap[(module, partition, row)] = cursor
        self.retired += 1
        return cursor


class AccessPlanner:
    """Stateless-ish planner bound to one address map.

    Buffer ids rotate round-robin per module so consecutive chunks use
    different RAB/RDB pairs — the precondition for the interleaving
    scheduler to overlap one chunk's burst with another's array access.
    """

    def __init__(self, address_map: AddressMap | None = None) -> None:
        self.address_map = address_map or AddressMap()
        self._next_buffer: typing.Dict[typing.Tuple[int, int], int] = {}

    def plan(self, request: MemoryRequest) -> typing.List[ChunkPlan]:
        """Decompose ``request`` into ordered row-sized chunks."""
        geometry = self.address_map.geometry
        chunks = []
        for address, offset, size in self.address_map.iter_rows(
                request.address, request.size):
            module_key = (address.channel, address.module)
            buffer_id = self._next_buffer.get(module_key, 0)
            self._next_buffer[module_key] = (
                (buffer_id + 1) % geometry.rdb_count
            )
            chunks.append(ChunkPlan(
                request=request,
                address=address,
                offset=offset,
                size=size,
                buffer_id=buffer_id,
            ))
        return chunks

    def chunks_by_channel(self, request: MemoryRequest) -> typing.Dict[
            int, typing.List[ChunkPlan]]:
        """Chunks grouped by channel, preserving order within each."""
        grouped: typing.Dict[int, typing.List[ChunkPlan]] = {}
        for chunk in self.plan(request):
            grouped.setdefault(chunk.address.channel, []).append(chunk)
        return grouped
