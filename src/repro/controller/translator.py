"""Request translation: flat requests → per-row chunk plans.

The translator is the planning half of the command generator: it
decomposes a :class:`~repro.controller.request.MemoryRequest` into
row-sized chunks (a request never crosses a module boundary unaligned —
the address map guarantees each chunk sits in one row) and assigns each
chunk a row-buffer id.  Whether a chunk can skip the pre-active or
activate phase is decided at issue time from live buffer state, not
here.
"""

from __future__ import annotations

import typing

from repro.controller.request import MemoryRequest, Op
from repro.pram.address import AddressMap, PramAddress
from repro.pram.errors import AddressError


class ChunkPlan(typing.NamedTuple):
    """One row-sized slice of a memory request.

    A named tuple for the same reason as
    :class:`~repro.pram.address.PramAddress`: one per chunk on the
    planning hot path, never mutated after construction.
    """

    request: MemoryRequest
    address: PramAddress
    offset: int          # byte offset inside the parent request
    size: int            # bytes in this chunk
    buffer_id: int       # RAB/RDB pair the command generator will select

    @property
    def is_write(self) -> bool:
        """Writes go through the overlay window; reads through RDBs."""
        return self.request.op is Op.WRITE

    @property
    def payload(self) -> bytes | None:
        """This chunk's slice of the request payload (writes only)."""
        if self.request.data is None:
            return None
        return self.request.data[self.offset:self.offset + self.size]


class RetirementMap:
    """Bad-row retirement: remaps worn-out rows onto reserved spares.

    The top ``spare_rows`` physical rows of every partition are carved
    out as replacements (the wear-leveling gap region shrinks to
    match).  When program-and-verify retries exhaust on a row the
    channel controller retires it: data moves to the next free spare
    and all later accesses follow the remap.  Spares can themselves be
    retired (chains are followed), and when a partition runs out the
    controller degrades the request instead of raising.
    """

    def __init__(self, rows_per_partition: int, spare_rows: int) -> None:
        if spare_rows < 0:
            raise ValueError(f"spare_rows must be >= 0, got {spare_rows}")
        if spare_rows >= rows_per_partition:
            raise ValueError(
                f"spare_rows {spare_rows} must leave data rows in the "
                f"{rows_per_partition}-row partition"
            )
        self.rows_per_partition = rows_per_partition
        self.spare_rows = spare_rows
        self.first_spare = rows_per_partition - spare_rows
        self._remap: typing.Dict[typing.Tuple[int, int, int], int] = {}
        self._next_spare: typing.Dict[typing.Tuple[int, int], int] = {}
        self.retired = 0

    def translate(self, module: int, partition: int, row: int) -> int:
        """Follow the remap chain from ``row`` to its live location."""
        if not self._remap:
            return row
        seen = 0
        while (target := self._remap.get((module, partition, row))) is not None:
            row = target
            seen += 1
            if seen > self.spare_rows:  # pragma: no cover - invariant
                raise RuntimeError("retirement remap chain cycles")
        return row

    def retire(self, module: int, partition: int,
               row: int) -> int | None:
        """Retire ``row``; returns the spare it now maps to, or None.

        None means the partition's spares are exhausted — the caller
        must degrade the request rather than remap.
        """
        key = (module, partition)
        cursor = self.first_spare + self._next_spare.get(key, 0)
        if cursor >= self.rows_per_partition:
            return None
        self._next_spare[key] = self._next_spare.get(key, 0) + 1
        self._remap[(module, partition, row)] = cursor
        self.retired += 1
        return cursor


class AccessPlanner:
    """Stateless-ish planner bound to one address map.

    Buffer ids rotate round-robin per module so consecutive chunks use
    different RAB/RDB pairs — the precondition for the interleaving
    scheduler to overlap one chunk's burst with another's array access.
    """

    def __init__(self, address_map: AddressMap | None = None) -> None:
        self.address_map = address_map or AddressMap()
        self._next_buffer: typing.Dict[typing.Tuple[int, int], int] = {}

    def plan(self, request: MemoryRequest) -> typing.List[ChunkPlan]:
        """Decompose ``request`` into ordered row-sized chunks.

        Only the first chunk goes through
        :meth:`~repro.pram.address.AddressMap.decompose`; successive
        row-aligned chunks advance the device coordinates incrementally
        (module, then channel, then partition, then row — the stripe
        order), which avoids re-dividing the flat address on every
        chunk of this hot path.
        """
        address_map = self.address_map
        geometry = address_map.geometry
        chunks: typing.List[ChunkPlan] = []
        size = request.size
        if size <= 0:
            # Preserve iter_rows semantics: negative sizes raise, zero
            # yields no chunks.
            for _ in address_map.iter_rows(request.address, size):
                pass  # pragma: no cover - iter_rows raises or is empty
            return chunks
        row_bytes = geometry.row_bytes
        modules = geometry.modules_per_channel
        channel_count = geometry.channels
        partitions = geometry.partitions_per_bank
        rows = geometry.rows_per_partition
        rdb_count = geometry.rdb_count
        next_buffer = self._next_buffer
        address = address_map.decompose(request.address)
        channel, module, partition, row, column = address
        cursor = request.address
        produced = 0
        while True:
            chunk = row_bytes - column
            remaining = size - produced
            if remaining < chunk:
                chunk = remaining
            module_key = (channel, module)
            buffer_id = next_buffer.get(module_key, 0)
            next_buffer[module_key] = (buffer_id + 1) % rdb_count
            chunks.append(
                ChunkPlan(request, address, produced, chunk, buffer_id))
            produced += chunk
            if produced >= size:
                return chunks
            cursor += chunk
            module += 1
            if module == modules:
                module = 0
                channel += 1
                if channel == channel_count:
                    channel = 0
                    partition += 1
                    if partition == partitions:
                        partition = 0
                        row += 1
                        if row == rows:
                            raise AddressError(
                                f"address {cursor:#x} beyond capacity "
                                f"{geometry.total_bytes:#x}"
                            )
            column = 0
            address = PramAddress(channel, module, partition, row, 0)

    def chunks_by_channel(self, request: MemoryRequest) -> typing.Dict[
            int, typing.List[ChunkPlan]]:
        """Chunks grouped by channel, preserving order within each."""
        grouped: typing.Dict[int, typing.List[ChunkPlan]] = {}
        for chunk in self.plan(request):
            grouped.setdefault(chunk.address.channel, []).append(chunk)
        return grouped
