"""The traditional-firmware baseline (Figure 7, "DRAM-less (firmware)").

Instead of hardware automation, a conventional SSD-style firmware
running on a 3-core 500 MHz embedded ARM CPU translates each memory
request (address lookup, scheduling, protocol management).  Firmware
execution time is comparable to — and for reads far exceeds — the PRAM
access itself, which is exactly the bottleneck Figure 7 quantifies.
"""

from __future__ import annotations

import typing

from repro.sim import Histogram, Resource, Simulator

#: Embedded controller configuration (Section VI: "3-core 500 MHz ARM").
FIRMWARE_CORES = 3
FIRMWARE_CLOCK_GHZ = 0.5

#: Firmware instructions to admit one memory request: translation-layer
#: lookup, request scheduling, and LPDDR2-NVM transaction management.
#: 1500 instructions at 500 MHz = 3 us per request — the same order as
#: a PRAM program and ~30x a PRAM read, matching Figure 7's observation
#: that firmware execution, not the medium, bottlenecks data-intensive
#: workloads.
FIRMWARE_INSTRUCTIONS_PER_REQUEST = 1_500


class FirmwareModel:
    """Serializing firmware front-end placed before a controller."""

    def __init__(self, sim: Simulator, cores: int = FIRMWARE_CORES,
                 clock_ghz: float = FIRMWARE_CLOCK_GHZ,
                 instructions_per_request: int =
                 FIRMWARE_INSTRUCTIONS_PER_REQUEST) -> None:
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        if clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {clock_ghz}")
        self.sim = sim
        self.cores = Resource(sim, capacity=cores, name="firmware.cores")
        self.request_cost_ns = instructions_per_request / clock_ghz
        self.requests_processed = 0
        self.queueing = Histogram("firmware.queueing")

    def admit(self) -> typing.Generator:
        """Process body: one request's firmware pass.

        Grabs a firmware core, spends the execution time, releases.
        Requests queue when all cores are busy — the serialization the
        paper blames for DRAM-less (firmware)'s 25% deficit.
        """
        arrived = self.sim.now
        grant = self.cores.request()
        yield grant
        self.queueing.add(self.sim.now - arrived)
        try:
            yield self.sim.timeout(self.request_cost_ns)
            self.requests_processed += 1
        finally:
            self.cores.release(grant)
