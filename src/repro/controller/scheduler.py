"""Scheduling policies for the PRAM subsystem (Section V-A, Figure 13).

Four policies are evaluated in the paper:

* **BARE_METAL** — the noop scheduler: requests are serviced strictly
  one at a time per channel, with no overlap between array access and
  data transfer;
* **INTERLEAVING** — multi-resource aware interleaving: the data burst
  of a request whose RDB is ready proceeds while another request's
  partition is still sensing (tRCD) or programming;
* **SELECTIVE_ERASE** — bare-metal ordering plus pre-RESET of addresses
  about to be overwritten, so the critical-path program is SET-only;
* **FINAL** — interleaving + selective erasing (the DRAM-less default).
"""

from __future__ import annotations

import enum
import typing

from repro.telemetry.metrics import current_metrics


class SchedulerPolicy(enum.Enum):
    """The four configurations of Figure 13."""

    BARE_METAL = "bare-metal"
    INTERLEAVING = "interleaving"
    SELECTIVE_ERASE = "selective-erasing"
    FINAL = "final"

    @property
    def interleaves(self) -> bool:
        """Does this policy overlap array access with data transfer?"""
        return self in (SchedulerPolicy.INTERLEAVING, SchedulerPolicy.FINAL)

    @property
    def pre_resets(self) -> bool:
        """Does this policy selectively erase soon-to-be-written rows?"""
        return self in (SchedulerPolicy.SELECTIVE_ERASE, SchedulerPolicy.FINAL)


class WriteHintStore:
    """Addresses the server announced it will overwrite soon.

    Section V-A: "while the server loads the target kernel, the PRAM
    subsystem can selectively program the all-zero data word for only
    the addresses that will be overwritten soon".  The server registers
    hints when it parses the kernel's output regions; the channel
    controllers consume them in the background.
    """

    def __init__(self) -> None:
        self._pending: typing.List[typing.Tuple[int, int, float]] = []
        self.registered = 0
        self.consumed = 0
        self.peak_depth = 0
        # Shared across stores: one pair of scheduler-wide counters in
        # the ambient registry (no-ops when telemetry is inactive).
        self._metrics = current_metrics()
        metrics = self._metrics
        if metrics.enabled:
            self._m_registered = metrics.counter("sched.hints.registered")
            self._m_consumed = metrics.counter("sched.hints.consumed")
        else:
            self._m_registered = None
            self._m_consumed = None

    def add(self, address: int, size: int,
            registered_at: float = float("inf")) -> None:
        """Register a region expected to be overwritten.

        ``registered_at`` is the simulated time of registration: a
        consumer must skip rows that were programmed *after* this
        instant, or a background pre-reset would destroy fresh data.
        The default (+inf) places no freshness constraint — callers
        that care (the subsystem does) pass the actual time.
        """
        if size < 1:
            raise ValueError(f"hint size must be >= 1, got {size}")
        if address < 0:
            raise ValueError(f"negative hint address: {address}")
        self._pending.append((address, size, registered_at))
        self.registered += 1
        if len(self._pending) > self.peak_depth:
            self.peak_depth = len(self._pending)
            # Scheduler-wide high-water mark: how deep the backlog of
            # announced-but-not-yet-reset regions ever grew.
            self._metrics.gauge_max("sched.hints.depth_peak",
                                    float(self.peak_depth))
        if self._m_registered is not None:
            self._m_registered.add()

    def pop(self) -> typing.Tuple[int, int, float] | None:
        """Take the oldest unprocessed hint (None when drained)."""
        if not self._pending:
            return None
        self.consumed += 1
        if self._m_consumed is not None:
            self._m_consumed.add()
        return self._pending.pop(0)

    def __len__(self) -> int:
        return len(self._pending)

    def depth(self) -> float:
        """Current backlog, as a float for gauge/window sampling."""
        return float(len(self._pending))
