"""Memory request messages between the MCU and the PRAM controller."""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim import Event

_request_ids = itertools.count()


def reset_request_ids() -> None:
    """Restart request numbering at zero.

    The experiment runners call this at every cell boundary so request
    ids are *cell-local*: a worker process (which may have inherited or
    accumulated counter state) numbers a cell's requests exactly like a
    serial run does.  Profile attribution keys requests by
    ``(scope, req)``, so per-cell restarts never alias.
    """
    global _request_ids
    _request_ids = itertools.count()


class Op(enum.Enum):
    """Operation kinds the controller understands."""

    READ = "read"
    WRITE = "write"


class RequestStatus(enum.Enum):
    """Completion status of a request under fault injection.

    Without a fault plan every request completes ``OK``.  With one, the
    controller downgrades monotonically: ECC-corrected reads report
    ``CORRECTED``, detected-uncorrectable reads and partially-lost
    writes report ``DEGRADED``, and requests whose data could not be
    placed at all (retries and spares exhausted, or a device-model
    error) report ``FAILED`` — but still *complete*, so callers degrade
    gracefully instead of crashing the event loop.
    """

    OK = "ok"
    CORRECTED = "corrected"
    DEGRADED = "degraded"
    FAILED = "failed"


#: Severity order used by :meth:`MemoryRequest.degrade` (higher wins).
_SEVERITY = {
    RequestStatus.OK: 0,
    RequestStatus.CORRECTED: 1,
    RequestStatus.DEGRADED: 2,
    RequestStatus.FAILED: 3,
}


@dataclasses.dataclass
class MemoryRequest:
    """One read or write message (Section V-B's simple interface).

    The server's MCU issues requests of up to 512 bytes per channel
    (32 bytes per bank); the controller decomposes them into row-sized
    chunks internally.
    """

    op: Op
    address: int
    size: int
    data: bytes | None = None
    request_id: int = dataclasses.field(
        default_factory=lambda: next(_request_ids))
    submit_time: float = 0.0
    complete_time: float = 0.0
    result: bytes | None = None
    done: "Event" | None = None
    status: RequestStatus = RequestStatus.OK
    error: str | None = None
    #: True when a FAILED outcome is *permanent* — the data cannot be
    #: placed no matter how often the request is replayed (row
    #: unrecoverable with no spare left, device-model errors).  The
    #: service layer's retry path consults this to avoid burning its
    #: retry budget (and device time) on deterministic failures.
    fault_permanent: bool = False

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"request size must be >= 1, got {self.size}")
        if self.address < 0:
            raise ValueError(f"negative address: {self.address}")
        if self.op is Op.WRITE:
            if self.data is None:
                raise ValueError("WRITE requires a data payload")
            if len(self.data) != self.size:
                raise ValueError(
                    f"payload is {len(self.data)} bytes but size={self.size}"
                )
        elif self.data is not None:
            raise ValueError("READ must not carry a payload")

    def degrade(self, status: RequestStatus,
                error: str | None = None) -> None:
        """Record a fault outcome; severity only ever increases.

        Multiple chunks of one request may report different outcomes
        (one corrected read, one failed write); the request keeps the
        worst and the first error message at that severity.
        """
        if _SEVERITY[status] > _SEVERITY[self.status]:
            self.status = status
            if error is not None:
                self.error = error
        elif error is not None and self.error is None:
            self.error = error

    @property
    def latency(self) -> float:
        """Submit-to-complete latency (valid once completed)."""
        return self.complete_time - self.submit_time

    @property
    def is_write(self) -> bool:
        """Convenience predicate."""
        return self.op is Op.WRITE
