"""Start-gap wear leveling (Section VII, via Qureshi et al. MICRO'09).

The paper notes DRAM-less "can integrate traditional wear levellers in
our PRAM controller, such as start-gap, to improve the PRAM lifetime".
This module implements the classic algorithm as an optional layer under
the channel controllers.

Start-gap keeps one spare *gap* line per region (here: one per
partition) and two registers:

* ``gap`` — the physical index of the currently-unused line;
* ``start`` — the rotation of the logical-to-physical mapping.

The mapping for logical line ``l`` of ``n`` logical lines is::

    p = (l + start) mod n
    if p >= gap: p += 1          # skip the gap line

Every ``gap_write_interval`` writes the gap moves one line down (the
content of physical line ``gap - 1`` is copied into ``gap`` and the
registers update), so hot logical lines slowly migrate across all
physical lines.  A full rotation takes ``n * interval`` writes, after
which every physical line has absorbed an equal share.
"""

from __future__ import annotations

import dataclasses
import typing

#: Default gap-move period ψ: one move per 100 writes (the classic
#: operating point; <1% overhead, near-perfect leveling long-term).
DEFAULT_GAP_WRITE_INTERVAL = 100


@dataclasses.dataclass
class GapMove:
    """One pending gap movement: copy ``source`` into ``destination``."""

    source: int       # physical row whose content must move
    destination: int  # physical row that receives it (the old gap)


class StartGapMapper:
    """Start-gap remapping for one region of ``lines`` logical rows.

    The physical space has ``lines + 1`` rows (one spare).  The mapper
    is pure bookkeeping: callers translate rows through :meth:`map`,
    call :meth:`record_write` per row program, and perform the returned
    :class:`GapMove` (a read+program of one row) when one is due.
    """

    def __init__(self, lines: int,
                 gap_write_interval: int = DEFAULT_GAP_WRITE_INTERVAL
                 ) -> None:
        if lines < 1:
            raise ValueError(f"need at least one line, got {lines}")
        if gap_write_interval < 1:
            raise ValueError(
                f"gap interval must be >= 1, got {gap_write_interval}"
            )
        self.lines = lines
        self.gap_write_interval = gap_write_interval
        self.start = 0
        self.gap = lines          # spare line starts at the end
        self.writes_since_move = 0
        self.total_moves = 0

    @property
    def physical_lines(self) -> int:
        """Physical rows this region occupies (logical + 1 spare)."""
        return self.lines + 1

    def map(self, logical: int) -> int:
        """Translate a logical row to its current physical row."""
        if not 0 <= logical < self.lines:
            raise ValueError(
                f"logical row {logical} out of range [0, {self.lines})"
            )
        physical = (logical + self.start) % self.lines
        if physical >= self.gap:
            physical += 1
        return physical

    def record_write(self) -> GapMove | None:
        """Account one row program; returns a due :class:`GapMove`.

        The caller must complete the returned copy *before* issuing
        further writes through this mapper (the registers update
        immediately, so the mapping already reflects the move).
        """
        self.writes_since_move += 1
        if self.writes_since_move < self.gap_write_interval:
            return None
        self.writes_since_move = 0
        self.total_moves += 1
        if self.gap == 0:
            # Wrap: the gap returns to the top and the rotation
            # advances.  Exactly one line relocates: in the old layout
            # (gap=0, start=s) the logical line with
            # (l+s) mod n == n-1 sits at physical n; in the new layout
            # (gap=n, start=s+1) it sits at physical 0.  Every other
            # line's physical position is unchanged by the register
            # update.
            move = GapMove(source=self.lines, destination=0)
            self.gap = self.lines
            self.start = (self.start + 1) % self.lines
            return move
        move = GapMove(source=self.gap - 1, destination=self.gap)
        self.gap -= 1
        return move

    def endurance_spread(self, write_counts: typing.Sequence[int]) -> float:
        """Max/mean ratio of per-line write counts (1.0 = perfect)."""
        counts = [c for c in write_counts if c > 0]
        if not counts:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0
