"""Seeded, deterministic fault plans for the PRAM stack.

The paper's 3x-nm engineering samples are real phase-change devices:
cells wear out under repeated RESET/SET pulses, SET passes fail and
must be verified and retried, and partitions stall under contention.
:class:`FaultConfig` describes *which* of those behaviours to inject
and how hard; :class:`FaultState` turns the plan into concrete fault
decisions.

Reproducibility is the design center.  Every decision is a pure
function of ``(seed, category, site, per-site draw index)`` hashed
through BLAKE2b — no shared RNG stream, no ``PYTHONHASHSEED``
dependence — so the decision at one site never depends on how fault
sites interleave across modules, channels, or worker processes.  A
fixed seed therefore produces the same faults serially and under the
parallel experiment runner, and repeated runs are bit-identical.

Null plans cost nothing: every injection entry point is guarded by a
precomputed ``*_on`` flag, so a plan whose probabilities are all zero
performs no hashing and leaves timing and data byte-identical to a run
with no plan at all.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import typing

from repro.telemetry.metrics import Counter, current_metrics

#: Fields parsed from ``--faults`` key=value specs: alias -> (field,
#: converter).  Full field names are accepted too.
_PLAN_KEYS: typing.Dict[str, typing.Tuple[str, typing.Callable]] = {
    "seed": ("seed", int),
    "read_flip": ("read_flip_probability", float),
    "double_flip": ("read_double_flip_probability", float),
    "program_fail": ("program_fail_probability", float),
    "wear_factor": ("wear_fail_factor", float),
    "endurance": ("endurance_budget", int),
    "stall": ("partition_stall_probability", float),
    "stall_ns": ("partition_stall_ns", float),
    "retries": ("max_program_retries", int),
    "backoff_ns": ("retry_backoff_ns", float),
    "spares": ("spare_rows_per_partition", int),
}


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """One reproducible fault-injection plan.

    All probabilities are per *site* (per row read, per word program,
    per partition occupation), not per bit.  ``endurance_budget`` is
    the write count at which a word becomes permanently stuck; below
    it, ``wear_fail_factor`` scales the transient program-failure
    probability linearly with the word's consumed endurance fraction.
    """

    seed: int = 0
    #: Probability a read burst carries one flipped bit.
    read_flip_probability: float = 0.0
    #: Probability a flipped burst carries a *second* flip in the same
    #: ECC codeword (detected-uncorrectable under SEC-DED).
    read_double_flip_probability: float = 0.0
    #: Baseline per-word transient program (SET pass) failure rate.
    program_fail_probability: float = 0.0
    #: Extra failure probability at full endurance consumption.
    wear_fail_factor: float = 0.0
    #: Write count at which a word is permanently worn out (stuck-at).
    endurance_budget: typing.Optional[int] = None
    #: Probability one partition occupation stretches by ``stall_ns``.
    partition_stall_probability: float = 0.0
    #: Length of one injected stuck-busy window.
    partition_stall_ns: float = 0.0
    #: Bounded program-and-verify retries before a row is retired.
    max_program_retries: int = 3
    #: Wait between verify and re-program (device settle time).
    retry_backoff_ns: float = 200.0
    #: Spare rows reserved per partition for bad-row retirement.
    spare_rows_per_partition: int = 8

    def __post_init__(self) -> None:
        for field in ("read_flip_probability",
                      "read_double_flip_probability",
                      "program_fail_probability",
                      "partition_stall_probability"):
            value = getattr(self, field)
            if math.isnan(value):
                raise ValueError(f"{field} must not be NaN")
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{field} must be within [0, 1], got {value}")
        if math.isnan(self.wear_fail_factor):
            raise ValueError("wear_fail_factor must not be NaN")
        if self.wear_fail_factor < 0.0:
            raise ValueError(
                f"wear_fail_factor must be >= 0, got "
                f"{self.wear_fail_factor}")
        if self.endurance_budget is not None and self.endurance_budget < 1:
            raise ValueError(
                f"endurance_budget must be >= 1, got "
                f"{self.endurance_budget}")
        for field in ("partition_stall_ns", "retry_backoff_ns"):
            value = getattr(self, field)
            if math.isnan(value):
                raise ValueError(f"{field} must not be NaN")
            if value < 0.0:
                raise ValueError(f"{field} must be >= 0, got {value}")
        if self.max_program_retries < 0:
            raise ValueError(
                f"max_program_retries must be >= 0, got "
                f"{self.max_program_retries}")
        if self.spare_rows_per_partition < 0:
            raise ValueError(
                f"spare_rows_per_partition must be >= 0, got "
                f"{self.spare_rows_per_partition}")

    @property
    def can_fail_programs(self) -> bool:
        """True if this plan can ever make a program (SET pass) fail.

        Only such plans reserve spare rows (and shrink the start-gap
        rotation): a plan that cannot fail programs never retires a
        row, so reserving spares would change address behaviour for
        nothing — and break null-plan byte-identity.
        """
        return (self.program_fail_probability > 0.0
                or self.wear_fail_factor > 0.0
                or self.endurance_budget is not None)

    @property
    def is_null(self) -> bool:
        """True if no fault of any category can ever fire."""
        return (not self.can_fail_programs
                and self.read_flip_probability == 0.0
                and (self.partition_stall_probability == 0.0
                     or self.partition_stall_ns == 0.0))

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Build a plan from a ``key=value,key=value`` CLI spec.

        Keys are the aliases in the README's Reliability section
        (``seed``, ``read_flip``, ``program_fail``, ``endurance``, ...)
        or full field names.  Raises :class:`ValueError` naming the
        offending key or field on any nonsense input.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty fault-plan spec")
        fields = {f.name: f for f in dataclasses.fields(cls)}
        values: typing.Dict[str, typing.Any] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"fault-plan entry {item!r} is not key=value")
            if key in _PLAN_KEYS:
                field, convert = _PLAN_KEYS[key]
            elif key in fields:
                field = key
                convert = (int if key in ("seed", "endurance_budget",
                                          "max_program_retries",
                                          "spare_rows_per_partition")
                           else float)
            else:
                known = ", ".join(sorted(_PLAN_KEYS))
                raise ValueError(
                    f"unknown fault-plan key {key!r} (known: {known})")
            try:
                values[field] = convert(raw.strip())
            except ValueError:
                raise ValueError(
                    f"{field} expects a number, got {raw.strip()!r}"
                ) from None
        return cls(**values)


def compose_service_retries(budget: int,
                            plan: typing.Optional[FaultConfig]) -> int:
    """Service-side retry budget after the device layer's claim.

    The retry-composition contract between :mod:`repro.service` and
    this package: ``budget`` is the **end-to-end** replay budget for
    one request's data, and the device's bounded program-and-verify
    retries (``max_program_retries``) spend from it *first*.  The
    service layer may only replay a request with whatever remains, so
    stacking a service retry policy on a fault plan tightens rather
    than multiplies the total retry work — the anti-amplification
    property that prevents retry storms under overload.  Without a
    plan the device never retries and the service keeps the full
    budget.
    """
    if budget < 0:
        raise ValueError(f"retry budget must be >= 0, got {budget}")
    if plan is None:
        return budget
    return max(0, budget - plan.max_program_retries)


class FaultState:
    """Runtime fault decisions + counters for one subsystem instance.

    One instance is shared by all channels and modules of a
    :class:`~repro.controller.controller.PramSubsystem`; fault sites
    are keyed by (channel, module, partition, row[, word]) so sharing
    never couples decisions across sites.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        # Precomputed entry-point guards: the hot paths check one
        # attribute and skip all hashing when a category is disabled.
        self.read_faults_on = config.read_flip_probability > 0.0
        self.program_faults_on = config.can_fail_programs
        self.stalls_on = (config.partition_stall_probability > 0.0
                          and config.partition_stall_ns > 0.0)
        self._site_draws: typing.Dict[typing.Tuple, int] = {}
        #: Permanently worn-out words: (ch, mod, partition, row, word).
        self.stuck_words: typing.Set[typing.Tuple[int, int, int, int, int]]
        self.stuck_words = set()
        # Injection counts.
        self.read_flips_injected = 0
        self.program_word_failures = 0
        self.partition_stalls = 0
        self.partition_stall_ns_total = 0.0
        # Resilience outcomes (fed back by the controller).
        self.ecc_corrected_bits = 0
        self.ecc_uncorrectable = 0
        self.retry_attempts = 0
        self.retries_exhausted = 0
        self.rows_retired = 0
        self.retire_failures = 0
        self.requests_corrected = 0
        self.requests_degraded = 0
        self.requests_failed = 0
        metrics = current_metrics()
        self._counters: typing.Optional[typing.Dict[str, Counter]] = None
        if metrics.enabled:
            self._counters = {
                name: metrics.counter(f"faults.{name}")
                for name in ("injected.read_flips",
                             "injected.program_word_failures",
                             "injected.stuck_words",
                             "injected.partition_stall_ns",
                             "ecc.corrected_bits",
                             "ecc.uncorrectable",
                             "retry.attempts",
                             "retry.exhausted",
                             "rows.retired",
                             "rows.retire_failed")
            }

    # ------------------------------------------------------------------
    # The deterministic draw
    # ------------------------------------------------------------------
    def _draw(self, category: str, key: typing.Tuple) -> float:
        """Uniform [0, 1) draw for one (category, site) pair.

        Each site keeps its own draw counter, so the value sequence at
        a site is independent of how sites interleave — the property
        that makes serial and ``--jobs N`` runs inject identical
        faults.
        """
        site = (category,) + key
        index = self._site_draws.get(site, 0)
        self._site_draws[site] = index + 1
        payload = repr((self.config.seed, index) + site).encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    # ------------------------------------------------------------------
    # Fault decisions (called from the device model)
    # ------------------------------------------------------------------
    def read_flip_bits(self, channel: int, module: int, partition: int,
                       row: int, size: int) -> typing.Tuple[int, ...]:
        """Bit positions to flip in one ``size``-byte read burst."""
        config = self.config
        if config.read_flip_probability <= 0.0 or size <= 0:
            return ()
        key = (channel, module, partition, row)
        if self._draw("read", key) >= config.read_flip_probability:
            return ()
        bit_count = size * 8
        first = min(int(self._draw("read_bit", key) * bit_count),
                    bit_count - 1)
        bits = [first]
        if (config.read_double_flip_probability > 0.0
                and self._draw("read_double", key)
                < config.read_double_flip_probability):
            # The second flip lands in the same 64-bit codeword so the
            # pair is detected-uncorrectable under SEC-DED.
            base = (first // 64) * 64
            width = min(64, bit_count - base)
            second = base + min(int(self._draw("read_bit2", key) * width),
                                width - 1)
            if second == first:
                second = base + (first - base + 1) % width
            if second != first:
                bits.append(second)
        self.read_flips_injected += len(bits)
        if self._counters is not None:
            self._counters["injected.read_flips"].add(len(bits))
        return tuple(sorted(bits))

    def program_word_failures_for(
            self, channel: int, module: int, partition: int, row: int,
            words: typing.Sequence[int],
            wear_of: typing.Callable[[int], int]) -> typing.List[int]:
        """Which of ``words`` fail their SET pass in this program.

        ``wear_of`` maps a word index to its consumed write count
        (*after* the pulse being judged).  Words at or past the
        endurance budget become permanently stuck; below it the
        transient failure probability rises linearly with wear.
        """
        config = self.config
        budget = config.endurance_budget
        failed: typing.List[int] = []
        for word in words:
            site = (channel, module, partition, row, word)
            if site in self.stuck_words:
                failed.append(word)
                continue
            wear = wear_of(word)
            if budget is not None and wear >= budget:
                self.stuck_words.add(site)
                if self._counters is not None:
                    self._counters["injected.stuck_words"].add()
                failed.append(word)
                continue
            probability = config.program_fail_probability
            if budget is not None and config.wear_fail_factor > 0.0:
                probability = min(
                    1.0, probability
                    + config.wear_fail_factor * (wear / budget))
            if probability <= 0.0:
                continue
            if self._draw("program", site) < probability:
                failed.append(word)
        if failed:
            self.program_word_failures += len(failed)
            if self._counters is not None:
                self._counters["injected.program_word_failures"].add(
                    len(failed))
        return failed

    def partition_stall(self, channel: int, module: int,
                        partition: int) -> float:
        """Extra busy ns injected into one partition occupation."""
        config = self.config
        key = (channel, module, partition)
        if self._draw("stall", key) >= config.partition_stall_probability:
            return 0.0
        self.partition_stalls += 1
        self.partition_stall_ns_total += config.partition_stall_ns
        if self._counters is not None:
            self._counters["injected.partition_stall_ns"].add(
                config.partition_stall_ns)
        return config.partition_stall_ns

    # ------------------------------------------------------------------
    # Resilience outcomes (called from the controller)
    # ------------------------------------------------------------------
    def note_ecc(self, corrected_bits: int, uncorrectable: int) -> None:
        """Account one SEC-DED decode on the read datapath."""
        self.ecc_corrected_bits += corrected_bits
        self.ecc_uncorrectable += uncorrectable
        if self._counters is not None:
            if corrected_bits:
                self._counters["ecc.corrected_bits"].add(corrected_bits)
            if uncorrectable:
                self._counters["ecc.uncorrectable"].add(uncorrectable)

    def note_retry(self) -> None:
        """Account one program-and-verify retry pass."""
        self.retry_attempts += 1
        if self._counters is not None:
            self._counters["retry.attempts"].add()

    def note_retries_exhausted(self) -> None:
        """Account one row whose bounded retries all failed."""
        self.retries_exhausted += 1
        if self._counters is not None:
            self._counters["retry.exhausted"].add()

    def note_row_retired(self) -> None:
        """Account one bad row remapped to a spare."""
        self.rows_retired += 1
        if self._counters is not None:
            self._counters["rows.retired"].add()

    def note_retire_failed(self) -> None:
        """Account one retirement that found no spare row left."""
        self.retire_failures += 1
        if self._counters is not None:
            self._counters["rows.retire_failed"].add()

    def counts(self) -> typing.Dict[str, float]:
        """Aggregate injection + resilience counters."""
        return {
            "read_flips_injected": float(self.read_flips_injected),
            "program_word_failures": float(self.program_word_failures),
            "stuck_words": float(len(self.stuck_words)),
            "partition_stalls": float(self.partition_stalls),
            "partition_stall_ns": self.partition_stall_ns_total,
            "ecc_corrected_bits": float(self.ecc_corrected_bits),
            "ecc_uncorrectable": float(self.ecc_uncorrectable),
            "retry_attempts": float(self.retry_attempts),
            "retries_exhausted": float(self.retries_exhausted),
            "rows_retired": float(self.rows_retired),
            "retire_failures": float(self.retire_failures),
            "requests_corrected": float(self.requests_corrected),
            "requests_degraded": float(self.requests_degraded),
            "requests_failed": float(self.requests_failed),
        }
