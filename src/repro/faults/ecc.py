"""Behavioural SEC-DED ECC over the controller's read datapath.

The datapath protects each 64-bit codeword with a (72, 64) Hamming +
parity code: any single flipped bit per codeword is corrected, any two
flipped bits are *detected* but not correctable.  The model is
behavioural — the injector knows exactly which bits it flipped, so the
decoder classifies codewords by flip count instead of computing
syndromes: one flip → restore the bit; two or more → leave the data
corrupted and report a detected-uncorrectable event.
"""

from __future__ import annotations

import dataclasses
import typing

#: Data bits per protected codeword (the 64 of the (72, 64) code).
CODEWORD_BITS = 64


@dataclasses.dataclass(frozen=True)
class EccResult:
    """Outcome of one SEC-DED decode pass."""

    data: bytes
    corrected_bits: int
    uncorrectable_codewords: int


def apply_bit_flips(data: bytes,
                    bits: typing.Iterable[int]) -> bytes:
    """Flip the given bit positions (0 = LSB of byte 0) in ``data``."""
    corrupted = bytearray(data)
    for bit in bits:
        corrupted[bit // 8] ^= 1 << (bit % 8)
    return bytes(corrupted)


def secded_decode(data: bytes,
                  flipped_bits: typing.Sequence[int]) -> EccResult:
    """Decode a burst whose injected flips are ``flipped_bits``.

    Codewords with exactly one flip come back clean; codewords with
    two or more keep their corrupted bytes and count as
    detected-uncorrectable.
    """
    if not flipped_bits:
        return EccResult(data=data, corrected_bits=0,
                         uncorrectable_codewords=0)
    by_codeword: typing.Dict[int, typing.List[int]] = {}
    for bit in flipped_bits:
        by_codeword.setdefault(bit // CODEWORD_BITS, []).append(bit)
    corrected = bytearray(data)
    corrected_bits = 0
    uncorrectable = 0
    for flips in by_codeword.values():
        if len(flips) == 1:
            bit = flips[0]
            corrected[bit // 8] ^= 1 << (bit % 8)
            corrected_bits += 1
        else:
            uncorrectable += 1
    return EccResult(data=bytes(corrected), corrected_bits=corrected_bits,
                     uncorrectable_codewords=uncorrectable)
