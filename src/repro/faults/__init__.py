"""Deterministic fault injection and resilience for the PRAM stack.

* :class:`~repro.faults.plan.FaultConfig` — a validated, seeded fault
  plan (read bit-flips, wear-dependent program failures, stuck-at
  wear-out, partition stalls) parseable from the CLI's ``--faults``
  spec;
* :class:`~repro.faults.plan.FaultState` — the runtime decision engine
  (hash-based draws, reproducible across serial/parallel runs) plus
  injection and resilience counters;
* :mod:`~repro.faults.ecc` — the behavioural SEC-DED model the
  controller datapath runs over read bursts.
"""

from repro.faults.ecc import EccResult, apply_bit_flips, secded_decode
from repro.faults.plan import FaultConfig, FaultState

__all__ = [
    "EccResult",
    "FaultConfig",
    "FaultState",
    "apply_bit_flips",
    "secded_decode",
]
