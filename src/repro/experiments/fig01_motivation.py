"""Figure 1: performance/energy cost of data movement vs an ideal system.

The paper normalizes a conventional accelerated system (accelerator +
SSD over PCIe) against an idealized one with enough memory for all
data: performance degrades up to 74% and energy inflates ~9x.
"""

from __future__ import annotations

import typing

from repro.experiments.runner import (
    ExperimentConfig,
    format_table,
    geometric_mean,
    run_matrix,
)


def run(config: ExperimentConfig = ExperimentConfig()) -> typing.Dict:
    """Returns per-workload normalized performance and energy ratios.

    The idealized environment is "Ideal-resident": the same hardware
    with enough accelerator memory for all data, staged once.
    """
    matrix = run_matrix(config, ["Ideal-resident", "Hetero"])
    rows = []
    for name, results in matrix.items():
        ideal = results["Ideal-resident"]
        hetero = results["Hetero"]
        rows.append({
            "workload": name,
            "normalized_performance":
                hetero.bandwidth_mb_s / ideal.bandwidth_mb_s,
            "energy_ratio": hetero.energy_mj / ideal.energy_mj,
        })
    perf = [row["normalized_performance"] for row in rows]
    energy = [row["energy_ratio"] for row in rows]
    return {
        "rows": rows,
        "max_degradation": 1.0 - min(perf),
        "mean_degradation": 1.0 - geometric_mean(perf),
        "mean_energy_ratio": geometric_mean(energy),
    }


def report(result: typing.Dict) -> str:
    """Text rendering of the figure's data."""
    table = format_table(
        ["workload", "perf vs ideal", "energy ratio"],
        [[row["workload"], row["normalized_performance"],
          row["energy_ratio"]] for row in result["rows"]])
    summary = (
        f"max degradation: {result['max_degradation']:.1%} "
        f"(paper: up to 74%)\n"
        f"mean energy ratio: {result['mean_energy_ratio']:.1f}x "
        f"(paper: ~9x)"
    )
    return f"Figure 1: motivation\n{table}\n{summary}"
