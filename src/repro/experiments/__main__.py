"""``python -m repro.experiments`` — the experiment CLI.

Runs one experiment, a comma-separated list, or ``all``; ``--jobs N``
shards the work across worker processes and ``--cache`` replays
unchanged experiments from the content-addressed result cache.  See
:mod:`repro.experiments.cli` for the full flag set.
"""

from __future__ import annotations

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
